//! Task-based PREMA scheduling (paper §5.1).

use nimblock_obs::nb_debug;

use crate::scheduler::{SchedMetrics, TokenBank};
use crate::{AppId, Reconfig, SchedView, Scheduler};

/// The task-based PREMA comparison scheduler.
///
/// Keeps PREMA's token accumulation and candidate thresholding, and its
/// policy of choosing the *shortest candidate to execute next* (smallest
/// estimated remaining compute). As in the original NPU scheduler, one
/// application executes at a time: the chosen candidate may spread its
/// parallel task-graph branches across slots, but other applications wait
/// until it completes — there is no preemption and no cross-batch
/// pipelining, the advanced features the paper adds in Nimblock. The
/// head-of-line blocking this causes is what Nimblock's batch-preemption
/// removes ("long running tasks do not see an improvement with PREMA",
/// §5.4).
///
/// [`PremaScheduler::with_backfill`] enables a work-conserving extension
/// (not in the paper): slots the current application cannot use are offered
/// to the remaining applications, candidates first, shortest first. The
/// ablation benches compare the two.
#[derive(Debug, Clone)]
pub struct PremaScheduler {
    bank: TokenBank,
    current: Option<AppId>,
    backfill: bool,
    metrics: SchedMetrics,
    /// Reusable per-decision buffers (candidate pool, backfill order) so
    /// steady-state decisions allocate nothing.
    candidate_buf: Vec<AppId>,
    rest_buf: Vec<AppId>,
}

impl PremaScheduler {
    /// Creates the paper-faithful PREMA scheduler (one candidate executes
    /// at a time).
    pub fn new() -> Self {
        PremaScheduler {
            bank: TokenBank::new(1.0),
            current: None,
            backfill: false,
            metrics: SchedMetrics::detached(),
            candidate_buf: Vec::new(),
            rest_buf: Vec::new(),
        }
    }

    /// Creates the work-conserving variant that backfills idle slots from
    /// the applications waiting behind the current one.
    pub fn with_backfill() -> Self {
        PremaScheduler {
            backfill: true,
            ..PremaScheduler::new()
        }
    }

    /// Returns `true` if this instance backfills idle slots.
    pub fn backfills(&self) -> bool {
        self.backfill
    }

    /// Overrides the token-accumulation scale factor α.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is not positive.
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        self.bank = TokenBank::new(alpha);
        self
    }

    /// Returns the application currently being executed, if any.
    pub fn current(&self) -> Option<AppId> {
        self.current
    }
}

impl Default for PremaScheduler {
    fn default() -> Self {
        PremaScheduler::new()
    }
}

impl Scheduler for PremaScheduler {
    fn name(&self) -> String {
        if self.backfill {
            "PREMA+backfill".to_owned()
        } else {
            "PREMA".to_owned()
        }
    }

    fn on_arrival(&mut self, view: &SchedView<'_>, app: AppId) {
        let runtime = view.app(app).expect("arriving app is live");
        self.bank.admit(runtime, view);
    }

    fn on_retire(&mut self, _view: &SchedView<'_>, app: AppId) {
        self.bank.remove(app);
        if self.current == Some(app) {
            self.current = None;
        }
    }

    fn attach_metrics(&mut self, registry: &nimblock_obs::Registry) {
        self.metrics.register(registry);
    }

    fn next_reconfig(&mut self, view: &SchedView<'_>) -> Option<Reconfig> {
        self.metrics.decisions.inc();
        view.first_free_slot()?;
        self.bank.accumulate(view.now);
        self.metrics
            .max_tokens_milli
            .set((self.bank.max_tokens() * 1000.0) as i64);
        // One candidate query serves the whole decision: repeat queries at
        // the same `now` are idempotent (threshold and candidate stamps do
        // not move between them), so reusing the buffer changes nothing.
        self.bank.candidates_into(view.now, &mut self.candidate_buf);
        self.candidate_buf.retain(|c| view.app(*c).is_some());
        self.metrics.candidates.observe(self.candidate_buf.len() as u64);

        // Pick the next application to execute when the board frees up:
        // the shortest candidate (estimated remaining compute).
        if self.current.is_none_or(|c| view.app(c).is_none()) {
            self.current = self.candidate_buf.iter().copied().min_by_key(|&c| {
                let runtime = view.app(c).expect("retained above");
                (runtime.remaining_compute(), c)
            });
        }
        let current = self.current?;
        let runtime = view.app(current).expect("checked above");
        // The executing application configures eagerly, like the baseline:
        // it effectively owns the board until it completes.
        if let Some(task) = runtime.next_unplaced_eager() {
            if let Some(slot) = view.first_free_slot_fitting(current, task) {
                self.metrics.directives.inc();
                nb_debug!("sched.prema", "place {current} {task} -> {slot}");
                return Some(Reconfig { app: current, task, slot });
            }
        }
        // Slots the current application cannot use go to the remaining
        // *candidates*, shortest first — the board is not left idle when
        // the executing application is a narrow chain. Non-candidates stay
        // gated behind the token threshold unless backfill is enabled.
        self.rest_buf.clear();
        self.rest_buf
            .extend(self.candidate_buf.iter().copied().filter(|&a| a != current));
        if self.backfill {
            for a in view.apps_by_age() {
                if a != current && !self.rest_buf.contains(&a) {
                    // `rest_buf` is reusable scratch; capacity tops out
                    // at the live-app count. nimblock: allow(hot-path-no-alloc)
                    self.rest_buf.push(a);
                }
            }
        }
        self.rest_buf.sort_by_key(|&a| {
            let runtime = view.app(a).expect("live app");
            (runtime.remaining_compute(), a)
        });
        for &app in &self.rest_buf {
            let runtime = view.app(app).expect("live app");
            if let Some(task) = runtime.next_unplaced_ready() {
                if let Some(slot) = view.first_free_slot_fitting(app, task) {
                    self.metrics.directives.inc();
                    nb_debug!("sched.prema", "backfill {app} {task} -> {slot}");
                    return Some(Reconfig { app, task, slot });
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Testbed;
    use nimblock_app::{benchmarks, Priority};
    use nimblock_sim::SimTime;
    use nimblock_workload::{ArrivalEvent, EventSequence};

    #[test]
    fn shortest_waiting_candidate_runs_next() {
        // DR grabs the board alone; OF and 3DR queue up behind it with the
        // same priority. When slots free, the shorter 3DR goes first.
        let events = EventSequence::new(vec![
            ArrivalEvent::new(benchmarks::digit_recognition(), 1, Priority::High, SimTime::ZERO),
            ArrivalEvent::new(benchmarks::optical_flow(), 5, Priority::High, SimTime::from_millis(100)),
            ArrivalEvent::new(benchmarks::rendering_3d(), 5, Priority::High, SimTime::from_millis(100)),
        ]);
        let report = Testbed::new(PremaScheduler::new()).run(&events);
        let of = report.record_for_event(1).unwrap();
        let r3d = report.record_for_event(2).unwrap();
        assert!(
            r3d.retired < of.retired,
            "3DR should finish before the longer OF under shortest-first"
        );
    }

    #[test]
    fn low_priority_stays_gated_behind_the_threshold() {
        // While the high-priority OF executes, a fresh low-priority LeNet
        // is not a candidate (threshold 9 vs tokens ~1) and must wait even
        // though slots are idle; the backfill extension lets it through.
        let events = EventSequence::new(vec![
            ArrivalEvent::new(benchmarks::optical_flow(), 20, Priority::High, SimTime::ZERO),
            ArrivalEvent::new(benchmarks::lenet(), 1, Priority::Low, SimTime::from_millis(500)),
        ]);
        let faithful = Testbed::new(PremaScheduler::new()).run(&events);
        let backfilled = Testbed::new(PremaScheduler::with_backfill()).run(&events);
        let lenet_gated = faithful.record_for_event(1).unwrap().response_time();
        let lenet_backfilled = backfilled.record_for_event(1).unwrap().response_time();
        assert!(
            lenet_gated.as_secs_f64() > 2.0 * lenet_backfilled.as_secs_f64(),
            "gated {lenet_gated} should be much slower than backfilled {lenet_backfilled}"
        );
        assert_eq!(backfilled.scheduler(), "PREMA+backfill");
    }

    #[test]
    fn priority_gates_candidacy() {
        // A high-priority arrival becomes the sole candidate and executes
        // before an already-waiting low-priority app that has not started.
        let events = EventSequence::new(vec![
            ArrivalEvent::new(benchmarks::digit_recognition(), 2, Priority::Low, SimTime::ZERO),
            ArrivalEvent::new(benchmarks::optical_flow(), 2, Priority::Low, SimTime::from_millis(10)),
            ArrivalEvent::new(benchmarks::lenet(), 2, Priority::High, SimTime::from_millis(20)),
        ]);
        let report = Testbed::new(PremaScheduler::new()).run(&events);
        let lenet = report.record_for_event(2).unwrap();
        let of = report.record_for_event(1).unwrap();
        // DR grabbed the board first (it was alone), but LeNet outranks the
        // still-waiting OF once DR finishes.
        assert!(lenet.retired < of.retired);
    }
}
