//! Additional scheduling policies beyond the paper's evaluation.
//!
//! These are library extensions for downstream users and for ablation
//! studies: a work-conserving shortest-job-first and an earliest-deadline-
//! first policy. Both bulk-process batches and never preempt, so they are
//! directly comparable with FCFS and round-robin.

use nimblock_sim::SimDuration;

use crate::{AppId, Reconfig, SchedView, Scheduler};

/// Shortest-job-first: always serve the application with the least
/// estimated remaining compute. Work-conserving, bulk processing, no
/// priorities, no preemption.
///
/// SJF minimizes mean response time under ideal assumptions but starves
/// long applications under load — a useful contrast to Nimblock's
/// token-based fairness in experiments.
#[derive(Debug, Clone, Default)]
pub struct SjfScheduler {
    _private: (),
}

impl SjfScheduler {
    /// Creates the SJF scheduler.
    pub fn new() -> Self {
        SjfScheduler::default()
    }
}

impl Scheduler for SjfScheduler {
    fn name(&self) -> String {
        "SJF".to_owned()
    }

    fn next_reconfig(&mut self, view: &SchedView<'_>) -> Option<Reconfig> {
        view.first_free_slot()?;
        // Baseline comparison scheduler: a per-decision candidate sort is
        // its defining behavior, not a regression. nimblock: allow(hot-path-no-alloc)
        let mut apps: Vec<AppId> = view.apps_by_age().collect();
        apps.sort_by_key(|&a| {
            let runtime = view.app(a).expect("live app");
            (runtime.remaining_compute(), a)
        });
        for app in apps {
            let runtime = view.app(app).expect("live app");
            if let Some(task) = runtime.next_unplaced_ready() {
                if let Some(slot) = view.first_free_slot_fitting(app, task) {
                    return Some(Reconfig { app, task, slot });
                }
            }
        }
        None
    }
}

/// Earliest-deadline-first: serve the application whose implicit deadline
/// (`arrival + slack_factor × single-slot latency`, the deadline model of
/// the paper's §5.4 analysis) comes soonest. Work-conserving, bulk
/// processing, no preemption.
#[derive(Debug, Clone)]
pub struct EdfScheduler {
    slack_factor: f64,
}

impl EdfScheduler {
    /// Creates an EDF scheduler with implicit deadlines at
    /// `slack_factor × single-slot latency` after arrival.
    ///
    /// # Panics
    ///
    /// Panics if `slack_factor` is not positive and finite.
    pub fn new(slack_factor: f64) -> Self {
        assert!(
            slack_factor.is_finite() && slack_factor > 0.0,
            "slack factor must be positive, got {slack_factor}"
        );
        EdfScheduler { slack_factor }
    }

    /// Returns the slack factor.
    pub fn slack_factor(&self) -> f64 {
        self.slack_factor
    }
}

impl Default for EdfScheduler {
    fn default() -> Self {
        EdfScheduler::new(2.0)
    }
}

impl Scheduler for EdfScheduler {
    fn name(&self) -> String {
        "EDF".to_owned()
    }

    fn next_reconfig(&mut self, view: &SchedView<'_>) -> Option<Reconfig> {
        view.first_free_slot()?;
        // Baseline comparison scheduler: a per-decision candidate sort is
        // its defining behavior, not a regression. nimblock: allow(hot-path-no-alloc)
        let mut apps: Vec<AppId> = view.apps_by_age().collect();
        apps.sort_by_key(|&a| {
            let runtime = view.app(a).expect("live app");
            let isolated = runtime
                .spec()
                .single_slot_latency(runtime.batch_size(), view.reconfig_latency)
                .as_secs_f64();
            let deadline = runtime.arrival()
                + SimDuration::from_secs_f64(self.slack_factor * isolated);
            (deadline, a)
        });
        for app in apps {
            let runtime = view.app(app).expect("live app");
            if let Some(task) = runtime.next_unplaced_ready() {
                if let Some(slot) = view.first_free_slot_fitting(app, task) {
                    return Some(Reconfig { app, task, slot });
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Testbed;
    use nimblock_app::{benchmarks, Priority};
    use nimblock_sim::SimTime;
    use nimblock_workload::{generate, ArrivalEvent, EventSequence, Scenario};

    #[test]
    fn sjf_prefers_the_short_app() {
        // DR and 3DR arrive together; with one slot at a time contended,
        // 3DR must finish long before DR retires.
        let events = EventSequence::new(vec![
            ArrivalEvent::new(benchmarks::digit_recognition(), 2, Priority::Low, SimTime::ZERO),
            ArrivalEvent::new(benchmarks::rendering_3d(), 2, Priority::Low, SimTime::ZERO),
        ]);
        let report = Testbed::new(SjfScheduler::new()).run(&events);
        let r3d = report.record_for_event(1).unwrap();
        assert!(r3d.response_time().as_secs_f64() < 5.0);
    }

    #[test]
    fn edf_orders_by_implicit_deadline() {
        // Same arrival, same benchmark, different batch sizes: the smaller
        // batch has the earlier implicit deadline and retires first.
        let events = EventSequence::new(vec![
            ArrivalEvent::new(benchmarks::optical_flow(), 20, Priority::Low, SimTime::ZERO),
            ArrivalEvent::new(benchmarks::optical_flow(), 2, Priority::Low, SimTime::ZERO),
        ]);
        let report = Testbed::new(EdfScheduler::default()).run(&events);
        let big = report.record_for_event(0).unwrap();
        let small = report.record_for_event(1).unwrap();
        assert!(small.retired < big.retired);
    }

    #[test]
    fn both_policies_complete_random_mixes() {
        let events = generate(17, 10, Scenario::Stress);
        assert_eq!(Testbed::new(SjfScheduler::new()).run(&events).records().len(), 10);
        assert_eq!(
            Testbed::new(EdfScheduler::default()).run(&events).records().len(),
            10
        );
    }

    #[test]
    fn edf_accessors_and_names() {
        let edf = EdfScheduler::new(3.5);
        assert_eq!(edf.slack_factor(), 3.5);
        assert_eq!(edf.name(), "EDF");
        assert_eq!(SjfScheduler::new().name(), "SJF");
        assert!(!edf.pipelining());
    }

    #[test]
    #[should_panic(expected = "slack factor must be positive")]
    fn edf_rejects_bad_slack() {
        let _ = EdfScheduler::new(0.0);
    }
}
