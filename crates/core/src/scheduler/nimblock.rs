//! The Nimblock scheduling algorithm (paper §4).

use std::collections::{BTreeMap, HashMap};

use nimblock_ilp::{saturation, EstimatorConfig, PipelineEstimator};
use nimblock_obs::nb_debug;

use crate::scheduler::{SchedMetrics, TokenBank};
use crate::{AppId, Reconfig, SchedView, Scheduler, TaskPhase};

/// Configuration of the [`NimblockScheduler`], including the ablation
/// switches of the paper's §5.6 study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NimblockConfig {
    /// Enable cross-batch pipelining (Figure 2(c)). Off = `NimblockNoPipe`.
    pub pipelining: bool,
    /// Enable batch-preemption (Algorithm 2). Off = `NimblockNoPreempt`.
    pub preemption: bool,
    /// Preempt mid-item as well (requires a checkpoint-capable overlay —
    /// enable it on the testbed with `with_fine_preemption`). The paper's
    /// §7 future work; off in the evaluated system.
    pub fine_preemption: bool,
    /// Token-accumulation scale factor α (Algorithm 1, line 6).
    pub alpha: f64,
    /// Knee threshold for the goal-number saturation analysis.
    pub improvement_threshold: f64,
}

impl NimblockConfig {
    /// The full algorithm: pipelining and preemption enabled.
    pub fn full() -> Self {
        NimblockConfig {
            pipelining: true,
            preemption: true,
            fine_preemption: false,
            alpha: 1.0,
            improvement_threshold: saturation::DEFAULT_IMPROVEMENT_THRESHOLD,
        }
    }

    /// The future-work variant: preemption also mid-item, on a
    /// checkpoint-capable overlay.
    pub fn fine_preemption() -> Self {
        NimblockConfig {
            fine_preemption: true,
            ..NimblockConfig::full()
        }
    }

    /// Ablation: preemption disabled (`NimblockNoPreempt` in Figure 9).
    pub fn no_preemption() -> Self {
        NimblockConfig {
            preemption: false,
            ..NimblockConfig::full()
        }
    }

    /// Ablation: pipelining disabled (`NimblockNoPipe` in Figure 9).
    pub fn no_pipelining() -> Self {
        NimblockConfig {
            pipelining: false,
            ..NimblockConfig::full()
        }
    }

    /// Ablation: both disabled (`NimblockNoPreemptNoPipe` in Figure 9).
    pub fn no_preemption_no_pipelining() -> Self {
        NimblockConfig {
            pipelining: false,
            preemption: false,
            ..NimblockConfig::full()
        }
    }
}

impl Default for NimblockConfig {
    fn default() -> Self {
        NimblockConfig::full()
    }
}

/// The Nimblock scheduler: PREMA-style token candidacy, goal-number slot
/// allocation, oldest-first task selection, cross-batch pipelining, and
/// batch-preemption of over-consumers.
///
/// Decision pipeline per scheduling point (Figure 3 of the paper):
///
/// 1. accumulate tokens, update the candidate pool (Algorithm 1),
/// 2. reallocate slots: one slot per candidate (oldest first), then up to
///    each candidate's *goal number* (from the saturation analysis run at
///    admission), then surplus slots to whoever can use them, by age,
/// 3. select a task: the oldest candidate below its allocation with a
///    placeable task,
/// 4. select a slot: a free slot if available, otherwise batch-preempt the
///    worst over-consumer's topologically-latest idle task (Algorithm 2).
///
/// # Example
///
/// ```
/// use nimblock_core::{NimblockConfig, NimblockScheduler, Scheduler};
///
/// let full = NimblockScheduler::default();
/// assert!(full.pipelining());
/// let ablated = NimblockScheduler::with_config(NimblockConfig::no_pipelining());
/// assert!(!ablated.pipelining());
/// assert_eq!(ablated.name(), "NimblockNoPipe");
/// ```
#[derive(Debug, Clone)]
pub struct NimblockScheduler {
    config: NimblockConfig,
    bank: TokenBank,
    goals: BTreeMap<AppId, usize>,
    /// Saturation analyses are deterministic per (benchmark, batch, slots);
    /// cache them as the paper caches its offline Gurobi results.
    goal_cache: HashMap<(String, u32, usize), usize>,
    preemptions_issued: u64,
    metrics: SchedMetrics,
    /// Reusable per-decision buffers: the candidate pool and the slot
    /// allocation table (parallel to it, oldest candidate first), so the
    /// per-event decision path allocates nothing once warm.
    candidate_buf: Vec<AppId>,
    alloc_buf: Vec<(AppId, usize)>,
}

/// Looks up `app`'s allocation in the flat table. Candidate pools are a
/// handful of entries, so a linear scan beats a tree here.
fn alloc_of(alloc: &[(AppId, usize)], app: AppId) -> Option<usize> {
    alloc.iter().find(|&&(a, _)| a == app).map(|&(_, n)| n)
}

impl NimblockScheduler {
    /// Creates the full Nimblock scheduler.
    pub fn new() -> Self {
        NimblockScheduler::with_config(NimblockConfig::full())
    }

    /// Creates a Nimblock scheduler with explicit (possibly ablated)
    /// configuration.
    pub fn with_config(config: NimblockConfig) -> Self {
        NimblockScheduler {
            config,
            bank: TokenBank::new(config.alpha),
            goals: BTreeMap::new(),
            goal_cache: HashMap::new(),
            preemptions_issued: 0,
            metrics: SchedMetrics::detached(),
            candidate_buf: Vec::new(),
            alloc_buf: Vec::new(),
        }
    }

    /// Returns the configuration.
    pub fn config(&self) -> &NimblockConfig {
        &self.config
    }

    /// Returns how many batch-preemption directives this scheduler issued.
    pub fn preemptions_issued(&self) -> u64 {
        self.preemptions_issued
    }

    /// Computes (or recalls) the goal number for an admitted application.
    fn goal_number(&mut self, view: &SchedView<'_>, app: AppId) -> usize {
        let runtime = view.app(app).expect("admitting app is live");
        let name = runtime.spec().name();
        let batch = runtime.batch_size();
        let slots = view.slot_count();
        // Borrowed scan instead of a keyed lookup so the cache-hit path
        // (every arrival after the first per workload shape) builds no
        // owned key. The cache holds one entry per distinct
        // (name, batch, slots) combination — a handful.
        if let Some(&goal) = self
            .goal_cache
            .iter()
            .find_map(|((n, b, s), g)| (n == name && *b == batch && *s == slots).then_some(g))
        {
            return goal;
        }
        let estimator = PipelineEstimator::new(EstimatorConfig {
            reconfig: view.reconfig_latency,
            pipelining: self.config.pipelining,
        });
        let goal = saturation::analyze_with(
            &estimator,
            runtime.spec(),
            batch,
            slots,
            self.config.improvement_threshold,
        )
        .goal_number();
        // First sight of this workload shape: the one-time saturation
        // analysis dwarfs the key allocation.
        // nimblock: allow(hot-path-no-alloc) cache-miss path only
        self.goal_cache.insert((name.to_owned(), batch, slots), goal);
        goal
    }

    /// The most slots an application can put to work right now.
    fn usable_cap(&self, view: &SchedView<'_>, app: AppId) -> usize {
        let Some(runtime) = view.app(app) else { return 0 };
        if self.config.pipelining {
            // Every unfinished task can hold a pipeline stage.
            runtime.unfinished_tasks()
        } else {
            // Without pipelining only parallel graph branches can coexist.
            runtime
                .spec()
                .graph()
                .max_width()
                .min(runtime.unfinished_tasks())
        }
    }

    /// Phase 2 of Figure 3: distribute slots among the current candidate
    /// pool (`candidate_buf`), filling the parallel `alloc_buf` table.
    fn allocate(&mut self, view: &SchedView<'_>) {
        self.alloc_buf.clear();
        self.alloc_buf
            .extend(self.candidate_buf.iter().map(|&a| (a, 0usize)));
        let mut left = view.slot_count();
        // One slot each, oldest candidate first, to guarantee forward
        // progress for everyone.
        for i in 0..self.alloc_buf.len() {
            if left == 0 {
                return;
            }
            self.alloc_buf[i].1 = 1;
            left -= 1;
        }
        // Raise allocations to the goal number, oldest first.
        for i in 0..self.alloc_buf.len() {
            let app = self.alloc_buf[i].0;
            let goal = self.goals.get(&app).copied().unwrap_or(1);
            while left > 0 && self.alloc_buf[i].1 < goal {
                self.alloc_buf[i].1 += 1;
                left -= 1;
            }
        }
        // Surplus slots go to whoever can still use them, by age.
        for i in 0..self.alloc_buf.len() {
            let app = self.alloc_buf[i].0;
            let cap = self.usable_cap(view, app);
            while left > 0 && self.alloc_buf[i].1 < cap {
                self.alloc_buf[i].1 += 1;
                left -= 1;
            }
        }
    }

    /// Algorithm 2: pick the slot to batch-preempt for `for_app`, if any.
    fn preemption_victim(
        &self,
        view: &SchedView<'_>,
        alloc: &[(AppId, usize)],
        for_app: AppId,
        needs: &nimblock_fpga::Resources,
    ) -> Option<nimblock_fpga::SlotId> {
        let mut over_consumption = 0i64;
        let mut over_consumer: Option<AppId> = None;
        for binding in view.slots {
            let Some((slot_app, slot_task)) = binding.bound else {
                continue;
            };
            if slot_app == for_app {
                continue;
            }
            let Some(runtime) = view.app(slot_app) else {
                continue;
            };
            let consumption =
                runtime.slots_used() as i64 - alloc_of(alloc, slot_app).unwrap_or(0) as i64;
            let waiting = match runtime.phase(slot_task) {
                TaskPhase::Idle(_) => true,
                // A checkpoint-capable overlay can stop a running item too.
                TaskPhase::Running(_) => self.config.fine_preemption,
                _ => false,
            };
            if waiting && consumption > over_consumption {
                over_consumption = consumption;
                over_consumer = Some(slot_app);
            }
        }
        // "If no application is an over-consumer, then no task will be
        // preempted."
        let victim_app = over_consumer?;
        let runtime = view.app(victim_app).expect("selected above");
        let victim_task = runtime.topologically_latest_placed()?;
        // Preempt at a batch boundary, or mid-item when the overlay can
        // checkpoint; otherwise delay until the task reaches a boundary
        // (the hypervisor will ask again at that event).
        let slot = match runtime.phase(victim_task) {
            TaskPhase::Idle(slot) => slot,
            TaskPhase::Running(slot) if self.config.fine_preemption => slot,
            _ => return None,
        };
        // On heterogeneous overlays the reclaimed slot must fit the task.
        needs
            .fits_within(&view.slots[slot.index()].resources)
            .then_some(slot)
    }
}

impl Default for NimblockScheduler {
    fn default() -> Self {
        NimblockScheduler::new()
    }
}

impl Scheduler for NimblockScheduler {
    fn name(&self) -> String {
        let base = match (self.config.pipelining, self.config.preemption) {
            (true, true) => "Nimblock",
            (true, false) => "NimblockNoPreempt",
            (false, true) => "NimblockNoPipe",
            (false, false) => "NimblockNoPreemptNoPipe",
        };
        if self.config.fine_preemption {
            format!("{base}Fine")
        } else {
            base.to_owned()
        }
    }

    fn pipelining(&self) -> bool {
        self.config.pipelining
    }

    fn on_arrival(&mut self, view: &SchedView<'_>, app: AppId) {
        let runtime = view.app(app).expect("arriving app is live");
        self.bank.admit(runtime, view);
        let goal = self.goal_number(view, app);
        self.goals.insert(app, goal);
    }

    fn on_retire(&mut self, _view: &SchedView<'_>, app: AppId) {
        self.bank.remove(app);
        self.goals.remove(&app);
    }

    fn attach_metrics(&mut self, registry: &nimblock_obs::Registry) {
        self.metrics.register(registry);
    }

    fn next_reconfig(&mut self, view: &SchedView<'_>) -> Option<Reconfig> {
        self.metrics.decisions.inc();
        self.bank.accumulate(view.now);
        self.metrics
            .max_tokens_milli
            .set((self.bank.max_tokens() * 1000.0) as i64);
        // One candidate query serves the whole decision: repeat queries at
        // the same `now` are idempotent (threshold and candidate stamps do
        // not move between them), so reusing the buffer changes nothing.
        self.bank.candidates_into(view.now, &mut self.candidate_buf);
        self.candidate_buf.retain(|c| view.app(*c).is_some());
        self.metrics.candidates.observe(self.candidate_buf.len() as u64);
        if self.candidate_buf.is_empty() {
            return None;
        }
        self.allocate(view);
        // Oldest candidate below its allocation with a placeable task.
        for i in 0..self.candidate_buf.len() {
            let app = self.candidate_buf[i];
            let runtime = view.app(app).expect("retained above");
            if runtime.slots_used() >= self.alloc_buf[i].1 {
                continue;
            }
            let task = if self.config.pipelining {
                runtime.next_unplaced_eager()
            } else {
                runtime.next_unplaced_ready()
            };
            let Some(task) = task else { continue };
            // Prefer the free slot with the cheapest input path from the
            // task's placed predecessors; on the through-PS interconnect
            // every slot costs the same and this is the first free slot.
            if let Some(slot) = view.best_free_slot_for(app, task) {
                self.metrics.directives.inc();
                nb_debug!("sched.nimblock", "place {app} {task} -> {slot}");
                return Some(Reconfig { app, task, slot });
            }
            if self.config.preemption {
                let needs = *view
                    .app(app)
                    .expect("retained above")
                    .spec()
                    .graph()
                    .task(task)
                    .resources();
                if let Some(slot) = self.preemption_victim(view, &self.alloc_buf, app, &needs) {
                    self.preemptions_issued += 1;
                    self.metrics.directives.inc();
                    self.metrics.preempt_directives.inc();
                    nb_debug!("sched.nimblock", "preempt {slot} for {app} {task}");
                    return Some(Reconfig { app, task, slot });
                }
            }
            // No slot obtainable for the neediest candidate; wait for a
            // batch boundary or a retirement rather than skipping ahead.
            return None;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Testbed;
    use nimblock_app::{benchmarks, Priority};
    use nimblock_sim::SimTime;
    use nimblock_workload::{ArrivalEvent, EventSequence};

    #[test]
    fn names_follow_ablation_config() {
        assert_eq!(NimblockScheduler::new().name(), "Nimblock");
        assert_eq!(
            NimblockScheduler::with_config(NimblockConfig::no_preemption()).name(),
            "NimblockNoPreempt"
        );
        assert_eq!(
            NimblockScheduler::with_config(NimblockConfig::no_preemption_no_pipelining()).name(),
            "NimblockNoPreemptNoPipe"
        );
    }

    #[test]
    fn pipelining_beats_bulk_for_a_lone_batched_app() {
        let events = EventSequence::new(vec![ArrivalEvent::new(
            benchmarks::optical_flow(),
            10,
            Priority::Medium,
            SimTime::ZERO,
        )]);
        let full = Testbed::new(NimblockScheduler::new()).run(&events);
        let no_pipe =
            Testbed::new(NimblockScheduler::with_config(NimblockConfig::no_pipelining())).run(&events);
        assert!(
            full.records()[0].response_time() < no_pipe.records()[0].response_time(),
            "pipelining should shorten a batched chain"
        );
    }

    #[test]
    fn preemption_rescues_late_arrivals_from_monopolists() {
        // A big pipelining AlexNet occupies many slots; nine short LeNets
        // arrive later. With preemption they claw slots back.
        let mut events = vec![ArrivalEvent::new(
            benchmarks::alexnet(),
            20,
            Priority::Low,
            SimTime::ZERO,
        )];
        for i in 0..9 {
            events.push(ArrivalEvent::new(
                benchmarks::lenet(),
                2,
                Priority::High,
                SimTime::from_millis(2_000 + i * 100),
            ));
        }
        let events = EventSequence::new(events);
        let with = Testbed::new(NimblockScheduler::new()).run(&events);
        let without =
            Testbed::new(NimblockScheduler::with_config(NimblockConfig::no_preemption())).run(&events);
        let mean_lenet = |r: &nimblock_metrics::Report| {
            let times: Vec<f64> = r
                .records()
                .iter()
                .filter(|rec| rec.app_name == "LeNet")
                .map(|rec| rec.response_time().as_secs_f64())
                .collect();
            times.iter().sum::<f64>() / times.len() as f64
        };
        assert!(
            mean_lenet(&with) <= mean_lenet(&without) * 1.05,
            "preemption should not hurt the short high-priority apps: {} vs {}",
            mean_lenet(&with),
            mean_lenet(&without)
        );
    }

    #[test]
    fn all_apps_retire_under_every_ablation() {
        let events = EventSequence::new(vec![
            ArrivalEvent::new(benchmarks::lenet(), 5, Priority::Low, SimTime::ZERO),
            ArrivalEvent::new(benchmarks::alexnet(), 3, Priority::Medium, SimTime::from_millis(100)),
            ArrivalEvent::new(benchmarks::image_compression(), 8, Priority::High, SimTime::from_millis(200)),
            ArrivalEvent::new(benchmarks::rendering_3d(), 2, Priority::Low, SimTime::from_millis(300)),
        ]);
        for config in [
            NimblockConfig::full(),
            NimblockConfig::no_preemption(),
            NimblockConfig::no_pipelining(),
            NimblockConfig::no_preemption_no_pipelining(),
        ] {
            let report = Testbed::new(NimblockScheduler::with_config(config)).run(&events);
            assert_eq!(report.records().len(), 4, "{config:?}");
        }
    }
}
