//! Schedule traces: a per-slot record of everything the hypervisor did.
//!
//! Traces serve three purposes: debugging a policy (render a Gantt chart of
//! the schedule), validating hardware constraints after the fact (the
//! configuration port never overlaps itself; a slot never runs two things
//! at once), and feeding external analysis (serialize and post-process).

use std::fmt::Write as _;

use nimblock_ser::{impl_json_enum_structs, impl_json_struct};

use nimblock_app::TaskId;
use nimblock_fpga::SlotId;
use nimblock_sim::SimTime;

use crate::AppId;

/// One traced occurrence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// An application entered the pending queue.
    Arrival {
        /// The admitted application.
        app: AppId,
        /// Benchmark name.
        name: String,
        /// Admission time.
        at: SimTime,
    },
    /// The configuration port started streaming a bitstream into a slot.
    Reconfig {
        /// Destination slot.
        slot: SlotId,
        /// Application whose task is being configured.
        app: AppId,
        /// The task being configured.
        task: TaskId,
        /// Stream start.
        at: SimTime,
        /// Stream completion.
        until: SimTime,
    },
    /// A task processed one batch item on a slot.
    Item {
        /// The slot it ran on.
        slot: SlotId,
        /// Owning application.
        app: AppId,
        /// The task.
        task: TaskId,
        /// Zero-based index of the batch item.
        item: u32,
        /// Item start.
        at: SimTime,
        /// Item completion.
        until: SimTime,
    },
    /// A task was batch-preempted off its slot.
    Preempt {
        /// The surrendered slot.
        slot: SlotId,
        /// The preempted application.
        app: AppId,
        /// The preempted task.
        task: TaskId,
        /// Preemption time.
        at: SimTime,
    },
    /// An application retired.
    Retire {
        /// The retired application.
        app: AppId,
        /// Retirement time.
        at: SimTime,
    },
}

impl_json_enum_structs!(TraceEvent {
    Arrival { app, name, at },
    Reconfig { slot, app, task, at, until },
    Item { slot, app, task, item, at, until },
    Preempt { slot, app, task, at },
    Retire { app, at },
});

impl TraceEvent {
    /// Returns the time the event occurred (its start, for spans).
    pub fn at(&self) -> SimTime {
        match self {
            TraceEvent::Arrival { at, .. }
            | TraceEvent::Reconfig { at, .. }
            | TraceEvent::Item { at, .. }
            | TraceEvent::Preempt { at, .. }
            | TraceEvent::Retire { at, .. } => *at,
        }
    }
}

/// The full schedule record of one testbed run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl_json_struct!(Trace { events });

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    pub(crate) fn push(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    /// Returns every traced event in emission order (non-decreasing time).
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Returns the number of traced events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if nothing was traced.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Returns the busy spans `(start, end)` of one slot, in time order:
    /// reconfigurations and item executions.
    pub fn slot_spans(&self, slot: SlotId) -> Vec<(SimTime, SimTime)> {
        self.events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Reconfig { slot: s, at, until, .. }
                | TraceEvent::Item { slot: s, at, until, .. }
                    if *s == slot =>
                {
                    Some((*at, *until))
                }
                _ => None,
            })
            .collect()
    }

    /// Returns the spans during which the configuration port was streaming.
    pub fn cap_spans(&self) -> Vec<(SimTime, SimTime)> {
        self.events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Reconfig { at, until, .. } => Some((*at, *until)),
                _ => None,
            })
            .collect()
    }

    /// Checks the hardware constraints the schedule must respect.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violation found: overlapping
    /// reconfigurations on the configuration port, or overlapping busy
    /// spans on any slot.
    pub fn validate(&self, slot_count: usize) -> Result<(), String> {
        let mut cap = self.cap_spans();
        cap.sort();
        for pair in cap.windows(2) {
            if pair[1].0 < pair[0].1 {
                return Err(format!(
                    "configuration port overlap: [{}, {}) and [{}, {})",
                    pair[0].0, pair[0].1, pair[1].0, pair[1].1
                ));
            }
        }
        for index in 0..slot_count {
            let slot = SlotId::new(index as u32);
            let mut spans = self.slot_spans(slot);
            spans.sort();
            for pair in spans.windows(2) {
                if pair[1].0 < pair[0].1 {
                    return Err(format!(
                        "{slot} overlap: [{}, {}) and [{}, {})",
                        pair[0].0, pair[0].1, pair[1].0, pair[1].1
                    ));
                }
            }
        }
        Ok(())
    }

    /// Returns each slot's busy fraction (reconfiguration + execution time
    /// over the trace's duration). The paper motivates fine-grained sharing
    /// with resource efficiency; this is the number that quantifies it.
    pub fn slot_utilization(&self, slot_count: usize) -> Vec<f64> {
        let end = self
            .events
            .iter()
            .map(|e| match e {
                TraceEvent::Reconfig { until, .. } | TraceEvent::Item { until, .. } => *until,
                other => other.at(),
            })
            .max()
            .unwrap_or(SimTime::ZERO);
        let total = end.as_micros().max(1) as f64;
        (0..slot_count)
            .map(|i| {
                let busy: u64 = self
                    .slot_spans(SlotId::new(i as u32))
                    .iter()
                    .map(|&(a, b)| b.as_micros() - a.as_micros())
                    .sum();
                busy as f64 / total
            })
            .collect()
    }

    /// Renders a textual Gantt chart of the schedule: one row per slot,
    /// `width` character columns spanning the trace duration. `#` marks
    /// reconfiguration, letters mark executing applications (a = app 0,
    /// b = app 1, …), `.` marks idle.
    pub fn gantt(&self, slot_count: usize, width: usize) -> String {
        let end = self
            .events
            .iter()
            .map(|e| match e {
                TraceEvent::Reconfig { until, .. } | TraceEvent::Item { until, .. } => *until,
                other => other.at(),
            })
            .max()
            .unwrap_or(SimTime::ZERO);
        let total = end.as_micros().max(1);
        let col = |t: SimTime| ((t.as_micros() as u128 * width as u128) / total as u128) as usize;
        let mut rows = vec![vec![b'.'; width]; slot_count];
        for event in &self.events {
            let (slot, at, until, mark) = match event {
                TraceEvent::Reconfig { slot, at, until, .. } => (*slot, *at, *until, b'#'),
                TraceEvent::Item { slot, app, at, until, .. } => {
                    let letter = b'a' + (app.raw() % 26) as u8;
                    (*slot, *at, *until, letter)
                }
                _ => continue,
            };
            let (from, to) = (col(at), col(until).max(col(at) + 1).min(width));
            for cell in &mut rows[slot.index()][from..to] {
                *cell = mark;
            }
        }
        let mut out = String::new();
        for (index, row) in rows.iter().enumerate() {
            let _ = writeln!(
                out,
                "slot#{index:<2} |{}|",
                String::from_utf8_lossy(row)
            );
        }
        let _ = writeln!(out, "        0{:>width$}", end, width = width - 1);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span_event(slot: u32, app: u64, from_ms: u64, to_ms: u64) -> TraceEvent {
        TraceEvent::Item {
            slot: SlotId::new(slot),
            app: AppId::new(app),
            task: TaskId::new(0),
            item: 0,
            at: SimTime::from_millis(from_ms),
            until: SimTime::from_millis(to_ms),
        }
    }

    fn reconfig_event(slot: u32, from_ms: u64, to_ms: u64) -> TraceEvent {
        TraceEvent::Reconfig {
            slot: SlotId::new(slot),
            app: AppId::new(0),
            task: TaskId::new(0),
            at: SimTime::from_millis(from_ms),
            until: SimTime::from_millis(to_ms),
        }
    }

    #[test]
    fn validate_accepts_a_clean_schedule() {
        let mut trace = Trace::new();
        trace.push(reconfig_event(0, 0, 80));
        trace.push(span_event(0, 0, 80, 130));
        trace.push(reconfig_event(1, 80, 160));
        trace.push(span_event(1, 1, 160, 200));
        assert_eq!(trace.validate(2), Ok(()));
    }

    #[test]
    fn validate_rejects_cap_overlap() {
        let mut trace = Trace::new();
        trace.push(reconfig_event(0, 0, 80));
        trace.push(reconfig_event(1, 40, 120));
        let err = trace.validate(2).unwrap_err();
        assert!(err.contains("configuration port overlap"), "{err}");
    }

    #[test]
    fn validate_rejects_slot_overlap() {
        let mut trace = Trace::new();
        trace.push(span_event(0, 0, 0, 100));
        trace.push(span_event(0, 1, 50, 150));
        let err = trace.validate(1).unwrap_err();
        assert!(err.contains("slot#0 overlap"), "{err}");
    }

    #[test]
    fn slot_spans_filter_by_slot() {
        let mut trace = Trace::new();
        trace.push(span_event(0, 0, 0, 10));
        trace.push(span_event(1, 0, 5, 15));
        trace.push(reconfig_event(0, 20, 100));
        assert_eq!(trace.slot_spans(SlotId::new(0)).len(), 2);
        assert_eq!(trace.slot_spans(SlotId::new(1)).len(), 1);
        assert_eq!(trace.cap_spans().len(), 1);
    }

    #[test]
    fn gantt_renders_rows_and_marks() {
        let mut trace = Trace::new();
        trace.push(reconfig_event(0, 0, 500));
        trace.push(span_event(0, 0, 500, 1_000));
        trace.push(span_event(1, 1, 0, 1_000));
        let chart = trace.gantt(2, 20);
        assert_eq!(chart.lines().count(), 3);
        assert!(chart.contains('#'), "reconfiguration mark missing:\n{chart}");
        assert!(chart.contains('a'), "app 0 mark missing:\n{chart}");
        assert!(chart.contains('b'), "app 1 mark missing:\n{chart}");
    }

    #[test]
    fn empty_trace_is_valid_and_renders() {
        let trace = Trace::new();
        assert!(trace.is_empty());
        assert_eq!(trace.validate(4), Ok(()));
        assert_eq!(trace.gantt(2, 10).lines().count(), 3);
    }

    #[test]
    fn slot_utilization_measures_busy_fractions() {
        let mut trace = Trace::new();
        trace.push(reconfig_event(0, 0, 250));
        trace.push(span_event(0, 0, 250, 1_000));
        trace.push(span_event(1, 1, 0, 500));
        let util = trace.slot_utilization(3);
        assert!((util[0] - 1.0).abs() < 1e-9);
        assert!((util[1] - 0.5).abs() < 1e-9);
        assert_eq!(util[2], 0.0);
    }

    #[test]
    fn event_at_returns_start_times() {
        assert_eq!(
            span_event(0, 0, 7, 9).at(),
            SimTime::from_millis(7)
        );
        let retire = TraceEvent::Retire {
            app: AppId::new(3),
            at: SimTime::from_millis(11),
        };
        assert_eq!(retire.at(), SimTime::from_millis(11));
    }
}
