//! Schedule traces: a per-slot record of everything the hypervisor did.
//!
//! Traces serve three purposes: debugging a policy (render a Gantt chart of
//! the schedule), validating hardware constraints after the fact (the
//! configuration port never overlaps itself; a slot never runs two things
//! at once), and feeding external analysis (serialize and post-process).

use nimblock_obs::{render_gantt, ChromeTrace, GanttRow};
use nimblock_ser::{impl_json_enum_structs, impl_json_struct, Json};

use nimblock_app::{Priority, TaskId};
use nimblock_fpga::SlotId;
use nimblock_sim::SimTime;

use crate::AppId;

/// One traced occurrence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// An application entered the pending queue.
    Arrival {
        /// The admitted application.
        app: AppId,
        /// Benchmark name.
        name: String,
        /// Batch size (items each task must process). Recorded so trace
        /// analysis can audit work conservation without the stimulus file.
        batch: u32,
        /// Priority level, for auditing preemption ordering.
        priority: Priority,
        /// Admission time.
        at: SimTime,
    },
    /// The configuration port started streaming a bitstream into a slot.
    Reconfig {
        /// Destination slot.
        slot: SlotId,
        /// Application whose task is being configured.
        app: AppId,
        /// The task being configured.
        task: TaskId,
        /// Stream start.
        at: SimTime,
        /// Stream completion.
        until: SimTime,
    },
    /// A task processed one batch item on a slot.
    Item {
        /// The slot it ran on.
        slot: SlotId,
        /// Owning application.
        app: AppId,
        /// The task.
        task: TaskId,
        /// Zero-based index of the batch item.
        item: u32,
        /// Item start.
        at: SimTime,
        /// Item completion.
        until: SimTime,
    },
    /// A task was batch-preempted off its slot.
    Preempt {
        /// The surrendered slot.
        slot: SlotId,
        /// The preempted application.
        app: AppId,
        /// The preempted task.
        task: TaskId,
        /// Preemption time.
        at: SimTime,
    },
    /// An application retired.
    Retire {
        /// The retired application.
        app: AppId,
        /// Retirement time.
        at: SimTime,
    },
}

impl_json_enum_structs!(TraceEvent {
    Arrival { app, name, batch, priority, at },
    Reconfig { slot, app, task, at, until },
    Item { slot, app, task, item, at, until },
    Preempt { slot, app, task, at },
    Retire { app, at },
});

impl TraceEvent {
    /// Returns the time the event occurred (its start, for spans).
    pub fn at(&self) -> SimTime {
        match self {
            TraceEvent::Arrival { at, .. }
            | TraceEvent::Reconfig { at, .. }
            | TraceEvent::Item { at, .. }
            | TraceEvent::Preempt { at, .. }
            | TraceEvent::Retire { at, .. } => *at,
        }
    }
}

/// The full schedule record of one testbed run.
///
/// Carries the device's slot count, recorded at testbed level when tracing
/// is enabled, so analysis ([`Trace::validate`],
/// [`Trace::slot_utilization`], [`Trace::gantt`], [`Trace::to_chrome`])
/// needs no out-of-band configuration — callers used to pass a slot count
/// themselves, which silently truncated or padded results when wrong.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    events: Vec<TraceEvent>,
    slot_count: usize,
}

impl_json_struct!(Trace { events, slot_count });

impl Trace {
    /// Creates an empty trace with no declared slots (the slot count is
    /// then inferred from the highest slot any event names).
    pub fn new() -> Self {
        Trace::default()
    }

    /// Creates an empty trace for a device with `slot_count` slots.
    pub fn with_slots(slot_count: usize) -> Self {
        Trace { events: Vec::new(), slot_count }
    }

    /// Appends one event. The hypervisor records real runs itself; this is
    /// public so tests and external tooling can build fixture traces (e.g.
    /// adversarial schedules for the invariant verifier) by hand.
    pub fn record(&mut self, event: TraceEvent) {
        // The trace is the run's primary artifact: recorded only when a run
        // opts in (`run_traced`/`--trace-out`), and attribution, invariant
        // verification, and the exporters all need it complete, not sampled.
        // nimblock: allow(no-unbounded-span-buffer, hot-path-no-alloc)
        self.events.push(event);
    }

    /// The number of slots this trace describes: the device's slot count
    /// when recorded through the hypervisor, never less than the highest
    /// slot an event names (so hand-built traces still analyse correctly).
    pub fn slots(&self) -> usize {
        let named = self
            .events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Reconfig { slot, .. }
                | TraceEvent::Item { slot, .. }
                | TraceEvent::Preempt { slot, .. } => Some(slot.index() + 1),
                _ => None,
            })
            .max()
            .unwrap_or(0);
        self.slot_count.max(named)
    }

    /// The end of the trace: the latest span end or event time.
    pub fn end(&self) -> SimTime {
        self.events
            .iter()
            .map(|e| match e {
                TraceEvent::Reconfig { until, .. } | TraceEvent::Item { until, .. } => *until,
                other => other.at(),
            })
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Returns every traced event in emission order (non-decreasing time).
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Returns the number of traced events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if nothing was traced.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Returns the busy spans `(start, end)` of one slot, in time order:
    /// reconfigurations and item executions.
    pub fn slot_spans(&self, slot: SlotId) -> Vec<(SimTime, SimTime)> {
        self.events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Reconfig { slot: s, at, until, .. }
                | TraceEvent::Item { slot: s, at, until, .. }
                    if *s == slot =>
                {
                    Some((*at, *until))
                }
                _ => None,
            })
            .collect()
    }

    /// Returns the spans during which the configuration port was streaming.
    pub fn cap_spans(&self) -> Vec<(SimTime, SimTime)> {
        self.events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Reconfig { at, until, .. } => Some((*at, *until)),
                _ => None,
            })
            .collect()
    }

    /// Checks the hardware constraints the schedule must respect.
    ///
    /// A compatibility shim over [`crate::invariants::verify_hardware`]:
    /// only the physical-resource rules (configuration-port exclusivity,
    /// slot double-booking), joined into one string. Prefer
    /// [`Trace::verify`] — it checks the full invariant set and returns
    /// *all* violations as structured data.
    ///
    /// # Errors
    ///
    /// Returns the descriptions of every hardware violation found,
    /// `; `-joined: overlapping reconfigurations on the configuration
    /// port, or overlapping busy spans on any slot.
    pub fn validate(&self) -> Result<(), String> {
        let violations = crate::invariants::verify_hardware(self);
        if violations.is_empty() {
            return Ok(());
        }
        Err(violations
            .iter()
            .map(|v| v.message.clone())
            .collect::<Vec<_>>()
            .join("; "))
    }

    /// Verifies the full schedule-invariant set against this trace (see
    /// [`crate::invariants`]), returning every violation found.
    pub fn verify(
        &self,
        config: &crate::invariants::InvariantConfig,
    ) -> crate::invariants::InvariantReport {
        crate::invariants::verify_trace(self, config)
    }

    /// Returns each slot's busy fraction (reconfiguration + execution time
    /// over the trace's duration), one entry per device slot
    /// ([`Trace::slots`]). The paper motivates fine-grained sharing with
    /// resource efficiency; this is the number that quantifies it.
    pub fn slot_utilization(&self) -> Vec<f64> {
        let total = self.end().as_micros().max(1) as f64;
        (0..self.slots())
            .map(|i| {
                let busy: u64 = self
                    .slot_spans(SlotId::new(i as u32))
                    .iter()
                    .map(|&(a, b)| b.as_micros() - a.as_micros())
                    .sum();
                busy as f64 / total
            })
            .collect()
    }

    /// Renders a textual Gantt chart of the schedule via
    /// `nimblock_obs::render_gantt`: one row per slot plus a `CAP` row for
    /// the configuration port, `width` character columns spanning the trace
    /// duration. `#` marks reconfiguration, letters mark executing
    /// applications (a = app 0, b = app 1, …), `.` marks idle.
    pub fn gantt(&self, width: usize) -> String {
        let end = self.end();
        let total = end.as_micros();
        let mut rows: Vec<GanttRow> = (0..self.slots())
            .map(|i| {
                let mut row = GanttRow::new(format!("slot#{i}"));
                // Idle background, overwritten by busy spans.
                row.span(0, total, '.');
                row
            })
            .collect();
        let mut cap = GanttRow::new("CAP");
        cap.span(0, total, '.');
        for event in &self.events {
            match event {
                TraceEvent::Reconfig { slot, at, until, .. } => {
                    rows[slot.index()].span(at.as_micros(), until.as_micros(), '#');
                    cap.span(at.as_micros(), until.as_micros(), 'R');
                }
                TraceEvent::Item { slot, app, at, until, .. } => {
                    let letter = (b'a' + (app.raw() % 26) as u8) as char;
                    rows[slot.index()].span(at.as_micros(), until.as_micros(), letter);
                }
                _ => {}
            }
        }
        rows.push(cap);
        render_gantt(&rows, width, total, &end.to_string())
    }

    /// Exports the schedule as Chrome trace-event JSON, loadable in
    /// Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`: one
    /// track per slot (task items and per-slot reconfiguration spans,
    /// preemption markers) plus a `CAP` track showing configuration-port
    /// occupancy and an `apps` track with arrival/retire markers. Flow
    /// (`ph:"s"`/`ph:"f"`) arrows tie each CAP reconfiguration to the
    /// first task item it enables — the causal edges of the critical
    /// path. Two `ph:"C"` counter lanes — waiting apps and slot
    /// utilization, one sample per tumbling window of the derived
    /// monitor series (see [`crate::monitor`]) — render the load shape
    /// next to the slot tracks. All timestamps are simulated
    /// microseconds.
    pub fn to_chrome(&self) -> String {
        let slots = self.slots() as u64;
        let cap_tid = slots;
        let apps_tid = slots + 1;
        let queue_tid = slots + 2;
        let util_tid = slots + 3;
        let mut chrome = ChromeTrace::new();
        for i in 0..slots {
            chrome.thread_name(i, &format!("slot#{i}"));
        }
        chrome.thread_name(cap_tid, "CAP");
        chrome.thread_name(apps_tid, "apps");
        // Coarsen the counter-lane window so long traces stay renderable:
        // at most ~128 samples per lane, never finer than the default
        // window, always a whole multiple of it (keeps timestamps tidy).
        let base = nimblock_obs::MonitorConfig::default().window_micros;
        let span = self.end().as_micros();
        let lane_window = span.div_ceil(128).div_ceil(base).max(1) * base;
        let monitor = crate::monitor::derive_monitor(
            self,
            nimblock_obs::MonitorConfig::with_window_micros(lane_window),
        );
        if !monitor.windows().is_empty() {
            chrome.thread_name(queue_tid, "waiting apps");
            chrome.thread_name(util_tid, "slot utilization");
            let window = monitor.config().window_micros;
            for (index, snapshot) in monitor.windows().iter().enumerate() {
                let ts = index as u64 * window;
                chrome.counter(
                    "waiting apps",
                    "monitor",
                    queue_tid,
                    ts,
                    &[("apps", snapshot.queue_depth_peak)],
                );
                chrome.counter(
                    "slot utilization",
                    "monitor",
                    util_tid,
                    ts,
                    &[("permille", snapshot.utilization_permille(monitor.slots(), window))],
                );
            }
        }
        let mut flow_id = 0u64;
        for event in &self.events {
            match event {
                TraceEvent::Arrival { app, name, at, .. } => {
                    chrome.instant(
                        &format!("arrival {name} ({app})"),
                        "lifecycle",
                        apps_tid,
                        at.as_micros(),
                    );
                }
                TraceEvent::Retire { app, at } => {
                    chrome.instant(
                        &format!("retire {app}"),
                        "lifecycle",
                        apps_tid,
                        at.as_micros(),
                    );
                }
                TraceEvent::Reconfig { slot, app, task, at, until } => {
                    let dur = until.saturating_since(*at).as_micros();
                    chrome.complete_with_args(
                        &format!("pr {app} {task}"),
                        "reconfig",
                        slot.index() as u64,
                        at.as_micros(),
                        dur,
                        vec![("slot".to_owned(), Json::Str(slot.to_string()))],
                    );
                    chrome.complete(
                        &format!("{slot} ← {app} {task}"),
                        "reconfig",
                        cap_tid,
                        at.as_micros(),
                        dur,
                    );
                    // Flow arrow: this reconfiguration *enables* the first
                    // item the configured task runs at or after stream
                    // completion — the reconfig→task-start causal edge of
                    // the app's critical path.
                    let enabled = self.events.iter().find_map(|e| match e {
                        TraceEvent::Item { slot: s, app: a, task: t, at: item_at, .. }
                            if a == app && t == task && *item_at >= *until =>
                        {
                            Some((*s, *item_at))
                        }
                        _ => None,
                    });
                    if let Some((item_slot, item_at)) = enabled {
                        flow_id += 1;
                        let name = format!("pr {app} {task} enables");
                        // Tail inside the CAP slice (slices are clamped to
                        // at least 1 µs wide, so until-1 is in range).
                        chrome.flow_start(
                            &name,
                            "flow",
                            cap_tid,
                            until.as_micros().saturating_sub(1).max(at.as_micros()),
                            flow_id,
                        );
                        chrome.flow_finish(
                            &name,
                            "flow",
                            item_slot.index() as u64,
                            item_at.as_micros(),
                            flow_id,
                        );
                    }
                }
                TraceEvent::Item { slot, app, task, item, at, until } => {
                    chrome.complete_with_args(
                        &format!("{app} {task}"),
                        "run",
                        slot.index() as u64,
                        at.as_micros(),
                        until.saturating_since(*at).as_micros(),
                        vec![("item".to_owned(), Json::U64(u64::from(*item)))],
                    );
                }
                TraceEvent::Preempt { slot, app, task, at } => {
                    chrome.instant(
                        &format!("preempt {app} {task}"),
                        "preempt",
                        slot.index() as u64,
                        at.as_micros(),
                    );
                }
            }
        }
        chrome.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span_event(slot: u32, app: u64, from_ms: u64, to_ms: u64) -> TraceEvent {
        TraceEvent::Item {
            slot: SlotId::new(slot),
            app: AppId::new(app),
            task: TaskId::new(0),
            item: 0,
            at: SimTime::from_millis(from_ms),
            until: SimTime::from_millis(to_ms),
        }
    }

    fn reconfig_event(slot: u32, from_ms: u64, to_ms: u64) -> TraceEvent {
        TraceEvent::Reconfig {
            slot: SlotId::new(slot),
            app: AppId::new(0),
            task: TaskId::new(0),
            at: SimTime::from_millis(from_ms),
            until: SimTime::from_millis(to_ms),
        }
    }

    #[test]
    fn validate_accepts_a_clean_schedule() {
        let mut trace = Trace::new();
        trace.record(reconfig_event(0, 0, 80));
        trace.record(span_event(0, 0, 80, 130));
        trace.record(reconfig_event(1, 80, 160));
        trace.record(span_event(1, 1, 160, 200));
        assert_eq!(trace.slots(), 2, "slot count inferred from events");
        assert_eq!(trace.validate(), Ok(()));
    }

    #[test]
    fn declared_slot_count_beats_inference() {
        let mut trace = Trace::with_slots(4);
        trace.record(span_event(0, 0, 0, 10));
        assert_eq!(trace.slots(), 4);
        // But a trace can never under-report a slot its events name.
        let mut trace = Trace::with_slots(1);
        trace.record(span_event(5, 0, 0, 10));
        assert_eq!(trace.slots(), 6);
    }

    #[test]
    fn validate_rejects_cap_overlap() {
        let mut trace = Trace::new();
        trace.record(reconfig_event(0, 0, 80));
        trace.record(reconfig_event(1, 40, 120));
        let err = trace.validate().unwrap_err();
        assert!(err.contains("configuration port overlap"), "{err}");
    }

    #[test]
    fn validate_rejects_slot_overlap() {
        let mut trace = Trace::new();
        trace.record(span_event(0, 0, 0, 100));
        trace.record(span_event(0, 1, 50, 150));
        let err = trace.validate().unwrap_err();
        assert!(err.contains("slot#0 overlap"), "{err}");
    }

    #[test]
    fn slot_spans_filter_by_slot() {
        let mut trace = Trace::new();
        trace.record(span_event(0, 0, 0, 10));
        trace.record(span_event(1, 0, 5, 15));
        trace.record(reconfig_event(0, 20, 100));
        assert_eq!(trace.slot_spans(SlotId::new(0)).len(), 2);
        assert_eq!(trace.slot_spans(SlotId::new(1)).len(), 1);
        assert_eq!(trace.cap_spans().len(), 1);
    }

    #[test]
    fn gantt_renders_rows_and_marks() {
        let mut trace = Trace::new();
        trace.record(reconfig_event(0, 0, 500));
        trace.record(span_event(0, 0, 500, 1_000));
        trace.record(span_event(1, 1, 0, 1_000));
        let chart = trace.gantt(20);
        // Two slot rows, the CAP row, and the axis.
        assert_eq!(chart.lines().count(), 4);
        assert!(chart.contains("slot#0"), "{chart}");
        assert!(chart.contains("CAP"), "{chart}");
        assert!(chart.contains('#'), "reconfiguration mark missing:\n{chart}");
        assert!(chart.contains('R'), "CAP busy mark missing:\n{chart}");
        assert!(chart.contains('a'), "app 0 mark missing:\n{chart}");
        assert!(chart.contains('b'), "app 1 mark missing:\n{chart}");
    }

    #[test]
    fn empty_trace_is_valid_and_renders() {
        let trace = Trace::with_slots(2);
        assert!(trace.is_empty());
        assert_eq!(trace.validate(), Ok(()));
        // Two slot rows, the CAP row, and the axis.
        assert_eq!(trace.gantt(10).lines().count(), 4);
    }

    #[test]
    fn slot_utilization_measures_busy_fractions() {
        let mut trace = Trace::with_slots(3);
        trace.record(reconfig_event(0, 0, 250));
        trace.record(span_event(0, 0, 250, 1_000));
        trace.record(span_event(1, 1, 0, 500));
        let util = trace.slot_utilization();
        assert_eq!(util.len(), 3, "one entry per device slot");
        assert!((util[0] - 1.0).abs() < 1e-9);
        assert!((util[1] - 0.5).abs() < 1e-9);
        assert_eq!(util[2], 0.0);
    }

    #[test]
    fn chrome_export_is_valid_and_has_all_tracks() {
        let mut trace = Trace::with_slots(2);
        trace.record(TraceEvent::Arrival {
            app: AppId::new(0),
            name: "lenet".into(),
            batch: 1,
            priority: Priority::Medium,
            at: SimTime::ZERO,
        });
        trace.record(reconfig_event(0, 0, 80));
        trace.record(span_event(0, 0, 80, 130));
        trace.record(TraceEvent::Preempt {
            slot: SlotId::new(0),
            app: AppId::new(0),
            task: TaskId::new(0),
            at: SimTime::from_millis(130),
        });
        trace.record(TraceEvent::Retire { app: AppId::new(0), at: SimTime::from_millis(130) });
        let json = trace.to_chrome();
        // 4 events render 6 trace events (reconfig spans both its slot and
        // the CAP track) + 2 flow events + 8 metadata (name + sort index
        // for 4 tracks).
        nimblock_obs::validate_chrome_trace(&json).unwrap();
        assert!(json.contains("\"slot#0\""), "{json}");
        assert!(json.contains("\"CAP\""), "{json}");
        assert!(json.contains("\"apps\""), "{json}");
        assert!(json.contains("preempt app#0 task#0"), "{json}");
    }

    #[test]
    fn chrome_export_ties_reconfig_to_enabled_task_with_flow_events() {
        let mut trace = Trace::with_slots(2);
        trace.record(reconfig_event(0, 0, 80));
        trace.record(span_event(0, 0, 80, 130));
        let json = trace.to_chrome();
        nimblock_obs::validate_chrome_trace(&json).unwrap();
        assert!(json.contains("\"ph\": \"s\""), "flow start missing: {json}");
        assert!(json.contains("\"ph\": \"f\""), "flow finish missing: {json}");
        assert!(json.contains("pr app#0 task#0 enables"), "{json}");
        assert!(json.contains("\"bp\": \"e\""), "{json}");
        // A reconfiguration that never enables an item emits no flow.
        let mut lone = Trace::with_slots(1);
        lone.record(reconfig_event(0, 0, 80));
        let json = lone.to_chrome();
        assert!(!json.contains("\"ph\": \"s\""), "{json}");
    }

    #[test]
    fn chrome_export_includes_counter_lanes() {
        let mut trace = Trace::with_slots(2);
        trace.record(reconfig_event(0, 0, 80));
        trace.record(span_event(0, 0, 80, 130));
        let json = trace.to_chrome();
        nimblock_obs::validate_chrome_trace(&json).unwrap();
        assert!(json.contains("\"ph\": \"C\""), "{json}");
        assert!(json.contains("\"slot utilization\""), "{json}");
        assert!(json.contains("\"waiting apps\""), "{json}");
        assert!(json.contains("\"permille\""), "{json}");
        // An empty trace derives no windows and draws no lanes.
        assert!(!Trace::with_slots(2).to_chrome().contains("\"ph\": \"C\""));
    }

    #[test]
    fn event_at_returns_start_times() {
        assert_eq!(
            span_event(0, 0, 7, 9).at(),
            SimTime::from_millis(7)
        );
        let retire = TraceEvent::Retire {
            app: AppId::new(3),
            at: SimTime::from_millis(11),
        };
        assert_eq!(retire.at(), SimTime::from_millis(11));
    }
}
