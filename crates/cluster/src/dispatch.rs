//! Board-selection strategies and the deterministic dispatcher.
//!
//! Dispatch decisions are made by a [`Dispatcher`] that maintains its
//! **own** load model of every board — a single-server backlog estimate fed
//! only by the arrival stream — instead of peeking into live hypervisor
//! state. Two consequences:
//!
//! 1. **Realism.** A front-end load balancer does not have oracle access to
//!    each board's scheduler internals; it estimates backlog from what it
//!    has dispatched, exactly as modelled here.
//! 2. **Parallelism with a determinism guarantee.** Because the assignment
//!    of every arrival is a pure function of the arrival sequence (and the
//!    policy), the per-board simulations are independent once assignment is
//!    done, so boards can run on worker threads and still merge to a result
//!    byte-identical to the sequential path (see `ClusterTestbed`).
//!
//! The round-robin cursor is explicit [`Dispatcher`] state and advances at
//! **dispatch-decision time** — never at board-completion time — so the
//! assignment order is identical no matter how board executions interleave.

use nimblock_ser::impl_json_enum_units;

use nimblock_sim::{SimDuration, SimTime};
use nimblock_workload::{ArrivalEvent, EventSequence};

/// How the cluster assigns an arriving application to a board.
///
/// All policies work off the dispatcher's deterministic load model (see the
/// module docs); none inspects live board state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DispatchPolicy {
    /// Cycle through the boards regardless of load.
    RoundRobin,
    /// The board estimated to host the fewest live applications.
    FewestApps,
    /// The board with the least estimated outstanding compute
    /// (single-server backlog of everything dispatched to it so far).
    LeastOutstanding,
    /// The board minimizing the estimated completion of this arrival,
    /// where the estimate prices bitstream-cache warmth: a board that
    /// recently hosted the same application skips the reconfiguration
    /// cost (see [`BITSTREAM_CACHE_SLOTS`]). Warm boards therefore win
    /// until their backlog exceeds a cold board's by more than the
    /// reconfiguration saving.
    CacheAware,
}

impl_json_enum_units!(DispatchPolicy { RoundRobin, FewestApps, LeastOutstanding, CacheAware });

impl DispatchPolicy {
    /// All strategies, for sweeps.
    pub const ALL: [DispatchPolicy; 4] = [
        DispatchPolicy::RoundRobin,
        DispatchPolicy::FewestApps,
        DispatchPolicy::LeastOutstanding,
        DispatchPolicy::CacheAware,
    ];

    /// Returns the strategy's display name.
    pub fn name(self) -> &'static str {
        match self {
            DispatchPolicy::RoundRobin => "round-robin",
            DispatchPolicy::FewestApps => "fewest-apps",
            DispatchPolicy::LeastOutstanding => "least-outstanding",
            DispatchPolicy::CacheAware => "cache-aware",
        }
    }

    /// Parses a display name (as printed by [`DispatchPolicy::name`]), plus
    /// the short alias `rr`.
    pub fn parse(value: &str) -> Option<DispatchPolicy> {
        Some(match value {
            "rr" | "round-robin" => DispatchPolicy::RoundRobin,
            "fewest-apps" => DispatchPolicy::FewestApps,
            "least-outstanding" => DispatchPolicy::LeastOutstanding,
            "cache-aware" => DispatchPolicy::CacheAware,
            _ => return None,
        })
    }
}

/// Bitstreams the dispatcher's cache model remembers per board. Matches
/// the device model's slot count order of magnitude: a board can keep a
/// handful of partial bitstreams staged without reconfiguring.
pub const BITSTREAM_CACHE_SLOTS: usize = 4;

/// The dispatcher's estimate of one board's backlog: a single-server queue
/// fed by everything assigned to the board so far.
#[derive(Debug, Clone, Default)]
struct BoardLoad {
    /// When the board's backlog, served one application at a time, drains.
    busy_until: SimTime,
    /// Estimated completion time of each still-outstanding application.
    finishes: Vec<SimTime>,
    /// Most-recently-dispatched application names, newest first, bounded
    /// by [`BITSTREAM_CACHE_SLOTS`] — the dispatcher's bitstream-cache
    /// model. Like the backlog, this is the dispatcher's *own* estimate
    /// fed only by its assignments, never live board state.
    recent_apps: Vec<String>,
}

impl BoardLoad {
    /// Applications estimated still live at `now`.
    fn live_apps(&self, now: SimTime) -> usize {
        self.finishes.iter().filter(|&&f| f > now).count()
    }

    /// Estimated outstanding compute at `now`.
    fn outstanding(&self, now: SimTime) -> SimDuration {
        self.busy_until.saturating_since(now)
    }

    /// Drops completed entries (estimates, so this is pure bookkeeping).
    fn prune(&mut self, now: SimTime) {
        self.finishes.retain(|&f| f > now);
    }

    /// Accounts a newly assigned application of estimated cost `work`
    /// arriving at `now`.
    fn assign(&mut self, now: SimTime, work: SimDuration) {
        let start = self.busy_until.max(now);
        let finish = start + work;
        self.busy_until = finish;
        self.finishes.push(finish);
    }

    /// `true` iff `app_name` is staged in the board's bitstream-cache
    /// model.
    fn is_warm(&self, app_name: &str) -> bool {
        self.recent_apps.iter().any(|name| name == app_name)
    }

    /// Touches `app_name` in the cache model: moves it to the front,
    /// evicting the least-recently-used entry past the slot bound.
    fn touch(&mut self, app_name: &str) {
        if let Some(pos) = self.recent_apps.iter().position(|name| name == app_name) {
            self.recent_apps.remove(pos);
        }
        self.recent_apps.insert(0, app_name.to_string());
        self.recent_apps.truncate(BITSTREAM_CACHE_SLOTS);
    }
}

/// One dispatch decision: where an arrival goes and what the dispatcher's
/// load model predicts for it. Produced by [`Dispatcher::decide`]; feed it
/// back to [`Dispatcher::commit`] to account the work (the serving front
/// door sheds between the two).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DispatchDecision {
    /// Chosen board index.
    pub board: usize,
    /// Whether the board's bitstream-cache model had the application
    /// staged (reconfiguration skipped in the cost estimate under
    /// [`DispatchPolicy::CacheAware`]).
    pub warm: bool,
    /// Estimated wait before the board reaches this arrival: the board's
    /// outstanding backlog at arrival time.
    pub queue_wait: SimDuration,
    /// Estimated service cost of the arrival on the chosen board (priced
    /// warm or cold).
    pub work: SimDuration,
}

/// Assigns arrivals to boards deterministically.
///
/// Feed events in arrival order (an [`EventSequence`] is already sorted);
/// the decision for each event depends only on the events seen before it.
///
/// # Example
///
/// ```
/// use nimblock_cluster::{Dispatcher, DispatchPolicy};
/// use nimblock_sim::SimDuration;
/// use nimblock_workload::{generate, Scenario};
///
/// let events = generate(1, 6, Scenario::Standard);
/// let plan = Dispatcher::plan(
///     DispatchPolicy::RoundRobin,
///     3,
///     SimDuration::from_millis(80),
///     &events,
/// );
/// assert_eq!(plan, vec![0, 1, 2, 0, 1, 2]);
/// ```
#[derive(Debug, Clone)]
pub struct Dispatcher {
    policy: DispatchPolicy,
    /// Nominal per-task reconfiguration latency used in the cost estimate.
    reconfig: SimDuration,
    /// Explicit round-robin state, advanced at dispatch-decision time only.
    cursor: usize,
    boards: Vec<BoardLoad>,
}

impl Dispatcher {
    /// Creates a dispatcher over `boards` boards.
    ///
    /// `reconfig` is the nominal reconfiguration latency of the boards'
    /// device model; it prices each task of an arriving application into
    /// the backlog estimate via `AppSpec::single_slot_latency`.
    ///
    /// # Panics
    ///
    /// Panics if `boards` is zero.
    pub fn new(policy: DispatchPolicy, boards: usize, reconfig: SimDuration) -> Self {
        assert!(boards > 0, "a cluster needs at least one board");
        Dispatcher {
            policy,
            reconfig,
            cursor: 0,
            boards: vec![BoardLoad::default(); boards],
        }
    }

    /// Returns the policy this dispatcher applies.
    pub fn policy(&self) -> DispatchPolicy {
        self.policy
    }

    /// Returns the current round-robin cursor (the number of dispatch
    /// decisions taken so far under [`DispatchPolicy::RoundRobin`]).
    pub fn cursor(&self) -> usize {
        self.cursor
    }

    /// Decides the board for `event` and updates the load model.
    ///
    /// The round-robin cursor advances here — at decision time — so the
    /// assignment sequence is a pure function of the arrival order and can
    /// never be perturbed by board completion order (the historical bug was
    /// threading scheduler progress back into the cursor).
    pub fn assign(&mut self, event: &ArrivalEvent) -> usize {
        let decision = self.decide(event);
        self.commit(event, &decision);
        decision.board
    }

    /// Decides the board for `event` without accounting its work: prunes
    /// the load model, advances the round-robin cursor (a shed still
    /// consumes a decision), and returns the model's predictions. Pair
    /// with [`Dispatcher::commit`]; [`Dispatcher::assign`] does both.
    pub fn decide(&mut self, event: &ArrivalEvent) -> DispatchDecision {
        let now = event.arrival();
        for board in &mut self.boards {
            board.prune(now);
        }
        let app_name = event.app().name();
        let board = match self.policy {
            DispatchPolicy::RoundRobin => {
                let board = self.cursor % self.boards.len();
                self.cursor += 1;
                board
            }
            DispatchPolicy::FewestApps => self
                .boards
                .iter()
                .enumerate()
                .min_by_key(|(i, b)| (b.live_apps(now), *i))
                .map(|(i, _)| i)
                .expect("cluster has at least one board"),
            DispatchPolicy::LeastOutstanding => self
                .boards
                .iter()
                .enumerate()
                .min_by_key(|(i, b)| (b.outstanding(now), *i))
                .map(|(i, _)| i)
                .expect("cluster has at least one board"),
            DispatchPolicy::CacheAware => self
                .boards
                .iter()
                .enumerate()
                .min_by_key(|(i, b)| {
                    // Estimated completion of this arrival on board `b`:
                    // backlog plus service priced by cache warmth.
                    let work = event.app().single_slot_latency(
                        event.batch_size(),
                        if b.is_warm(app_name) { SimDuration::ZERO } else { self.reconfig },
                    );
                    (b.outstanding(now) + work, *i)
                })
                .map(|(i, _)| i)
                .expect("cluster has at least one board"),
        };
        let warm = self.boards[board].is_warm(app_name);
        // Only the cache-aware policy prices warmth into the backlog
        // estimate — the three original policies keep their historical
        // cost model so their plans stay byte-identical.
        let priced_reconfig = if self.policy == DispatchPolicy::CacheAware && warm {
            SimDuration::ZERO
        } else {
            self.reconfig
        };
        DispatchDecision {
            board,
            warm,
            queue_wait: self.boards[board].outstanding(now),
            work: event
                .app()
                .single_slot_latency(event.batch_size(), priced_reconfig),
        }
    }

    /// Accounts a decided arrival into the load model: adds the priced
    /// work to the board's backlog and stages the application in the
    /// board's bitstream-cache model.
    pub fn commit(&mut self, event: &ArrivalEvent, decision: &DispatchDecision) {
        self.boards[decision.board].assign(event.arrival(), decision.work);
        self.boards[decision.board].touch(event.app().name());
    }

    /// The dispatcher's backlog estimate for `board` at `now` — what the
    /// front door uses to price admission. Boards are indexed `0..boards`.
    pub fn outstanding(&self, board: usize, now: SimTime) -> SimDuration {
        self.boards[board].outstanding(now)
    }

    /// `true` iff the dispatcher's cache model has `app_name` staged on
    /// `board`.
    pub fn is_warm(&self, board: usize, app_name: &str) -> bool {
        self.boards[board].is_warm(app_name)
    }

    /// Number of boards the dispatcher balances over.
    pub fn board_count(&self) -> usize {
        self.boards.len()
    }

    /// Plans a whole sequence: one board index per event, in event order.
    pub fn plan(
        policy: DispatchPolicy,
        boards: usize,
        reconfig: SimDuration,
        events: &EventSequence,
    ) -> Vec<usize> {
        let mut dispatcher = Dispatcher::new(policy, boards, reconfig);
        events.iter().map(|e| dispatcher.assign(e)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nimblock_app::{benchmarks, Priority};
    use nimblock_workload::generate;
    use nimblock_workload::Scenario;

    const RECONFIG: SimDuration = SimDuration::from_millis(80);

    #[test]
    fn parse_round_trips_every_name() {
        for policy in DispatchPolicy::ALL {
            assert_eq!(DispatchPolicy::parse(policy.name()), Some(policy));
        }
        assert_eq!(DispatchPolicy::parse("rr"), Some(DispatchPolicy::RoundRobin));
        assert_eq!(DispatchPolicy::parse("hashring"), None);
    }

    /// The satellite regression test: the round-robin cursor advances at
    /// dispatch-decision time, so assignment order is pinned to arrival
    /// order — including simultaneous arrivals — regardless of how long
    /// each application runs on its board.
    #[test]
    fn round_robin_assignment_order_is_pinned() {
        let mut events = Vec::new();
        // Wildly uneven costs and two simultaneous arrivals: completion
        // order would scramble any cursor keyed to board progress.
        for (i, (app, batch)) in [
            (benchmarks::digit_recognition(), 10u32),
            (benchmarks::lenet(), 1),
            (benchmarks::lenet(), 1),
            (benchmarks::rendering_3d(), 2),
            (benchmarks::digit_recognition(), 5),
            (benchmarks::lenet(), 3),
            (benchmarks::lenet(), 1),
        ]
        .into_iter()
        .enumerate()
        {
            // Events 1 and 2 arrive at the same instant.
            let at = SimTime::from_millis(if i == 2 { 100 } else { i as u64 * 100 });
            events.push(ArrivalEvent::new(app, batch, Priority::Medium, at));
        }
        let events = EventSequence::new(events);
        let plan = Dispatcher::plan(DispatchPolicy::RoundRobin, 3, RECONFIG, &events);
        assert_eq!(plan, vec![0, 1, 2, 0, 1, 2, 0]);
        // And the cursor itself counted every decision.
        let mut dispatcher = Dispatcher::new(DispatchPolicy::RoundRobin, 3, RECONFIG);
        for event in &events {
            dispatcher.assign(event);
        }
        assert_eq!(dispatcher.cursor(), 7);
    }

    #[test]
    fn least_outstanding_spreads_a_heavy_head() {
        let events = EventSequence::new(vec![
            ArrivalEvent::new(benchmarks::digit_recognition(), 10, Priority::Low, SimTime::ZERO),
            ArrivalEvent::new(benchmarks::lenet(), 2, Priority::High, SimTime::from_millis(100)),
            ArrivalEvent::new(benchmarks::lenet(), 2, Priority::High, SimTime::from_millis(200)),
        ]);
        let plan = Dispatcher::plan(DispatchPolicy::LeastOutstanding, 2, RECONFIG, &events);
        assert_eq!(plan[0], 0);
        assert_ne!(plan[1], 0, "the loaded board must be avoided");
        assert_ne!(plan[2], 0, "the loaded board must still be avoided");
    }

    #[test]
    fn fewest_apps_counts_live_estimates_only() {
        let mut dispatcher = Dispatcher::new(DispatchPolicy::FewestApps, 2, RECONFIG);
        // Two tiny apps land on boards 0 and 1.
        let tiny = |at| ArrivalEvent::new(benchmarks::lenet(), 1, Priority::Low, at);
        assert_eq!(dispatcher.assign(&tiny(SimTime::ZERO)), 0);
        assert_eq!(dispatcher.assign(&tiny(SimTime::ZERO)), 1);
        // Long after both estimates drained, the model is empty again, so
        // the lowest index wins once more.
        assert_eq!(dispatcher.assign(&tiny(SimTime::from_secs(10_000))), 0);
    }

    #[test]
    fn planning_is_deterministic() {
        let events = generate(17, 24, Scenario::Stress);
        for policy in DispatchPolicy::ALL {
            let a = Dispatcher::plan(policy, 4, RECONFIG, &events);
            let b = Dispatcher::plan(policy, 4, RECONFIG, &events);
            assert_eq!(a, b, "{}", policy.name());
            assert!(a.iter().all(|&board| board < 4));
        }
    }

    #[test]
    #[should_panic(expected = "at least one board")]
    fn zero_boards_is_rejected() {
        let _ = Dispatcher::new(DispatchPolicy::RoundRobin, 0, RECONFIG);
    }

    #[test]
    fn cache_aware_sticks_to_the_warm_board() {
        let mut dispatcher = Dispatcher::new(DispatchPolicy::CacheAware, 3, RECONFIG);
        let lenet = |at| ArrivalEvent::new(benchmarks::lenet(), 1, Priority::Medium, at);
        // First arrival: all cold, lowest index wins.
        let first = dispatcher.decide(&lenet(SimTime::ZERO));
        assert_eq!(first.board, 0);
        assert!(!first.warm);
        dispatcher.commit(&lenet(SimTime::ZERO), &first);
        // Second arrival of the same app after board 0's backlog drains:
        // the bitstream stays staged, so the warm price wins the decision.
        let second = dispatcher.decide(&lenet(SimTime::from_secs(10)));
        assert_eq!(second.board, 0);
        assert!(second.warm, "repeat arrival should hit the bitstream cache");
        assert!(
            second.work < first.work,
            "warm service must be priced below cold ({:?} vs {:?})",
            second.work,
            first.work
        );
    }

    #[test]
    fn cache_aware_spills_when_the_warm_board_backlogs() {
        let mut dispatcher = Dispatcher::new(DispatchPolicy::CacheAware, 2, RECONFIG);
        // Load board 0 far beyond the reconfig saving with a huge batch.
        let heavy = ArrivalEvent::new(
            benchmarks::digit_recognition(),
            30,
            Priority::Low,
            SimTime::ZERO,
        );
        assert_eq!(dispatcher.assign(&heavy), 0);
        // The same app arrives again: board 0 is warm but drowning, so the
        // cold board's full price still beats warm-behind-backlog.
        let again = ArrivalEvent::new(
            benchmarks::digit_recognition(),
            1,
            Priority::Low,
            SimTime::from_millis(1),
        );
        let decision = dispatcher.decide(&again);
        assert_eq!(decision.board, 1, "backlog must outweigh warmth");
        assert!(!decision.warm);
    }

    #[test]
    fn cache_model_is_bounded() {
        let mut board = BoardLoad::default();
        for i in 0..100 {
            board.touch(&format!("app-{i}"));
        }
        assert_eq!(board.recent_apps.len(), BITSTREAM_CACHE_SLOTS);
        assert!(board.is_warm("app-99"));
        assert!(!board.is_warm("app-0"));
    }

    #[test]
    fn original_policies_ignore_warmth_in_pricing() {
        // Same stimulus through the pre-existing policies must produce the
        // same plans whether or not the cache model exists: their decision
        // keys never read it, and their pricing always includes reconfig.
        let events = generate(23, 40, Scenario::Stress);
        for policy in [
            DispatchPolicy::RoundRobin,
            DispatchPolicy::FewestApps,
            DispatchPolicy::LeastOutstanding,
        ] {
            let mut dispatcher = Dispatcher::new(policy, 3, RECONFIG);
            for event in &events {
                let decision = dispatcher.decide(event);
                assert_eq!(
                    decision.work,
                    event.app().single_slot_latency(event.batch_size(), RECONFIG),
                    "{} must always price the full reconfig",
                    policy.name()
                );
                dispatcher.commit(event, &decision);
            }
        }
    }

    #[test]
    fn decide_then_commit_equals_assign() {
        let events = generate(31, 30, Scenario::Stress);
        for policy in DispatchPolicy::ALL {
            let mut split = Dispatcher::new(policy, 4, RECONFIG);
            let mut fused = Dispatcher::new(policy, 4, RECONFIG);
            for event in &events {
                let decision = split.decide(event);
                split.commit(event, &decision);
                assert_eq!(decision.board, fused.assign(event), "{}", policy.name());
            }
        }
    }
}
