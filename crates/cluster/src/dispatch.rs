//! Board-selection strategies.

use nimblock_ser::impl_json_enum_units;

use nimblock_core::{Hypervisor, Scheduler};
use nimblock_sim::SimDuration;

/// How the cluster assigns an arriving application to a board.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DispatchPolicy {
    /// Cycle through the boards regardless of load.
    RoundRobin,
    /// The board currently hosting the fewest live applications.
    FewestApps,
    /// The board with the least estimated outstanding compute
    /// (Σ remaining batch work over its live applications).
    LeastOutstanding,
}

impl_json_enum_units!(DispatchPolicy { RoundRobin, FewestApps, LeastOutstanding });

impl DispatchPolicy {
    /// All strategies, for sweeps.
    pub const ALL: [DispatchPolicy; 3] = [
        DispatchPolicy::RoundRobin,
        DispatchPolicy::FewestApps,
        DispatchPolicy::LeastOutstanding,
    ];

    /// Returns the strategy's display name.
    pub fn name(self) -> &'static str {
        match self {
            DispatchPolicy::RoundRobin => "round-robin",
            DispatchPolicy::FewestApps => "fewest-apps",
            DispatchPolicy::LeastOutstanding => "least-outstanding",
        }
    }

    /// Picks the board for the next arrival. `cursor` is the round-robin
    /// state, advanced by the caller on every dispatch.
    pub(crate) fn choose<S: Scheduler>(
        self,
        boards: &[Hypervisor<S>],
        cursor: usize,
    ) -> usize {
        match self {
            DispatchPolicy::RoundRobin => cursor % boards.len(),
            DispatchPolicy::FewestApps => boards
                .iter()
                .enumerate()
                .min_by_key(|(i, b)| (b.apps().len(), *i))
                .map(|(i, _)| i)
                .expect("cluster has at least one board"),
            DispatchPolicy::LeastOutstanding => boards
                .iter()
                .enumerate()
                .min_by_key(|(i, b)| {
                    let outstanding: SimDuration = b
                        .apps()
                        .values()
                        .map(|app| app.remaining_compute())
                        .sum();
                    (outstanding, *i)
                })
                .map(|(i, _)| i)
                .expect("cluster has at least one board"),
        }
    }
}
