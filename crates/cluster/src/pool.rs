//! A minimal scoped worker pool for per-board simulation jobs.
//!
//! This is the only concurrency primitive in the workspace, and it is
//! deliberately tiny: a work queue of indexed jobs drained by
//! [`std::thread::scope`] workers. Determinism does not come from the pool
//! (workers race for jobs) but from the fact that every job is independent
//! and its result is stored at its **own index** — callers then merge
//! results in index order, which is identical no matter which worker ran
//! which job.
//!
//! With `threads <= 1` the jobs run inline on the caller's thread, in index
//! order, with no worker machinery at all. That path is the sequential
//! oracle used by the differential tests: the parallel path must produce
//! byte-identical results.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Resolves a requested thread count: `0` means "auto" (the host's
/// available parallelism, or 1 if unknown), anything else is taken as-is.
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        requested
    }
}

/// Runs `jobs` and returns their results in job order.
///
/// * `threads <= 1`: jobs run inline, sequentially, in index order.
/// * `threads > 1`: up to `min(threads, jobs.len())` scoped workers drain a
///   shared queue; each result lands at its job's index, so the returned
///   `Vec` order is independent of worker interleaving.
///
/// A panicking job propagates its panic to the caller when the scope joins.
pub fn run_indexed<T, J>(threads: usize, jobs: Vec<J>) -> Vec<T>
where
    T: Send,
    J: FnOnce() -> T + Send,
{
    if threads <= 1 || jobs.len() <= 1 {
        return jobs.into_iter().map(|job| job()).collect();
    }
    let job_count = jobs.len();
    let workers = threads.min(job_count);
    let queue: Mutex<VecDeque<(usize, J)>> = Mutex::new(jobs.into_iter().enumerate().collect());
    let results: Mutex<Vec<Option<T>>> =
        Mutex::new((0..job_count).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let next = queue
                    .lock()
                    .expect("pool queue lock poisoned")
                    .pop_front();
                match next {
                    Some((index, job)) => {
                        let value = job();
                        results
                            .lock()
                            .expect("pool results lock poisoned")
                            [index] = Some(value);
                    }
                    None => break,
                }
            });
        }
    });
    results
        .into_inner()
        .expect("pool results lock poisoned")
        .into_iter()
        .map(|slot| slot.expect("every job stores its result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_path_preserves_order() {
        let jobs: Vec<_> = (0..8).map(|i| move || i * 10).collect();
        assert_eq!(run_indexed(1, jobs), vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn parallel_path_preserves_order() {
        let jobs: Vec<_> = (0..32)
            .map(|i| {
                move || {
                    // Uneven work so workers finish out of order.
                    let mut acc = 0u64;
                    for k in 0..((32 - i) * 1000) {
                        acc = acc.wrapping_add(k);
                    }
                    (i, acc > 0 || acc == 0)
                }
            })
            .collect();
        let results = run_indexed(4, jobs);
        for (i, (got, ok)) in results.into_iter().enumerate() {
            assert_eq!(got, i as u64);
            assert!(ok);
        }
    }

    #[test]
    fn parallel_matches_inline() {
        let make = || (0..16).map(|i: u64| move || i * i + 7).collect::<Vec<_>>();
        assert_eq!(run_indexed(1, make()), run_indexed(8, make()));
    }

    #[test]
    fn more_threads_than_jobs_is_fine() {
        assert_eq!(run_indexed(16, vec![|| 1, || 2]), vec![1, 2]);
    }

    #[test]
    fn empty_jobs_yield_empty_results() {
        let jobs: Vec<fn() -> u8> = Vec::new();
        assert!(run_indexed(4, jobs).is_empty());
    }

    #[test]
    fn zero_resolves_to_at_least_one() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }
}
