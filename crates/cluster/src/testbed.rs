//! The cluster testbed: a dispatcher over per-board hypervisors.

use nimblock_core::{HvEvent, Hypervisor, Scheduler};
use nimblock_fpga::{Device, DeviceConfig};
use nimblock_metrics::{Report, RunCounters};
use nimblock_obs::nb_debug;
use nimblock_sim::{EventQueue, Handler, SimDuration, SimTime, Simulation};
use nimblock_workload::EventSequence;

use crate::DispatchPolicy;

/// The result of a cluster run: the merged report plus per-board detail.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    merged: Report,
    per_board: Vec<Report>,
    assignments: Vec<usize>,
}

impl ClusterReport {
    /// Returns the merged report over all boards (records keep their
    /// stimulus event indices).
    pub fn merged(&self) -> &Report {
        &self.merged
    }

    /// Returns one report per board, containing only its own applications.
    pub fn per_board(&self) -> &[Report] {
        &self.per_board
    }

    /// Returns the number of boards.
    pub fn board_count(&self) -> usize {
        self.per_board.len()
    }

    /// Returns which board each stimulus event was dispatched to.
    pub fn assignments(&self) -> &[usize] {
        &self.assignments
    }

    /// Returns how many events each board received.
    pub fn board_loads(&self) -> Vec<usize> {
        let mut loads = vec![0usize; self.per_board.len()];
        for &board in &self.assignments {
            loads[board] += 1;
        }
        loads
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ClusterEvent {
    /// Decide the board for stimulus event `index` and deliver its arrival.
    Dispatch(usize),
    /// A per-board hypervisor event.
    Board(usize, HvEvent),
    /// The shared scheduling tick, fanned out to every board.
    Tick,
}

struct ClusterHandler<S> {
    boards: Vec<Hypervisor<S>>,
    dispatch: DispatchPolicy,
    cursor: usize,
    assignments: Vec<usize>,
    dispatched: usize,
    total_events: usize,
    tick: SimDuration,
    dispatches: nimblock_obs::Counter,
}

impl<S: Scheduler> ClusterHandler<S> {
    fn finished(&self) -> bool {
        self.dispatched == self.total_events && self.boards.iter().all(|b| b.apps().is_empty())
    }

    /// Delivers one hypervisor event to a board, re-homing any follow-up
    /// events the board schedules into the cluster queue.
    fn deliver(
        &mut self,
        board: usize,
        event: HvEvent,
        now: SimTime,
        queue: &mut EventQueue<ClusterEvent>,
    ) {
        let mut local = EventQueue::new();
        self.boards[board].handle(now, event, &mut local);
        while let Some((at, follow_up)) = local.pop() {
            queue.push(at, ClusterEvent::Board(board, follow_up));
        }
    }
}

impl<S: Scheduler> Handler<ClusterEvent> for ClusterHandler<S> {
    fn handle(&mut self, now: SimTime, event: ClusterEvent, queue: &mut EventQueue<ClusterEvent>) {
        match event {
            ClusterEvent::Dispatch(index) => {
                let board = self.dispatch.choose(&self.boards, self.cursor);
                self.cursor += 1;
                self.dispatched += 1;
                self.assignments[index] = board;
                self.dispatches.inc();
                nb_debug!("cluster", "dispatch event {index} -> board {board}");
                self.deliver(board, HvEvent::Arrival(index), now, queue);
            }
            ClusterEvent::Board(board, inner) => self.deliver(board, inner, now, queue),
            ClusterEvent::Tick => {
                for board in 0..self.boards.len() {
                    self.deliver(board, HvEvent::Tick, now, queue);
                }
                if !self.finished() {
                    queue.push(now + self.tick, ClusterEvent::Tick);
                }
            }
        }
    }
}

/// Emulates real-time arrival on a cluster of identical boards: each event
/// is dispatched to a board at its arrival time, then handled entirely by
/// that board's hypervisor and scheduler.
///
/// See the crate-level example.
pub struct ClusterTestbed<F> {
    boards: usize,
    dispatch: DispatchPolicy,
    scheduler_factory: F,
    device_config: DeviceConfig,
    horizon: SimTime,
    metrics: Option<nimblock_obs::Registry>,
}

impl<S, F> ClusterTestbed<F>
where
    S: Scheduler,
    F: Fn() -> S,
{
    /// Creates a cluster of `boards` identical ZCU106 overlays; every board
    /// gets a fresh scheduler from `scheduler_factory`.
    ///
    /// # Panics
    ///
    /// Panics if `boards` is zero.
    pub fn new(boards: usize, dispatch: DispatchPolicy, scheduler_factory: F) -> Self {
        assert!(boards > 0, "a cluster needs at least one board");
        ClusterTestbed {
            boards,
            dispatch,
            scheduler_factory,
            device_config: DeviceConfig::zcu106(),
            horizon: SimTime::from_secs(10_000_000),
            metrics: None,
        }
    }

    /// Overrides the per-board device configuration.
    pub fn with_device_config(mut self, device_config: DeviceConfig) -> Self {
        self.device_config = device_config;
        self
    }

    /// Publishes cluster-level telemetry in `registry`: the dispatcher's
    /// `cluster_*` series. Per-board hypervisors keep private (detached)
    /// instruments — a shared registry would conflate the boards — and
    /// their counters surface merged in [`ClusterReport::merged`].
    pub fn with_metrics(mut self, registry: nimblock_obs::Registry) -> Self {
        self.metrics = Some(registry);
        self
    }

    /// Runs `events` to completion.
    ///
    /// # Panics
    ///
    /// Panics if any application fails to retire before the livelock
    /// horizon.
    pub fn run(self, events: &EventSequence) -> ClusterReport {
        let tick = SimDuration::from_millis(nimblock_fpga::zcu106::SCHEDULING_INTERVAL_MILLIS);
        let boards: Vec<Hypervisor<S>> = (0..self.boards)
            .map(|_| {
                Hypervisor::new(
                    Device::new(self.device_config.clone()),
                    (self.scheduler_factory)(),
                    events.events().to_vec(),
                )
                // The cluster fans ticks out itself.
                .with_tick_interval(SimDuration::ZERO)
            })
            .collect();
        let dispatches = match &self.metrics {
            Some(registry) => {
                registry
                    .gauge("cluster_boards", "Boards in the modelled cluster")
                    .set(self.boards as i64);
                registry.counter(
                    "cluster_dispatches_total",
                    "Applications dispatched to a board",
                )
            }
            None => nimblock_obs::Counter::detached(),
        };
        let handler = ClusterHandler {
            boards,
            dispatch: self.dispatch,
            cursor: 0,
            assignments: vec![0; events.len()],
            dispatched: 0,
            total_events: events.len(),
            tick,
            dispatches,
        };
        let mut sim = Simulation::new(handler);
        for (index, event) in events.iter().enumerate() {
            sim.queue_mut()
                .push(event.arrival(), ClusterEvent::Dispatch(index));
        }
        sim.queue_mut().push(SimTime::ZERO + tick, ClusterEvent::Tick);
        sim.run_until(self.horizon);
        assert!(
            sim.handler().finished(),
            "cluster hit the livelock horizon with applications outstanding"
        );
        let finished_at = sim.now();
        let handler = sim.into_handler();
        let assignments = handler.assignments;
        let dispatch_name = handler.dispatch.name();
        let per_board: Vec<Report> = handler
            .boards
            .into_iter()
            .map(|b| b.into_report(finished_at))
            .collect();
        let scheduler_name = per_board
            .first()
            .map(|r| r.scheduler().to_owned())
            .unwrap_or_default();
        let merged_records = per_board
            .iter()
            .flat_map(|r| r.records().iter().cloned())
            .collect();
        let merged_counters = per_board
            .iter()
            .fold(RunCounters::default(), |acc, r| acc.merged(*r.counters()));
        if let Some(registry) = &self.metrics {
            registry
                .counter("cluster_arrivals_total", "Arrivals across all boards")
                .add(merged_counters.arrivals);
            registry
                .counter("cluster_retires_total", "Retirements across all boards")
                .add(merged_counters.retires);
        }
        let merged = Report::new(
            format!(
                "cluster({boards}x{scheduler_name}, {dispatch_name})",
                boards = per_board.len()
            ),
            merged_records,
            finished_at,
        )
        .with_counters(merged_counters);
        ClusterReport {
            merged,
            per_board,
            assignments,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nimblock_core::{NimblockScheduler, Testbed};
    use nimblock_workload::{generate, Scenario};

    fn cluster(
        boards: usize,
        dispatch: DispatchPolicy,
    ) -> ClusterTestbed<impl Fn() -> NimblockScheduler> {
        ClusterTestbed::new(boards, dispatch, NimblockScheduler::default)
    }

    #[test]
    fn single_board_cluster_matches_the_plain_testbed() {
        let events = generate(3, 8, Scenario::Stress);
        let plain = Testbed::new(NimblockScheduler::default()).run(&events);
        let clustered = cluster(1, DispatchPolicy::RoundRobin).run(&events);
        assert_eq!(plain.records(), clustered.merged().records());
    }

    #[test]
    fn every_event_is_assigned_and_retired() {
        let events = generate(4, 12, Scenario::Stress);
        for dispatch in DispatchPolicy::ALL {
            let report = cluster(3, dispatch).run(&events);
            assert_eq!(report.merged().records().len(), 12, "{}", dispatch.name());
            assert_eq!(report.assignments().len(), 12);
            assert!(report.assignments().iter().all(|&b| b < 3));
            let loads = report.board_loads();
            assert_eq!(loads.iter().sum::<usize>(), 12);
        }
    }

    #[test]
    fn round_robin_spreads_evenly() {
        let events = generate(5, 12, Scenario::RealTime);
        let report = cluster(4, DispatchPolicy::RoundRobin).run(&events);
        assert_eq!(report.board_loads(), vec![3, 3, 3, 3]);
    }

    #[test]
    fn more_boards_do_not_hurt_mean_response() {
        let events = generate(6, 16, Scenario::Stress);
        let one = cluster(1, DispatchPolicy::LeastOutstanding).run(&events);
        let four = cluster(4, DispatchPolicy::LeastOutstanding).run(&events);
        assert!(
            four.merged().mean_response_secs() <= one.merged().mean_response_secs(),
            "4 boards ({:.1}s) vs 1 board ({:.1}s)",
            four.merged().mean_response_secs(),
            one.merged().mean_response_secs()
        );
    }

    #[test]
    fn least_outstanding_avoids_the_loaded_board() {
        use nimblock_app::{benchmarks, Priority};
        use nimblock_workload::ArrivalEvent;
        // A huge app lands first; the next arrivals must go to the other
        // board under least-outstanding.
        let events = EventSequence::new(vec![
            ArrivalEvent::new(benchmarks::digit_recognition(), 10, Priority::Low, SimTime::ZERO),
            ArrivalEvent::new(benchmarks::lenet(), 2, Priority::High, SimTime::from_millis(100)),
            ArrivalEvent::new(benchmarks::lenet(), 2, Priority::High, SimTime::from_millis(200)),
        ]);
        let report = cluster(2, DispatchPolicy::LeastOutstanding).run(&events);
        let assignments = report.assignments();
        assert_ne!(assignments[1], assignments[0]);
        assert_ne!(assignments[2], assignments[0]);
    }

    #[test]
    fn cluster_metrics_and_merged_counters() {
        let events = generate(7, 9, Scenario::Standard);
        let registry = nimblock_obs::Registry::new();
        let report = cluster(3, DispatchPolicy::RoundRobin)
            .with_metrics(registry.clone())
            .run(&events);
        let text = registry.render_prometheus();
        assert!(text.contains("cluster_dispatches_total 9"), "{text}");
        assert!(text.contains("cluster_boards 3"), "{text}");
        assert!(text.contains("cluster_arrivals_total 9"), "{text}");
        assert!(text.contains("cluster_retires_total 9"), "{text}");
        nimblock_obs::validate_prometheus(&text).unwrap();
        // The merged report aggregates the per-board counters.
        assert_eq!(report.merged().counters().arrivals, 9);
        let per_board_sum: u64 = report.per_board().iter().map(|r| r.counters().retires).sum();
        assert_eq!(per_board_sum, 9);
    }

    #[test]
    #[should_panic(expected = "at least one board")]
    fn zero_boards_is_rejected() {
        let _ = ClusterTestbed::new(0, DispatchPolicy::RoundRobin, NimblockScheduler::default);
    }
}
