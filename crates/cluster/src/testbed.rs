//! The cluster testbed: plan, fan out, merge — in parallel if asked.
//!
//! A run has three phases:
//!
//! 1. **Plan** (sequential): a [`Dispatcher`] assigns every arrival to a
//!    board using its own deterministic load model. No board state is
//!    consulted, so the plan is a pure function of the arrival sequence.
//! 2. **Execute** (parallel): each board runs its own `Hypervisor` + sim
//!    engine over *only its* arrivals, on a worker from the scoped pool in
//!    [`crate::pool`]. Boards share nothing — scheduler, device model,
//!    metrics shard, and trace are all per-board.
//! 3. **Merge** (sequential, board-index order): per-board records are
//!    remapped to their global stimulus indices and folded into one
//!    [`ClusterReport`]; metrics shards are merged into the cluster
//!    registry in board order.
//!
//! Because phase 1 is sequential, phase 2 is embarrassingly parallel, and
//! phase 3 merges in a fixed order, the result is **byte-identical** no
//! matter how many worker threads run phase 2 — `with_threads(1)` is the
//! oracle the differential tests compare against.

use nimblock_core::{HvEvent, Hypervisor, Scheduler, Trace};
use nimblock_fpga::{Device, DeviceConfig};
use nimblock_metrics::{Report, RunCounters};
use nimblock_obs::nb_debug;
use nimblock_sim::{SimDuration, SimTime, Simulation};
use nimblock_workload::{ArrivalEvent, EventSequence};

use crate::pool;
use crate::{DispatchPolicy, Dispatcher};

/// The result of a cluster run: the merged report plus per-board detail.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    merged: Report,
    per_board: Vec<Report>,
    assignments: Vec<usize>,
    per_board_traces: Vec<Trace>,
    monitor: Option<nimblock_obs::MonitorDoc>,
}

impl ClusterReport {
    /// Returns the merged report over all boards (records keep their
    /// stimulus event indices; `finished_at` is the latest board finish).
    pub fn merged(&self) -> &Report {
        &self.merged
    }

    /// Returns one report per board, containing only its own applications
    /// (with their *global* stimulus event indices).
    pub fn per_board(&self) -> &[Report] {
        &self.per_board
    }

    /// Returns one schedule trace per board, when the run was traced (see
    /// [`ClusterTestbed::with_tracing`]); empty otherwise.
    pub fn per_board_traces(&self) -> &[Trace] {
        &self.per_board_traces
    }

    /// Returns the number of boards.
    pub fn board_count(&self) -> usize {
        self.per_board.len()
    }

    /// Returns which board each stimulus event was dispatched to.
    pub fn assignments(&self) -> &[usize] {
        &self.assignments
    }

    /// Returns the merged monitoring document when the run was monitored
    /// (see [`ClusterTestbed::with_monitor`]); `None` otherwise. Windows
    /// are summed index-wise across boards in board order, SLO rules are
    /// evaluated once over the merged series, and the flight recorders
    /// are concatenated in board order — so the document is byte-identical
    /// for any worker-thread count.
    pub fn monitor(&self) -> Option<&nimblock_obs::MonitorDoc> {
        self.monitor.as_ref()
    }

    /// Returns how many events each board received.
    pub fn board_loads(&self) -> Vec<usize> {
        let mut loads = vec![0usize; self.per_board.len()];
        for &board in &self.assignments {
            loads[board] += 1;
        }
        loads
    }
}

/// Everything one board's worker produces; merged in board-index order.
struct BoardOutcome {
    report: Report,
    trace: Option<Trace>,
    shard: Option<nimblock_obs::Registry>,
    monitor: Option<nimblock_obs::MonitorState>,
}

/// Emulates real-time application arrival on a cluster of identical boards:
/// arrivals are planned onto boards by a deterministic [`Dispatcher`], each
/// board simulates its own share (in parallel under
/// [`ClusterTestbed::with_threads`]), and the per-board results merge into
/// one report — byte-identical to the sequential run for the same seed.
///
/// See the crate-level example.
pub struct ClusterTestbed<F> {
    boards: usize,
    dispatch: DispatchPolicy,
    scheduler_factory: F,
    device_config: DeviceConfig,
    horizon: SimTime,
    threads: usize,
    tracing: bool,
    metrics: Option<nimblock_obs::Registry>,
    monitor: Option<nimblock_obs::MonitorConfig>,
    legacy_queue: bool,
}

impl<S, F> ClusterTestbed<F>
where
    S: Scheduler,
    F: Fn() -> S + Sync,
{
    /// Creates a cluster of `boards` identical ZCU106 overlays; every board
    /// gets a fresh scheduler from `scheduler_factory`. The factory is
    /// shared by reference with the worker threads, hence the `Sync` bound;
    /// the schedulers it builds never cross threads.
    ///
    /// Runs sequentially by default ([`ClusterTestbed::with_threads`]).
    ///
    /// # Panics
    ///
    /// Panics if `boards` is zero.
    pub fn new(boards: usize, dispatch: DispatchPolicy, scheduler_factory: F) -> Self {
        assert!(boards > 0, "a cluster needs at least one board");
        ClusterTestbed {
            boards,
            dispatch,
            scheduler_factory,
            device_config: DeviceConfig::zcu106(),
            horizon: SimTime::from_secs(10_000_000),
            threads: 1,
            tracing: false,
            metrics: None,
            monitor: None,
            legacy_queue: false,
        }
    }

    /// Runs every board on the retired binary-heap event queue instead of
    /// the calendar queue; differential-suite use only (see the
    /// `legacy-queue` feature).
    #[cfg(feature = "legacy-queue")]
    pub fn with_legacy_queue(mut self) -> Self {
        self.legacy_queue = true;
        self
    }

    /// Sets how many worker threads simulate boards in parallel.
    ///
    /// `1` (the default) runs every board inline on the calling thread —
    /// the sequential oracle. `0` means auto (the host's available
    /// parallelism). Any value yields the same bytes; threads only change
    /// wall-clock time.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = pool::resolve_threads(threads);
        self
    }

    /// Enables per-board schedule tracing; the traces come back in
    /// [`ClusterReport::per_board_traces`], in board order.
    pub fn with_tracing(mut self) -> Self {
        self.tracing = true;
        self
    }

    /// Overrides the per-board device configuration.
    pub fn with_device_config(mut self, device_config: DeviceConfig) -> Self {
        self.device_config = device_config;
        self
    }

    /// Publishes cluster telemetry in `registry`: the dispatcher's
    /// `cluster_*` series plus — merged from per-board shards in board
    /// order — the boards' `hv_*`, `sched_*`, and `sim_*` series. Shards
    /// use untimed hypervisor metrics (no wall-clock samples), so the
    /// merged export is deterministic across runs and thread counts.
    pub fn with_metrics(mut self, registry: nimblock_obs::Registry) -> Self {
        self.metrics = Some(registry);
        self
    }

    /// Attaches a continuous monitor to every board. Each board
    /// aggregates its own windowed series (with the rule set stripped —
    /// running per-board rules on partial series would mis-fire); the
    /// merge phase folds the boards together in board-index order and
    /// evaluates `config`'s SLO rules once, over the merged series. The
    /// result lands in [`ClusterReport::monitor`].
    pub fn with_monitor(mut self, config: nimblock_obs::MonitorConfig) -> Self {
        self.monitor = Some(config);
        self
    }

    /// Runs `events` to completion.
    ///
    /// # Panics
    ///
    /// Panics if any application fails to retire before the livelock
    /// horizon.
    pub fn run(self, events: &EventSequence) -> ClusterReport {
        let tick = SimDuration::from_millis(nimblock_fpga::zcu106::SCHEDULING_INTERVAL_MILLIS);
        let reconfig = Device::new(self.device_config.clone()).nominal_reconfig_latency();

        // Phase 1: plan. Sequential over the arrival stream; the only
        // shared mutable state of the whole run lives here.
        let dispatches = match &self.metrics {
            Some(registry) => {
                registry
                    .gauge("cluster_boards", "Boards in the modelled cluster")
                    .set(self.boards as i64);
                registry.counter(
                    "cluster_dispatches_total",
                    "Applications dispatched to a board",
                )
            }
            None => nimblock_obs::Counter::detached(),
        };
        let mut dispatcher = Dispatcher::new(self.dispatch, self.boards, reconfig);
        let mut assignments = Vec::with_capacity(events.len());
        let mut board_events: Vec<(Vec<ArrivalEvent>, Vec<usize>)> =
            vec![(Vec::new(), Vec::new()); self.boards];
        for (index, event) in events.iter().enumerate() {
            let board = dispatcher.assign(event);
            nb_debug!("cluster", "dispatch event {index} -> board {board}");
            dispatches.inc();
            assignments.push(board);
            board_events[board].0.push(event.clone());
            board_events[board].1.push(index);
        }

        // Phase 2: execute. One independent job per board; nothing below
        // touches shared state, so the pool may run them in any order.
        let factory = &self.scheduler_factory;
        let device_config = &self.device_config;
        let horizon = self.horizon;
        let tracing = self.tracing;
        let sharded = self.metrics.is_some();
        let monitor_config = &self.monitor;
        let legacy_queue = self.legacy_queue;
        let jobs: Vec<_> = board_events
            .into_iter()
            .enumerate()
            .map(|(board, (stimulus, globals))| {
                move || {
                    run_board(
                        factory(),
                        device_config.clone(),
                        stimulus,
                        globals,
                        board,
                        tick,
                        horizon,
                        tracing,
                        sharded,
                        monitor_config.clone(),
                        legacy_queue,
                    )
                }
            })
            .collect();
        let outcomes = pool::run_indexed(self.threads, jobs);

        // Phase 3: merge, strictly in board-index order.
        let mut per_board = Vec::with_capacity(outcomes.len());
        let mut per_board_traces = Vec::new();
        let mut merged_monitor = self
            .monitor
            .as_ref()
            .map(|config| nimblock_obs::MonitorState::new(config.clone(), 0));
        for outcome in outcomes {
            if let (Some(registry), Some(shard)) = (&self.metrics, &outcome.shard) {
                registry.merge_from(shard);
            }
            if let (Some(merged), Some(board)) = (&mut merged_monitor, &outcome.monitor) {
                merged.merge_from(board);
            }
            if let Some(trace) = outcome.trace {
                per_board_traces.push(trace);
            }
            per_board.push(outcome.report);
        }
        // SLO rules run exactly once, over the cluster-wide series.
        let monitor_doc = merged_monitor.map(|mut merged| {
            merged.evaluate_merged();
            merged.to_doc()
        });
        let finished_at = per_board
            .iter()
            .map(|r| r.finished_at())
            .max()
            .unwrap_or(SimTime::ZERO);
        let scheduler_name = per_board
            .first()
            .map(|r| r.scheduler().to_owned())
            .unwrap_or_default();
        let merged_records = per_board
            .iter()
            .flat_map(|r| r.records().iter().cloned())
            .collect();
        let merged_counters = per_board
            .iter()
            .fold(RunCounters::default(), |acc, r| acc.merged(*r.counters()));
        if let Some(registry) = &self.metrics {
            registry
                .counter("cluster_arrivals_total", "Arrivals across all boards")
                .add(merged_counters.arrivals);
            registry
                .counter("cluster_retires_total", "Retirements across all boards")
                .add(merged_counters.retires);
        }
        let mut merged = Report::new(
            format!(
                "cluster({boards}x{scheduler_name}, {dispatch_name})",
                boards = per_board.len(),
                dispatch_name = self.dispatch.name(),
            ),
            merged_records,
            finished_at,
        )
        .with_counters(merged_counters);
        // Traced runs carry per-board attribution; the merge re-sorts by
        // global event index, so it is invariant to board and fold order.
        if let Some(attribution) = per_board
            .iter()
            .filter_map(|r| r.attribution().cloned())
            .reduce(nimblock_metrics::AttributionSummary::merged)
        {
            merged = merged.with_attribution(attribution);
        }
        ClusterReport {
            merged,
            per_board,
            assignments,
            per_board_traces,
            monitor: monitor_doc,
        }
    }
}

/// Simulates one board over its share of the stimulus. Runs on a pool
/// worker; everything it touches is owned by this call.
#[allow(clippy::too_many_arguments)]
fn run_board<S: Scheduler>(
    mut scheduler: S,
    device_config: DeviceConfig,
    stimulus: Vec<ArrivalEvent>,
    globals: Vec<usize>,
    board: usize,
    tick: SimDuration,
    horizon: SimTime,
    tracing: bool,
    sharded: bool,
    monitor_config: Option<nimblock_obs::MonitorConfig>,
    legacy_queue: bool,
) -> BoardOutcome {
    let shard = sharded.then(nimblock_obs::Registry::new);
    if let Some(shard) = &shard {
        scheduler.attach_metrics(shard);
    }
    // Board monitors aggregate only: the rule set is stripped so no SLO
    // fires on a partial (single-board) series; rules run on the merge.
    let monitor = monitor_config.map(|config| {
        let handle = nimblock_obs::MonitorHandle::new(config.without_rules(), 0);
        handle.with(|m| m.set_board(board as u64));
        handle
    });
    let arrivals: Vec<SimTime> = stimulus.iter().map(|e| e.arrival()).collect();
    let mut hypervisor =
        Hypervisor::new(Device::new(device_config), scheduler, stimulus).with_tick_interval(tick);
    if let Some(shard) = &shard {
        // Untimed: no wall-clock samples, so the shard (and therefore the
        // merged cluster registry) is a function of simulated time only.
        hypervisor = hypervisor.with_untimed_metrics(shard);
    }
    if let Some(monitor) = &monitor {
        hypervisor = hypervisor.with_monitor(monitor.clone());
    }
    if tracing {
        hypervisor = hypervisor.with_tracing();
    }
    let queue = if legacy_queue {
        nimblock_sim::EventQueue::legacy_heap()
    } else {
        nimblock_sim::EventQueue::new()
    };
    let mut sim = Simulation::with_queue(hypervisor, queue);
    for (local, at) in arrivals.iter().enumerate() {
        sim.queue_mut().push(*at, HvEvent::Arrival(local));
    }
    // An idle board never ticks: its sim ends at t=0 instead of spinning,
    // and it cannot inflate the merged finish time.
    if !arrivals.is_empty() {
        sim.queue_mut().push(SimTime::ZERO + tick, HvEvent::Tick);
    }
    sim.run_until(horizon);
    assert!(
        sim.handler().finished(),
        "cluster board hit the livelock horizon with applications outstanding"
    );
    if let Some(shard) = &shard {
        shard
            .counter("sim_events_total", "Simulation events processed")
            .add(sim.steps());
        shard
            .gauge(
                "sim_event_queue_depth_max",
                "High-water mark of the simulation event-queue depth",
            )
            .set(sim.max_queue_depth() as i64);
    }
    let finished_at = sim.now();
    let monitor_state = monitor.map(|handle| {
        handle.with(|m| {
            m.finalize(finished_at.as_micros());
            m.clone()
        })
    });
    let mut hypervisor = sim.into_handler();
    let trace = hypervisor.take_trace();
    let report = hypervisor.into_report(finished_at);
    // Remap board-local stimulus indices back to the global event order the
    // caller dispatched. Local order is a subsequence of global order, so
    // the report's index-sorted invariant survives the remap.
    let records = report
        .records()
        .iter()
        .cloned()
        .map(|mut record| {
            record.event_index = globals[record.event_index];
            record
        })
        .collect();
    let mut report = Report::new(report.scheduler().to_owned(), records, finished_at)
        .with_counters(*report.counters());
    if let Some(trace) = &trace {
        // Attribution uses per-board arrival order as its index; remap to
        // global stimulus indices the same way the records were. The
        // summary is a pure function of the (deterministic) trace, so it
        // cannot depend on the worker-thread count.
        let mut attribution = nimblock_core::attribute_trace(trace);
        for app in &mut attribution.apps {
            app.event_index = globals[app.event_index];
        }
        let attribution =
            nimblock_metrics::AttributionSummary::from_apps(attribution.apps);
        report = report.with_attribution(attribution);
    }
    BoardOutcome {
        report,
        trace,
        shard,
        monitor: monitor_state,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nimblock_core::{NimblockScheduler, Testbed};
    use nimblock_workload::{generate, Scenario};

    fn cluster(
        boards: usize,
        dispatch: DispatchPolicy,
    ) -> ClusterTestbed<impl Fn() -> NimblockScheduler> {
        ClusterTestbed::new(boards, dispatch, NimblockScheduler::default)
    }

    #[test]
    fn single_board_cluster_matches_the_plain_testbed() {
        let events = generate(3, 8, Scenario::Stress);
        let plain = Testbed::new(NimblockScheduler::default()).run(&events);
        let clustered = cluster(1, DispatchPolicy::RoundRobin).run(&events);
        assert_eq!(plain.records(), clustered.merged().records());
    }

    #[test]
    fn every_event_is_assigned_and_retired() {
        let events = generate(4, 12, Scenario::Stress);
        for dispatch in DispatchPolicy::ALL {
            let report = cluster(3, dispatch).run(&events);
            assert_eq!(report.merged().records().len(), 12, "{}", dispatch.name());
            assert_eq!(report.assignments().len(), 12);
            assert!(report.assignments().iter().all(|&b| b < 3));
            let loads = report.board_loads();
            assert_eq!(loads.iter().sum::<usize>(), 12);
        }
    }

    #[test]
    fn round_robin_spreads_evenly() {
        let events = generate(5, 12, Scenario::RealTime);
        let report = cluster(4, DispatchPolicy::RoundRobin).run(&events);
        assert_eq!(report.board_loads(), vec![3, 3, 3, 3]);
    }

    #[test]
    fn more_boards_do_not_hurt_mean_response() {
        let events = generate(6, 16, Scenario::Stress);
        let one = cluster(1, DispatchPolicy::LeastOutstanding).run(&events);
        let four = cluster(4, DispatchPolicy::LeastOutstanding).run(&events);
        assert!(
            four.merged().mean_response_secs() <= one.merged().mean_response_secs(),
            "4 boards ({:.1}s) vs 1 board ({:.1}s)",
            four.merged().mean_response_secs(),
            one.merged().mean_response_secs()
        );
    }

    #[test]
    fn least_outstanding_avoids_the_loaded_board() {
        use nimblock_app::{benchmarks, Priority};
        // A huge app lands first; the next arrivals must go to the other
        // board under least-outstanding.
        let events = EventSequence::new(vec![
            ArrivalEvent::new(benchmarks::digit_recognition(), 10, Priority::Low, SimTime::ZERO),
            ArrivalEvent::new(benchmarks::lenet(), 2, Priority::High, SimTime::from_millis(100)),
            ArrivalEvent::new(benchmarks::lenet(), 2, Priority::High, SimTime::from_millis(200)),
        ]);
        let report = cluster(2, DispatchPolicy::LeastOutstanding).run(&events);
        let assignments = report.assignments();
        assert_ne!(assignments[1], assignments[0]);
        assert_ne!(assignments[2], assignments[0]);
    }

    #[test]
    fn cluster_metrics_and_merged_counters() {
        let events = generate(7, 9, Scenario::Standard);
        let registry = nimblock_obs::Registry::new();
        let report = cluster(3, DispatchPolicy::RoundRobin)
            .with_metrics(registry.clone())
            .run(&events);
        let text = registry.render_prometheus();
        assert!(text.contains("cluster_dispatches_total 9"), "{text}");
        assert!(text.contains("cluster_boards 3"), "{text}");
        assert!(text.contains("cluster_arrivals_total 9"), "{text}");
        assert!(text.contains("cluster_retires_total 9"), "{text}");
        // Board shards surface merged in the same registry.
        assert!(text.contains("hv_arrivals_total 9"), "{text}");
        assert!(text.contains("sim_events_total"), "{text}");
        // The untimed shards never take wall-clock samples.
        assert!(text.contains("hv_decision_latency_nanos_count 0"), "{text}");
        nimblock_obs::validate_prometheus(&text).unwrap();
        // The merged report aggregates the per-board counters.
        assert_eq!(report.merged().counters().arrivals, 9);
        let per_board_sum: u64 = report.per_board().iter().map(|r| r.counters().retires).sum();
        assert_eq!(per_board_sum, 9);
    }

    /// The determinism oracle in miniature: every thread count yields the
    /// same bytes — records, assignments, per-board reports, traces, and
    /// the rendered metrics page. The full randomized version lives in
    /// `tests/cluster_differential.rs`.
    #[test]
    fn parallel_run_is_byte_identical_to_sequential() {
        let events = generate(21, 14, Scenario::Stress);
        let run = |threads: usize| {
            let registry = nimblock_obs::Registry::new();
            let monitor = nimblock_obs::MonitorConfig::with_window_micros(1_000_000)
                .rules(nimblock_obs::parse_rules(&["resp:low:p50<=1us".into()]).unwrap());
            let report = cluster(3, DispatchPolicy::LeastOutstanding)
                .with_threads(threads)
                .with_tracing()
                .with_metrics(registry.clone())
                .with_monitor(monitor)
                .run(&events);
            (report, registry.render_prometheus())
        };
        let (sequential, seq_metrics) = run(1);
        for threads in [2, 8] {
            let (parallel, par_metrics) = run(threads);
            assert_eq!(sequential.assignments(), parallel.assignments());
            assert_eq!(sequential.merged().records(), parallel.merged().records());
            assert_eq!(sequential.merged().finished_at(), parallel.merged().finished_at());
            assert_eq!(sequential.merged().counters(), parallel.merged().counters());
            for (a, b) in sequential.per_board().iter().zip(parallel.per_board()) {
                assert_eq!(a.records(), b.records());
                assert_eq!(a.finished_at(), b.finished_at());
            }
            assert_eq!(
                sequential.per_board_traces().len(),
                parallel.per_board_traces().len()
            );
            for (a, b) in sequential
                .per_board_traces()
                .iter()
                .zip(parallel.per_board_traces())
            {
                assert_eq!(
                    nimblock_ser::to_string_pretty(a),
                    nimblock_ser::to_string_pretty(b)
                );
            }
            assert_eq!(seq_metrics, par_metrics, "metrics page must not depend on threads");
            assert_eq!(
                sequential.merged().attribution(),
                parallel.merged().attribution(),
                "merged attribution must not depend on threads"
            );
            // The merged monitoring document — windows, alerts, and the
            // concatenated flight recorder — down to its serialized bytes.
            assert_eq!(sequential.monitor(), parallel.monitor());
            assert_eq!(
                nimblock_ser::to_string_pretty(sequential.monitor().unwrap()),
                nimblock_ser::to_string_pretty(parallel.monitor().unwrap()),
                "monitor doc must not depend on threads"
            );
        }
    }

    #[test]
    fn cluster_monitor_merges_boards_and_fires_rules_once() {
        let events = generate(9, 6, Scenario::Standard);
        // A 100% utilization floor is unmeetable, so the merged
        // evaluation must fire; per-board evaluation is stripped, so
        // every alert can only come from the merged series.
        let config = nimblock_obs::MonitorConfig::with_window_micros(1_000_000)
            .rules(nimblock_obs::parse_rules(&["util>=100%".into()]).unwrap());
        let report = cluster(3, DispatchPolicy::RoundRobin)
            .with_monitor(config)
            .run(&events);
        let doc = report.monitor().expect("monitored run carries a doc");
        assert_eq!(doc.slots, 30, "3 boards x 10 slots");
        let arrivals: u64 = doc.windows.iter().map(|w| w.arrivals).sum();
        let retires: u64 = doc.windows.iter().map(|w| w.retires).sum();
        assert_eq!((arrivals, retires), (6, 6));
        assert!(!doc.alerts.is_empty(), "unmeetable SLO must fire on the merge");
        assert_eq!(doc.rules, vec!["util>=100%".to_owned()]);
        // Flight-recorder entries carry their board tags, concatenated in
        // board-index order.
        let boards: Vec<u64> = doc.recorder.iter().map(|e| e.board).collect();
        assert!(boards.windows(2).all(|pair| pair[0] <= pair[1]), "{boards:?}");
        assert!(boards.iter().any(|&b| b > 0), "multiple boards recorded");
        // Unmonitored runs carry no doc.
        assert!(cluster(3, DispatchPolicy::RoundRobin).run(&events).monitor().is_none());
    }

    #[test]
    fn traced_cluster_carries_exact_attribution() {
        let events = generate(17, 10, Scenario::Stress);
        let report = cluster(3, DispatchPolicy::LeastOutstanding)
            .with_tracing()
            .run(&events);
        let merged = report.merged().attribution().expect("traced run attributes");
        assert!(merged.is_exact());
        assert_eq!(merged.apps.len(), 10, "every retired app is attributed");
        // Per-app event indices are the *global* stimulus indices.
        let indices: Vec<usize> = merged.apps.iter().map(|a| a.event_index).collect();
        assert_eq!(indices, (0..10).collect::<Vec<_>>());
        for board in report.per_board() {
            let attribution = board.attribution().expect("per-board attribution");
            assert!(attribution.is_exact());
        }
        // Untraced runs carry no attribution.
        let untraced = cluster(3, DispatchPolicy::LeastOutstanding).run(&events);
        assert!(untraced.merged().attribution().is_none());
    }

    #[test]
    fn single_board_attribution_matches_the_plain_testbed_oracle() {
        let events = generate(29, 8, Scenario::Stress);
        let (plain, _trace) =
            Testbed::new(NimblockScheduler::default()).run_traced(&events);
        let clustered = cluster(1, DispatchPolicy::RoundRobin)
            .with_tracing()
            .run(&events);
        assert_eq!(plain.attribution(), clustered.merged().attribution());
    }

    #[test]
    fn traced_cluster_returns_one_trace_per_board() {
        let events = generate(9, 6, Scenario::Standard);
        let report = cluster(3, DispatchPolicy::RoundRobin)
            .with_tracing()
            .run(&events);
        assert_eq!(report.per_board_traces().len(), 3);
        // Untraced runs return no traces.
        let untraced = cluster(3, DispatchPolicy::RoundRobin).run(&events);
        assert!(untraced.per_board_traces().is_empty());
    }

    #[test]
    fn idle_boards_do_not_inflate_the_merged_finish() {
        // Eight boards, two events: six boards stay idle at t=0.
        let events = generate(13, 2, Scenario::Standard);
        let few = cluster(1, DispatchPolicy::RoundRobin).run(&events);
        let many = cluster(8, DispatchPolicy::RoundRobin)
            .with_threads(4)
            .run(&events);
        assert!(many.merged().finished_at() <= few.merged().finished_at());
        assert_eq!(many.merged().records().len(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one board")]
    fn zero_boards_is_rejected() {
        let _ = ClusterTestbed::new(0, DispatchPolicy::RoundRobin, NimblockScheduler::default);
    }
}
