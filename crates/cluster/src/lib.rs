//! Multi-FPGA scale-out for the Nimblock virtualization stack.
//!
//! The paper's introduction lists three features a virtualized FPGA should
//! support; the prototype demonstrates the first (fine-grained
//! multi-tenancy) on a single ZCU106. This crate supplies the second —
//! **scale-out** — as a library layer above `nimblock-core`: a cluster of
//! modelled boards, each running its own hypervisor and scheduler, with a
//! dispatcher that assigns arriving applications to boards.
//!
//! Dispatch happens at arrival time (applications do not migrate between
//! boards; their partial bitstreams live on one board's storage), using one
//! of the [`DispatchPolicy`] strategies — applied by a [`Dispatcher`] whose
//! load model is deterministic, so assignment is a pure function of the
//! arrival stream and the per-board simulations can run on worker threads
//! ([`ClusterTestbed::with_threads`]) while merging to a byte-identical
//! result.
//!
//! # Example
//!
//! ```
//! use nimblock_cluster::{ClusterTestbed, DispatchPolicy};
//! use nimblock_core::NimblockScheduler;
//! use nimblock_workload::{generate, Scenario};
//!
//! let events = generate(1, 8, Scenario::Stress);
//! let report = ClusterTestbed::new(2, DispatchPolicy::LeastOutstanding, || {
//!     Box::new(NimblockScheduler::default())
//! })
//! .with_threads(2)
//! .run(&events);
//! assert_eq!(report.merged().records().len(), 8);
//! assert_eq!(report.board_count(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dispatch;
pub mod pool;
mod testbed;

pub use dispatch::{DispatchDecision, DispatchPolicy, Dispatcher, BITSTREAM_CACHE_SLOTS};
pub use testbed::{ClusterReport, ClusterTestbed};
