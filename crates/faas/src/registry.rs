//! Deployed functions and service classes.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::sync::Arc;

use nimblock_ser::impl_json_enum_units;

use nimblock_app::{AppSpec, Priority};

/// The service class a function is deployed under, mapped onto the
/// hypervisor's three priority levels (paper §4.1) and onto deadline
/// factors for SLO-attainment accounting (the `D_s` model of §5.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SloClass {
    /// Interactive: highest priority, deadline 2× single-slot latency.
    Latency,
    /// Default: medium priority, deadline 6× single-slot latency.
    Standard,
    /// Throughput-oriented: low priority, deadline 20× single-slot latency.
    Batch,
}

impl_json_enum_units!(SloClass { Latency, Standard, Batch });

impl SloClass {
    /// All classes, strictest first.
    pub const ALL: [SloClass; 3] = [SloClass::Latency, SloClass::Standard, SloClass::Batch];

    /// Returns the hypervisor priority this class maps to.
    pub fn priority(self) -> Priority {
        match self {
            SloClass::Latency => Priority::High,
            SloClass::Standard => Priority::Medium,
            SloClass::Batch => Priority::Low,
        }
    }

    /// Returns the deadline scaling factor (`D_s`) defining SLO attainment.
    pub fn deadline_factor(self) -> f64 {
        match self {
            SloClass::Latency => 2.0,
            SloClass::Standard => 6.0,
            SloClass::Batch => 20.0,
        }
    }

    /// Returns the class's display name.
    pub fn name(self) -> &'static str {
        match self {
            SloClass::Latency => "latency",
            SloClass::Standard => "standard",
            SloClass::Batch => "batch",
        }
    }
}

impl fmt::Display for SloClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An error raised by the FaaS layer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FaasError {
    /// A function with this name is already deployed.
    AlreadyDeployed(String),
    /// No function with this name is deployed.
    UnknownFunction(String),
    /// The registry is empty, so no workload can be generated.
    EmptyRegistry,
}

impl fmt::Display for FaasError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaasError::AlreadyDeployed(name) => write!(f, "function '{name}' already deployed"),
            FaasError::UnknownFunction(name) => write!(f, "no function named '{name}'"),
            FaasError::EmptyRegistry => write!(f, "no functions deployed"),
        }
    }
}

impl Error for FaasError {}

#[derive(Debug, Clone)]
pub(crate) struct Function {
    pub(crate) app: Arc<AppSpec>,
    pub(crate) slo: SloClass,
}

/// The set of deployed functions.
///
/// Deployment corresponds to the paper's compilation product arriving at
/// the hypervisor (§2.2): the application is partitioned, bitstreams are
/// generated, and the result is registered under a name. Invocations then
/// reference the name; the shared bitstream cache in the hypervisor makes
/// repeat invocations warm.
#[derive(Debug, Clone, Default)]
pub struct FunctionRegistry {
    functions: BTreeMap<String, Function>,
}

impl FunctionRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        FunctionRegistry::default()
    }

    /// Deploys `app` under `name` with the given service class.
    ///
    /// # Errors
    ///
    /// Returns [`FaasError::AlreadyDeployed`] if the name is taken.
    pub fn deploy(
        &mut self,
        name: impl Into<String>,
        app: AppSpec,
        slo: SloClass,
    ) -> Result<(), FaasError> {
        let name = name.into();
        if self.functions.contains_key(&name) {
            return Err(FaasError::AlreadyDeployed(name));
        }
        self.functions.insert(
            name,
            Function {
                app: Arc::new(app),
                slo,
            },
        );
        Ok(())
    }

    /// Removes a deployed function.
    ///
    /// # Errors
    ///
    /// Returns [`FaasError::UnknownFunction`] if nothing is deployed under
    /// `name`.
    pub fn undeploy(&mut self, name: &str) -> Result<(), FaasError> {
        self.functions
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| FaasError::UnknownFunction(name.to_owned()))
    }

    /// Returns the number of deployed functions.
    pub fn len(&self) -> usize {
        self.functions.len()
    }

    /// Returns `true` if nothing is deployed.
    pub fn is_empty(&self) -> bool {
        self.functions.is_empty()
    }

    /// Returns the deployed function names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.functions.keys().map(String::as_str).collect()
    }

    /// Returns the SLO class of `name`, if deployed.
    pub fn slo(&self, name: &str) -> Option<SloClass> {
        self.functions.get(name).map(|f| f.slo)
    }

    /// Returns the deployed application behind `name`, if any. The
    /// capacity planner uses this to re-price recorded work under
    /// counterfactual reconfiguration latencies.
    pub fn app(&self, name: &str) -> Option<Arc<AppSpec>> {
        self.functions.get(name).map(|f| Arc::clone(&f.app))
    }

    pub(crate) fn get(&self, name: &str) -> Result<&Function, FaasError> {
        self.functions
            .get(name)
            // Allocates only on the unknown-function error path, which
            // rejects the invocation. nimblock: allow(hot-path-no-alloc)
            .ok_or_else(|| FaasError::UnknownFunction(name.to_owned()))
    }

    /// Deploys the paper's six benchmarks as a ready-made function set:
    /// the short ones latency-class, the medium ones standard, the long
    /// DigitRecognition batch-class.
    pub fn benchmark_suite() -> Self {
        use nimblock_app::benchmarks;
        let mut registry = FunctionRegistry::new();
        let deployments = [
            ("lenet", benchmarks::lenet(), SloClass::Latency),
            ("imgc", benchmarks::image_compression(), SloClass::Latency),
            ("render3d", benchmarks::rendering_3d(), SloClass::Latency),
            ("optflow", benchmarks::optical_flow(), SloClass::Standard),
            ("alexnet", benchmarks::alexnet(), SloClass::Standard),
            ("digits", benchmarks::digit_recognition(), SloClass::Batch),
        ];
        for (name, app, slo) in deployments {
            registry
                .deploy(name, app, slo)
                .expect("fresh registry has no collisions");
        }
        registry
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nimblock_app::benchmarks;

    #[test]
    fn deploy_and_undeploy_lifecycle() {
        let mut registry = FunctionRegistry::new();
        assert!(registry.is_empty());
        registry
            .deploy("f", benchmarks::lenet(), SloClass::Latency)
            .unwrap();
        assert_eq!(registry.len(), 1);
        assert_eq!(registry.slo("f"), Some(SloClass::Latency));
        assert_eq!(
            registry.deploy("f", benchmarks::lenet(), SloClass::Batch),
            Err(FaasError::AlreadyDeployed("f".into()))
        );
        registry.undeploy("f").unwrap();
        assert_eq!(
            registry.undeploy("f"),
            Err(FaasError::UnknownFunction("f".into()))
        );
    }

    #[test]
    fn slo_classes_map_to_priorities_and_deadlines() {
        assert_eq!(SloClass::Latency.priority(), Priority::High);
        assert_eq!(SloClass::Standard.priority(), Priority::Medium);
        assert_eq!(SloClass::Batch.priority(), Priority::Low);
        assert!(SloClass::Latency.deadline_factor() < SloClass::Batch.deadline_factor());
    }

    #[test]
    fn benchmark_suite_deploys_all_six() {
        let registry = FunctionRegistry::benchmark_suite();
        assert_eq!(registry.len(), 6);
        assert_eq!(registry.slo("digits"), Some(SloClass::Batch));
        assert_eq!(registry.slo("lenet"), Some(SloClass::Latency));
    }

    #[test]
    fn error_messages_are_descriptive() {
        assert!(FaasError::EmptyRegistry.to_string().contains("no functions"));
        assert!(FaasError::UnknownFunction("x".into())
            .to_string()
            .contains("'x'"));
    }
}
