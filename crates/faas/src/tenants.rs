//! Multi-tenant admission control: token-bucket rate limits and in-flight
//! quotas (DESIGN.md §17).
//!
//! Every offered invocation names a tenant; before it reaches the
//! dispatcher the tenant's [`TenantRegistry`] gets to reject it. Two
//! independent guards, checked in order:
//!
//! 1. **Rate limit** — a token bucket refilled in *virtual* time at the
//!    configured rate, with integer micro-token arithmetic so refills are
//!    exact and platform-independent (no float accumulation drift).
//! 2. **Quota** — a cap on the tenant's estimated in-flight invocations,
//!    tracked as a bounded min-heap of predicted completion times.
//!
//! Rejections are *tenant* outcomes (the arrival never consumed cluster
//! capacity), distinct from load *shedding* which happens after dispatch
//! pricing. The conservation identity in `ServingCounters` accounts both.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use nimblock_sim::SimTime;

/// Micro-tokens debited per admitted invocation: buckets hold
/// `burst × 1_000_000` and refill at `rate × 1_000_000` per virtual
/// second, all in integers.
const MICRO_TOKENS_PER_INVOCATION: u64 = 1_000_000;

/// The admission policy every tenant is held to.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantPolicy {
    /// Sustained invocation rate per virtual second; `0.0` disables the
    /// rate limit.
    pub rate_per_sec: f64,
    /// Token-bucket capacity in invocations (the largest admissible
    /// burst). Ignored when the rate limit is disabled.
    pub burst: u64,
    /// Maximum estimated in-flight invocations; `0` disables the quota.
    pub quota: u64,
}

impl Default for TenantPolicy {
    fn default() -> Self {
        TenantPolicy { rate_per_sec: 0.0, burst: 16, quota: 0 }
    }
}

/// Why (or whether) a tenant admits an invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionVerdict {
    /// Both guards passed; the invocation may proceed to dispatch.
    Admit,
    /// The token bucket is empty — rate-limit rejection.
    RejectRate,
    /// The tenant is at its in-flight quota — quota rejection.
    RejectQuota,
}

/// One tenant's admission state. Memory is O(quota): the bucket is two
/// integers and the in-flight heap never exceeds the quota bound (with
/// the quota disabled the heap is still pruned every arrival, and sizes
/// stay bounded by the shed horizon upstream).
#[derive(Debug, Clone)]
struct TenantState {
    micro_tokens: u64,
    last_refill: SimTime,
    in_flight: BinaryHeap<Reverse<SimTime>>,
    peak_in_flight: u64,
    admitted: u64,
    rejected_rate: u64,
    rejected_quota: u64,
    offered: u64,
}

/// Admission control over a fixed set of tenants, all under the same
/// [`TenantPolicy`].
#[derive(Debug, Clone)]
pub struct TenantRegistry {
    policy: TenantPolicy,
    rate_micro_per_sec: u64,
    capacity_micro: u64,
    tenants: Vec<TenantState>,
}

impl TenantRegistry {
    /// Creates `tenants` tenants under `policy`, with full buckets.
    ///
    /// # Panics
    ///
    /// Panics if `tenants` is zero or the policy's rate is negative or
    /// non-finite.
    pub fn new(tenants: usize, policy: TenantPolicy) -> Self {
        assert!(tenants > 0, "the front door needs at least one tenant");
        assert!(
            policy.rate_per_sec.is_finite() && policy.rate_per_sec >= 0.0,
            "tenant rate must be non-negative, got {}",
            policy.rate_per_sec
        );
        let rate_micro_per_sec =
            micro_tokens(policy.rate_per_sec * MICRO_TOKENS_PER_INVOCATION as f64);
        let capacity_micro = policy
            .burst
            .max(1)
            .saturating_mul(MICRO_TOKENS_PER_INVOCATION);
        TenantRegistry {
            policy,
            rate_micro_per_sec,
            capacity_micro,
            tenants: vec![
                TenantState {
                    micro_tokens: capacity_micro,
                    last_refill: SimTime::ZERO,
                    in_flight: BinaryHeap::new(),
                    peak_in_flight: 0,
                    admitted: 0,
                    rejected_rate: 0,
                    rejected_quota: 0,
                    offered: 0,
                };
                tenants
            ],
        }
    }

    /// Number of tenants.
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// `false` — the registry always holds at least one tenant.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Judges one offered invocation from `tenant` arriving at `now`.
    ///
    /// Counts the offer, refills the bucket to `now`, prunes completed
    /// in-flight entries, and applies rate-then-quota. An admitted
    /// verdict **debits one token immediately** — tenants pay for
    /// requests the moment the front door accepts them, even if the
    /// cluster later sheds the work (classic request-level rate
    /// limiting; anything else would let an overloaded cluster refund
    /// the very load that overloads it). The in-flight slot, by
    /// contrast, is only occupied by
    /// [`TenantRegistry::record_admission`] once the invocation is
    /// actually served.
    pub fn judge(&mut self, tenant: usize, now: SimTime) -> AdmissionVerdict {
        let rate_limited = self.policy.rate_per_sec > 0.0;
        let rate_micro = self.rate_micro_per_sec;
        let capacity = self.capacity_micro;
        let quota = self.policy.quota;
        let state = &mut self.tenants[tenant];
        state.offered += 1;
        if rate_limited {
            // Exact integer refill: elapsed µs × (µ-tokens/s) / 1e6.
            let elapsed = now.saturating_since(state.last_refill).as_micros();
            let refill = u128::from(elapsed) * u128::from(rate_micro)
                / u128::from(MICRO_TOKENS_PER_INVOCATION);
            let refill = u64::try_from(refill).unwrap_or(u64::MAX);
            state.micro_tokens = state.micro_tokens.saturating_add(refill).min(capacity);
            state.last_refill = now;
            if state.micro_tokens < MICRO_TOKENS_PER_INVOCATION {
                state.rejected_rate += 1;
                return AdmissionVerdict::RejectRate;
            }
        }
        while let Some(&Reverse(done)) = state.in_flight.peek() {
            if done <= now {
                state.in_flight.pop();
            } else {
                break;
            }
        }
        if quota > 0 && state.in_flight.len() as u64 >= quota {
            state.rejected_quota += 1;
            return AdmissionVerdict::RejectQuota;
        }
        if rate_limited {
            state.micro_tokens = state
                .micro_tokens
                .saturating_sub(MICRO_TOKENS_PER_INVOCATION);
        }
        AdmissionVerdict::Admit
    }

    /// Records that a judged-admitted invocation was actually served:
    /// occupies an in-flight slot until `completion` (the front door's
    /// predicted completion time).
    pub fn record_admission(&mut self, tenant: usize, completion: SimTime) {
        let state = &mut self.tenants[tenant];
        state.in_flight.push(Reverse(completion));
        state.admitted += 1;
        state.peak_in_flight = state.peak_in_flight.max(state.in_flight.len() as u64);
    }

    /// Per-tenant outcome rows in tenant order:
    /// `(offered, admitted, rejected_rate, rejected_quota, peak_in_flight)`.
    pub fn outcomes(&self) -> Vec<(u64, u64, u64, u64, u64)> {
        self.tenants
            .iter()
            .map(|t| {
                (
                    t.offered,
                    t.admitted,
                    t.rejected_rate,
                    t.rejected_quota,
                    t.peak_in_flight,
                )
            })
            .collect()
    }

    /// The highest in-flight occupancy `tenant` ever reached.
    pub fn peak_in_flight(&self, tenant: usize) -> u64 {
        self.tenants[tenant].peak_in_flight
    }
}

/// Rounds a non-negative f64 token amount to integer micro-tokens.
fn micro_tokens(value: f64) -> u64 {
    debug_assert!(value.is_finite() && value >= 0.0);
    if value >= u64::MAX as f64 {
        u64::MAX
    } else {
        // Narrowing is guarded: the value is finite, non-negative, and
        // below u64::MAX.
        value.round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nimblock_sim::SimDuration;

    fn at(millis: u64) -> SimTime {
        SimTime::from_millis(millis)
    }

    #[test]
    fn unlimited_policy_admits_everything() {
        let mut registry = TenantRegistry::new(2, TenantPolicy::default());
        for i in 0..1_000 {
            assert_eq!(registry.judge(i % 2, at(i as u64)), AdmissionVerdict::Admit);
            registry.record_admission(i % 2, at(i as u64 + 5));
        }
        let outcomes = registry.outcomes();
        assert_eq!(outcomes[0].0 + outcomes[1].0, 1_000);
        assert_eq!(outcomes[0].2 + outcomes[1].2, 0);
    }

    #[test]
    fn token_bucket_rejects_beyond_burst_then_refills() {
        let policy = TenantPolicy { rate_per_sec: 10.0, burst: 3, quota: 0 };
        let mut registry = TenantRegistry::new(1, policy);
        // Burst of 5 at t=0: exactly `burst` admitted.
        let mut admitted = 0;
        for _ in 0..5 {
            if registry.judge(0, SimTime::ZERO) == AdmissionVerdict::Admit {
                registry.record_admission(0, at(1));
                admitted += 1;
            }
        }
        assert_eq!(admitted, 3, "burst capacity caps the initial burst");
        // 100 ms later one token (10/s × 0.1 s) has refilled.
        assert_eq!(registry.judge(0, at(100)), AdmissionVerdict::Admit);
        registry.record_admission(0, at(101));
        assert_eq!(registry.judge(0, at(100)), AdmissionVerdict::RejectRate);
    }

    #[test]
    fn refill_is_exact_over_many_small_steps() {
        // 3 invocations/s refilled in 1 ms steps must admit exactly
        // 3 per second in the long run — integer micro-tokens don't drift.
        let policy = TenantPolicy { rate_per_sec: 3.0, burst: 1, quota: 0 };
        let mut registry = TenantRegistry::new(1, policy);
        let mut admitted = 0u64;
        let mut now = SimTime::ZERO;
        for _ in 0..10_000 {
            now += SimDuration::from_millis(1);
            if registry.judge(0, now) == AdmissionVerdict::Admit {
                registry.record_admission(0, now);
                admitted += 1;
            }
        }
        // 10 s at 3/s, plus the initially full 1-token bucket, minus the
        // one refill swallowed by the capacity cap while the bucket was
        // still full.
        assert_eq!(admitted, 30);
    }

    #[test]
    fn quota_caps_in_flight_and_releases_on_completion() {
        let policy = TenantPolicy { rate_per_sec: 0.0, burst: 1, quota: 2 };
        let mut registry = TenantRegistry::new(1, policy);
        assert_eq!(registry.judge(0, at(0)), AdmissionVerdict::Admit);
        registry.record_admission(0, at(500));
        assert_eq!(registry.judge(0, at(1)), AdmissionVerdict::Admit);
        registry.record_admission(0, at(600));
        assert_eq!(
            registry.judge(0, at(2)),
            AdmissionVerdict::RejectQuota,
            "third concurrent invocation exceeds the quota"
        );
        // After the first completes, a slot frees up.
        assert_eq!(registry.judge(0, at(501)), AdmissionVerdict::Admit);
        registry.record_admission(0, at(900));
        assert_eq!(registry.peak_in_flight(0), 2);
    }

    #[test]
    fn tenants_are_isolated() {
        let policy = TenantPolicy { rate_per_sec: 1.0, burst: 1, quota: 1 };
        let mut registry = TenantRegistry::new(2, policy);
        assert_eq!(registry.judge(0, at(0)), AdmissionVerdict::Admit);
        registry.record_admission(0, at(10_000));
        // Tenant 0 is now both out of tokens and at quota; tenant 1 is
        // untouched.
        assert_eq!(registry.judge(0, at(1)), AdmissionVerdict::RejectRate);
        assert_eq!(registry.judge(1, at(1)), AdmissionVerdict::Admit);
    }

    #[test]
    fn admission_debits_at_judge_time() {
        let policy = TenantPolicy { rate_per_sec: 5.0, burst: 1, quota: 0 };
        let mut registry = TenantRegistry::new(1, policy);
        // Tokens are spent the moment the request is accepted — even if
        // the cluster later sheds it and record_admission never runs.
        assert_eq!(registry.judge(0, at(0)), AdmissionVerdict::Admit);
        assert_eq!(registry.judge(0, at(0)), AdmissionVerdict::RejectRate);
    }

    #[test]
    #[should_panic(expected = "at least one tenant")]
    fn zero_tenants_is_rejected() {
        let _ = TenantRegistry::new(0, TenantPolicy::default());
    }
}
