//! Open-loop invocation workloads.

use nimblock_prng::Prng;

use nimblock_sim::{SimDuration, SimTime};

use crate::registry::FunctionRegistry;
use crate::FaasError;

/// One generated invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Invocation {
    pub(crate) function: String,
    pub(crate) items: u32,
    pub(crate) at: SimTime,
}

/// A seeded open-loop invocation stream.
///
/// Function popularity is Zipf-like (rank-weighted `1/rank`): a couple of
/// hot functions take most invocations and the tail stays cold — the
/// defining property of serverless traffic that makes the warm/cold
/// distinction matter. Inter-arrival gaps are uniform in
/// `[mean/2, 3·mean/2]`, payload sizes (batch items per invocation) uniform
/// in `1..=max_items`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvocationWorkload {
    seed: u64,
    invocations: usize,
    mean_gap: SimDuration,
    max_items: u32,
}

impl InvocationWorkload {
    /// Creates a workload with the given seed and defaults: 50 invocations,
    /// 200 ms mean gap, up to 8 items per invocation.
    pub fn new(seed: u64) -> Self {
        InvocationWorkload {
            seed,
            invocations: 50,
            mean_gap: SimDuration::from_millis(200),
            max_items: 8,
        }
    }

    /// Sets the number of invocations.
    pub fn invocations(mut self, invocations: usize) -> Self {
        self.invocations = invocations;
        self
    }

    /// Sets the mean inter-arrival gap in milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if `millis` is zero.
    pub fn mean_gap_millis(mut self, millis: u64) -> Self {
        assert!(millis > 0, "mean gap must be positive");
        self.mean_gap = SimDuration::from_millis(millis);
        self
    }

    /// Sets the maximum items per invocation.
    ///
    /// # Panics
    ///
    /// Panics if `max_items` is zero.
    pub fn max_items(mut self, max_items: u32) -> Self {
        assert!(max_items > 0, "invocations need at least one item");
        self.max_items = max_items;
        self
    }

    /// Generates the invocation stream against `registry`.
    ///
    /// # Errors
    ///
    /// Returns [`FaasError::EmptyRegistry`] when nothing is deployed.
    pub(crate) fn generate(
        &self,
        registry: &FunctionRegistry,
    ) -> Result<Vec<Invocation>, FaasError> {
        let names = registry.names();
        if names.is_empty() {
            return Err(FaasError::EmptyRegistry);
        }
        // Zipf-like weights by registry order: weight(rank) = 1 / (rank+1).
        let weights: Vec<f64> = (0..names.len()).map(|r| 1.0 / (r + 1) as f64).collect();
        let total: f64 = weights.iter().sum();

        let mut rng = Prng::seed_from_u64(self.seed);
        let mut now = SimTime::ZERO;
        let mut invocations = Vec::with_capacity(self.invocations);
        for _ in 0..self.invocations {
            let mut pick = rng.gen_range(0.0..total);
            let mut chosen = names.len() - 1;
            for (index, &w) in weights.iter().enumerate() {
                if pick < w {
                    chosen = index;
                    break;
                }
                pick -= w;
            }
            invocations.push(Invocation {
                function: names[chosen].to_owned(),
                items: rng.gen_range(1..=self.max_items),
                at: now,
            });
            let mean = self.mean_gap.as_micros();
            let gap = rng.gen_range(mean / 2..=mean + mean / 2);
            now += SimDuration::from_micros(gap);
        }
        Ok(invocations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn registry() -> FunctionRegistry {
        FunctionRegistry::benchmark_suite()
    }

    #[test]
    fn generation_is_deterministic() {
        let workload = InvocationWorkload::new(5).invocations(20);
        assert_eq!(
            workload.generate(&registry()).unwrap(),
            workload.generate(&registry()).unwrap()
        );
    }

    #[test]
    fn popularity_is_skewed_toward_low_ranks() {
        let workload = InvocationWorkload::new(11).invocations(600);
        let invocations = workload.generate(&registry()).unwrap();
        let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
        for inv in &invocations {
            *counts.entry(inv.function.as_str()).or_default() += 1;
        }
        let names = registry().names().into_iter().map(str::to_owned).collect::<Vec<_>>();
        let first = counts.get(names[0].as_str()).copied().unwrap_or(0);
        let last = counts.get(names.last().unwrap().as_str()).copied().unwrap_or(0);
        assert!(
            first > 3 * last,
            "rank-0 function ({first}) should dominate rank-5 ({last})"
        );
    }

    #[test]
    fn gaps_follow_the_mean() {
        let workload = InvocationWorkload::new(3).invocations(50).mean_gap_millis(100);
        let invocations = workload.generate(&registry()).unwrap();
        for pair in invocations.windows(2) {
            let gap = (pair[1].at - pair[0].at).as_millis();
            assert!((50..=150).contains(&gap), "gap {gap} outside [50, 150]");
        }
    }

    #[test]
    fn items_respect_the_cap() {
        let workload = InvocationWorkload::new(4).invocations(100).max_items(3);
        for inv in workload.generate(&registry()).unwrap() {
            assert!((1..=3).contains(&inv.items));
        }
    }

    #[test]
    fn empty_registry_is_an_error() {
        let workload = InvocationWorkload::new(1);
        assert_eq!(
            workload.generate(&FunctionRegistry::new()),
            Err(FaasError::EmptyRegistry)
        );
    }

    #[test]
    #[should_panic(expected = "mean gap must be positive")]
    fn zero_gap_panics() {
        let _ = InvocationWorkload::new(1).mean_gap_millis(0);
    }
}
