//! A serverless (Function-as-a-Service) layer over the virtualized FPGA.
//!
//! The paper argues that "FPGA-supported serverless computing would need to
//! rely on virtualizing FPGAs … combined with proper task scheduling and
//! resource allocation, FPGA virtualization will become an essential
//! enabler for serverless computing" (§1). This crate builds that layer on
//! top of `nimblock-core`:
//!
//! * [`FunctionRegistry`] — deployed functions: an application (its task
//!   graph and bitstreams) plus an SLO class,
//! * [`SloClass`] — Latency / Standard / Batch service classes, mapped to
//!   the hypervisor's priority levels and to deadline factors,
//! * [`InvocationWorkload`] — seeded open-loop invocation streams with
//!   Zipf-like function popularity (a few hot functions, a long cold tail),
//! * [`FaasGateway`] — turns invocations into hypervisor arrivals, runs a
//!   scheduler, and aggregates per-function statistics (including SLO
//!   attainment and cold-start effects through the shared bitstream cache),
//! * [`FrontDoor`] — the internet-scale serving layer in front of the
//!   gateway: streaming ingest over lazy arrival processes, per-tenant
//!   admission control ([`TenantRegistry`]), SLO-class load shedding wired
//!   to the 1/3/9 priority system, and cache-aware routing into the
//!   cluster dispatcher (DESIGN.md §17).
//!
//! # Example
//!
//! ```
//! use nimblock_core::NimblockScheduler;
//! use nimblock_faas::{FaasGateway, FunctionRegistry, InvocationWorkload, SloClass};
//!
//! let mut registry = FunctionRegistry::new();
//! registry.deploy("thumbnail", nimblock_app::benchmarks::image_compression(), SloClass::Latency)?;
//! registry.deploy("render", nimblock_app::benchmarks::rendering_3d(), SloClass::Standard)?;
//!
//! let workload = InvocationWorkload::new(7).invocations(30).mean_gap_millis(120);
//! let summary = FaasGateway::new(registry).run(&workload, NimblockScheduler::default());
//! assert_eq!(summary.total_invocations(), 30);
//! # Ok::<(), nimblock_faas::FaasError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod frontdoor;
mod gateway;
mod registry;
mod tenants;
mod workload;

pub use frontdoor::{
    verify_trace_functions, FrontDoor, FrontDoorConfig, FrontDoorReport, OfferedInvocation,
    TenantOutcome,
};
pub use gateway::{FaasGateway, FaasSummary, FunctionStats};
pub use registry::{FaasError, FunctionRegistry, SloClass};
pub use tenants::{AdmissionVerdict, TenantPolicy, TenantRegistry};
pub use workload::InvocationWorkload;
