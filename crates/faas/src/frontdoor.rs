//! The virtual-time serving front door: streaming ingest, admission
//! control, SLO-class load shedding, and cache-aware routing
//! (DESIGN.md §17).
//!
//! Where [`crate::FaasGateway`] replays a *materialized* invocation batch
//! through the exact hypervisor simulation, the front door is the layer in
//! front of that: an open-loop ingest pipeline that prices millions of
//! invocations in bounded memory. The pipeline per invocation:
//!
//! 1. **Generate** — a lazy [`ArrivalStream`] gap plus Zipf function
//!    popularity; nothing is ever materialized beyond one bounded chunk.
//! 2. **Admit** — the tenant's token bucket and in-flight quota
//!    ([`crate::TenantRegistry`]); rejections never reach the dispatcher.
//! 3. **Route** — a cluster [`Dispatcher`] decision (cache-aware by
//!    default), yielding the predicted queue wait and warm/cold-priced
//!    service cost.
//! 4. **Shed** — two guards wired to the 1/3/9 priority system: the
//!    class-weighted backlog horizon (a batch-class arrival sheds at 1×
//!    the horizon, standard at 3×, latency at 9×) and deadline
//!    infeasibility (predicted response exceeds the class deadline).
//!    Every shed is explained by a six-way attribution decomposition
//!    whose sum exceeds the allowed budget ([`ShedExplanation`]).
//! 5. **Serve** — admitted invocations are buffered per board and drained
//!    chunk-by-chunk through the worker pool: each board is an
//!    independent multi-slot server, so serving parallelizes across
//!    boards yet merges byte-identically in board-index order for every
//!    `--cluster-threads` value (the same plan → execute → merge
//!    contract as `ClusterTestbed`, DESIGN.md §12).
//!
//! Shedding is also what keeps the router's own state bounded: work is
//! only committed while the predicted backlog sits under the weighted
//! horizon, so the dispatcher's outstanding-estimate list can never grow
//! past `horizon × max_weight / min_service` entries, no matter how
//! overloaded the offered stream is.

use std::sync::Arc;

use nimblock_cluster::{pool, DispatchPolicy, Dispatcher};
use nimblock_metrics::{
    AttributionComponents, ClassAttainment, CurvePoint, ServingCounters, ShedExplanation,
    SloCurve,
};
use nimblock_obs::record::{TraceFunction, TraceHeader, TraceRecord, TraceVerdict, TraceWriter};
use nimblock_obs::{QuantileDigest, Registry};
use nimblock_prng::Prng;
use nimblock_ser::impl_json_struct;
use nimblock_sim::{SimDuration, SimTime};
use nimblock_workload::{ArrivalEvent, ArrivalProcess, ZipfSampler};

use crate::registry::FunctionRegistry;
use crate::tenants::{AdmissionVerdict, TenantPolicy, TenantRegistry};
use crate::SloClass;

/// Configuration of a front-door serving run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrontDoorConfig {
    /// Seed for the arrival stream and the function/tenant mix.
    pub seed: u64,
    /// Invocations to offer (streamed, never materialized).
    pub invocations: u64,
    /// The arrival process shaping the offered load.
    pub process: ArrivalProcess,
    /// Number of tenants sharing the cluster.
    pub tenants: usize,
    /// Per-tenant admission policy (rate limit, burst, quota).
    pub tenant_policy: TenantPolicy,
    /// Boards in the cluster.
    pub boards: usize,
    /// Reconfigurable slots per board (the paper's partition count).
    pub slots_per_board: usize,
    /// Worker threads for the per-board serving stage; `0` = auto. The
    /// report is byte-identical for every value.
    pub threads: usize,
    /// Board-selection policy for routing.
    pub policy: DispatchPolicy,
    /// Nominal partial-reconfiguration latency of the device model.
    pub reconfig: SimDuration,
    /// Batch items per invocation are drawn uniformly from `1..=max_items`.
    pub max_items: u32,
    /// Base backlog horizon for shedding; a class sheds when the predicted
    /// queue wait exceeds `horizon × priority_weight` (1/3/9).
    pub shed_horizon: SimDuration,
    /// Admitted invocations buffered before a serving flush — the memory
    /// bound of the ingest loop.
    pub chunk: usize,
}

/// One offered invocation: the output of the generation stage (arrival
/// instant, function index in sorted-name registry order, batch items,
/// tenant). Everything downstream — admission, routing, shedding,
/// serving — is a deterministic function of this sequence and the
/// configuration, which is what makes recorded traces exactly
/// replayable (DESIGN.md §18).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OfferedInvocation {
    /// Arrival instant.
    pub at: SimTime,
    /// Function index, in `FunctionRegistry::names()` (sorted) order.
    pub function: usize,
    /// Batch items of the invocation.
    pub items: u32,
    /// Offering tenant.
    pub tenant: usize,
}

impl FrontDoorConfig {
    /// A front door with steady 0.1/s arrivals (the paper's benchmark mix
    /// runs 0.4 s – 788 s per invocation, so cluster capacity is on the
    /// order of 0.1/s), four tenants with no limits, four boards of three
    /// slots, cache-aware routing, and a 10 s base shed horizon. Virtual
    /// arrival rates cost nothing in wall-clock time — only the ratio to
    /// service capacity matters.
    pub fn new(seed: u64) -> Self {
        FrontDoorConfig {
            seed,
            invocations: 100_000,
            process: ArrivalProcess::parse("steady:0.1").expect("default process parses"),
            tenants: 4,
            tenant_policy: TenantPolicy::default(),
            boards: 4,
            slots_per_board: 3,
            threads: 1,
            policy: DispatchPolicy::CacheAware,
            reconfig: SimDuration::from_millis(80),
            max_items: 4,
            shed_horizon: SimDuration::from_secs(10),
            chunk: 65_536,
        }
    }

    /// Rebuilds a configuration from a recorded trace header. The
    /// inverse of [`FrontDoor::trace_header`]: replaying the recorded
    /// invocations through the resulting config reproduces the recorded
    /// run's report byte-for-byte.
    pub fn from_trace_header(header: &TraceHeader) -> Result<Self, String> {
        let process = ArrivalProcess::parse(&header.process)
            .map_err(|e| format!("trace header arrival process: {e}"))?;
        let policy = DispatchPolicy::parse(&header.policy)
            .ok_or_else(|| format!("trace header has unknown policy '{}'", header.policy))?;
        if header.tenants == 0 || header.boards == 0 || header.slots_per_board == 0 {
            return Err("trace header has a degenerate fleet (zero tenants/boards/slots)".into());
        }
        if header.max_items == 0 || header.chunk == 0 {
            return Err("trace header has zero max_items or chunk".into());
        }
        Ok(FrontDoorConfig {
            seed: header.seed,
            invocations: header.invocations,
            process,
            tenants: header.tenants as usize,
            tenant_policy: TenantPolicy {
                rate_per_sec: header.tenant_rate_per_sec,
                burst: header.tenant_burst,
                quota: header.tenant_quota,
            },
            boards: header.boards as usize,
            slots_per_board: header.slots_per_board as usize,
            threads: header.threads as usize,
            policy,
            reconfig: SimDuration::from_micros(header.reconfig_micros),
            max_items: header.max_items as u32,
            shed_horizon: SimDuration::from_micros(header.shed_horizon_micros),
            chunk: header.chunk as usize,
        })
    }
}

/// Checks that `registry` deploys exactly the trace's function table —
/// same names, same order, same SLO classes — so recorded function
/// indices resolve to the apps they were recorded against.
pub fn verify_trace_functions(
    registry: &FunctionRegistry,
    header: &TraceHeader,
) -> Result<(), String> {
    let names = registry.names();
    if names.len() != header.functions.len() {
        return Err(format!(
            "trace deploys {} function(s), registry has {}",
            header.functions.len(),
            names.len()
        ));
    }
    for (name, function) in names.iter().zip(&header.functions) {
        if *name != function.name {
            return Err(format!(
                "trace function '{}' does not match deployed '{name}'",
                function.name
            ));
        }
        let slo = registry.slo(name).expect("names() lists deployed functions");
        if class_index(slo) as u8 != function.class {
            return Err(format!(
                "trace function '{name}' has class code {}, registry says {}",
                function.class,
                class_index(slo)
            ));
        }
    }
    Ok(())
}

/// Per-tenant outcome row of a front-door run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantOutcome {
    /// Tenant index.
    pub tenant: u64,
    /// Invocations the tenant offered.
    pub offered: u64,
    /// Invocations admitted and served.
    pub admitted: u64,
    /// Rejections by the token-bucket rate limit.
    pub rejected_rate: u64,
    /// Rejections by the in-flight quota.
    pub rejected_quota: u64,
    /// Highest concurrent in-flight occupancy the tenant reached — the
    /// quota property tests pin this at or under the quota.
    pub peak_in_flight: u64,
}

impl_json_struct!(TenantOutcome {
    tenant, offered, admitted, rejected_rate, rejected_quota, peak_in_flight,
});

/// Everything a front-door run reports. Serialized as the golden
/// fingerprint, so every field must be a deterministic function of the
/// configuration alone — never of thread scheduling.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontDoorReport {
    /// Seed the run was driven by.
    pub seed: u64,
    /// Load multiplier applied to the arrival process.
    pub load_factor: f64,
    /// Exact invocation accounting (conservation holds by construction
    /// and is re-checked by callers).
    pub counters: ServingCounters,
    /// Per-class admission/attainment/quantile rows, strictest class
    /// first.
    pub classes: Vec<ClassAttainment>,
    /// Per-class shed explanations (six-way attribution decompositions).
    pub shed_explanations: Vec<ShedExplanation>,
    /// Per-tenant outcomes.
    pub tenants: Vec<TenantOutcome>,
    /// Highest number of admitted invocations buffered at once — the
    /// observable memory bound (always `<=` the configured chunk).
    pub peak_buffered: u64,
    /// Virtual duration of the run, seconds (last arrival or last board
    /// finish, whichever is later).
    pub virtual_secs: f64,
    /// SLO-met invocations per virtual second.
    pub goodput_per_sec: f64,
    /// SLO attainment over admitted invocations (shedding protects this).
    pub attainment: f64,
    /// SLO attainment over *offered* invocations — the monotone axis of
    /// the load curve: sheds and rejections pull it down as load rises.
    pub offered_attainment: f64,
}

impl_json_struct!(FrontDoorReport {
    seed, load_factor, counters, classes, shed_explanations, tenants,
    peak_buffered, virtual_secs, goodput_per_sec, attainment,
    offered_attainment,
});

impl FrontDoorReport {
    /// `true` iff every offered invocation is accounted exactly once.
    pub fn conserves(&self) -> bool {
        self.counters.conserves()
    }

    /// `true` iff the run shed load *and* every shed is justified by its
    /// attribution decomposition — the alert the CI `faas` stage requires
    /// under deliberate overload.
    pub fn shed_alert(&self) -> bool {
        self.counters.shed() > 0 && self.shed_explanations.iter().all(ShedExplanation::explains)
    }

    /// Extracts the goodput/SLO-attainment curve point this report
    /// measures at `offered_rate_per_sec`.
    fn curve_point(&self, offered_rate_per_sec: f64) -> CurvePoint {
        CurvePoint {
            load_factor: self.load_factor,
            offered_rate_per_sec,
            counters: self.counters,
            goodput_per_sec: self.goodput_per_sec,
            attainment: self.attainment,
            offered_attainment: self.offered_attainment,
            classes: self.classes.clone(),
        }
    }
}

/// One admitted invocation waiting in the current serving chunk.
#[derive(Debug, Clone, Copy)]
struct ServeItem {
    arrival: SimTime,
    work: SimDuration,
    deadline: SimDuration,
    class_index: usize,
}

/// Per-class serving shard of one board.
struct ClassShard {
    admitted: u64,
    within_slo: u64,
    digest: QuantileDigest,
}

impl ClassShard {
    fn new() -> Self {
        ClassShard { admitted: 0, within_slo: 0, digest: QuantileDigest::detached() }
    }
}

/// One board's multi-slot server state, persisted across chunks.
struct BoardServer {
    slot_free: Vec<SimTime>,
    classes: Vec<ClassShard>,
    last_finish: SimTime,
}

impl BoardServer {
    fn new(slots: usize) -> Self {
        BoardServer {
            slot_free: vec![SimTime::ZERO; slots],
            classes: (0..SloClass::ALL.len()).map(|_| ClassShard::new()).collect(),
            last_finish: SimTime::ZERO,
        }
    }

    /// Serves one chunk of invocations in arrival order: each starts on
    /// the earliest-free slot.
    fn serve(&mut self, items: &[ServeItem]) {
        for item in items {
            let slot = self
                .slot_free
                .iter()
                .enumerate()
                .min_by_key(|(i, free)| (**free, *i))
                .map(|(i, _)| i)
                .expect("boards have at least one slot");
            let start = self.slot_free[slot].max(item.arrival);
            let finish = start + item.work;
            self.slot_free[slot] = finish;
            self.last_finish = self.last_finish.max(finish);
            let response = finish.saturating_since(item.arrival);
            let shard = &mut self.classes[item.class_index];
            shard.admitted += 1;
            if response <= item.deadline {
                shard.within_slo += 1;
            }
            shard.digest.observe(response.as_micros());
        }
    }
}

/// The serving front door: a function registry behind streaming ingest,
/// admission control, shedding, and cache-aware routing.
///
/// # Example
///
/// ```
/// use nimblock_faas::{FrontDoor, FrontDoorConfig, FunctionRegistry};
///
/// let mut config = FrontDoorConfig::new(7);
/// config.invocations = 5_000;
/// let report = FrontDoor::new(FunctionRegistry::benchmark_suite(), config).run();
/// assert!(report.conserves());
/// assert_eq!(report.counters.offered, 5_000);
/// ```
#[derive(Debug, Clone)]
pub struct FrontDoor {
    registry: FunctionRegistry,
    config: FrontDoorConfig,
    metrics: Option<Registry>,
}

impl FrontDoor {
    /// Creates a front door over `registry` with `config`.
    ///
    /// # Panics
    ///
    /// Panics if the registry is empty or the configuration is degenerate
    /// (zero tenants, boards, slots, items, or chunk).
    pub fn new(registry: FunctionRegistry, config: FrontDoorConfig) -> Self {
        assert!(!registry.is_empty(), "the front door needs deployed functions");
        assert!(config.slots_per_board > 0, "boards need at least one slot");
        assert!(config.max_items > 0, "invocations need at least one item");
        assert!(config.chunk > 0, "the serving chunk must hold at least one invocation");
        FrontDoor { registry, config, metrics: None }
    }

    /// Attaches an observability registry; each [`FrontDoor::run`] adds
    /// its admission counters and per-class response digests to it.
    pub fn with_metrics(mut self, registry: Registry) -> Self {
        self.metrics = Some(registry);
        self
    }

    /// Runs the configured serving pipeline at nominal load.
    pub fn run(&self) -> FrontDoorReport {
        self.run_at_load(1.0)
    }

    /// Runs the pipeline with the arrival rate scaled by `load_factor`.
    pub fn run_at_load(&self, load_factor: f64) -> FrontDoorReport {
        self.serve(load_factor, self.generated(load_factor), None)
    }

    /// Runs the pipeline while recording every offered invocation into a
    /// compact trace (DESIGN.md §18). Returns the report and the finished
    /// trace bytes; the trace embeds the report's JSON, so `analyze plan`
    /// can later require its exact replay to be byte-identical.
    pub fn run_recorded(&self, load_factor: f64) -> (FrontDoorReport, Vec<u8>) {
        let mut writer = TraceWriter::new(&self.trace_header(load_factor));
        let report = self.serve(load_factor, self.generated(load_factor), Some(&mut writer));
        let json = nimblock_ser::to_string_pretty(&report);
        (report, writer.finish(Some(&json)))
    }

    /// Replays an explicit offered sequence (typically decoded from a
    /// recorded trace) through this front door's configuration. With the
    /// recorded configuration the result is byte-identical to the
    /// recorded run; with a counterfactual configuration (different
    /// fleet, policy, or reconfiguration latency) it answers "what would
    /// that day have looked like on this cluster".
    pub fn replay(
        &self,
        load_factor: f64,
        offered: impl Iterator<Item = OfferedInvocation>,
    ) -> FrontDoorReport {
        self.serve(load_factor, offered, None)
    }

    /// The trace header describing this front door's configuration and
    /// function table.
    pub fn trace_header(&self, load_factor: f64) -> TraceHeader {
        let config = &self.config;
        TraceHeader {
            kind: nimblock_obs::record::KIND_SERVING,
            seed: config.seed,
            load_factor,
            invocations: config.invocations,
            process: config.process.spec(),
            tenants: config.tenants as u64,
            tenant_rate_per_sec: config.tenant_policy.rate_per_sec,
            tenant_burst: config.tenant_policy.burst,
            tenant_quota: config.tenant_policy.quota,
            boards: config.boards as u64,
            slots_per_board: config.slots_per_board as u64,
            threads: config.threads as u64,
            policy: config.policy.name().to_owned(),
            reconfig_micros: config.reconfig.as_micros(),
            max_items: u64::from(config.max_items),
            shed_horizon_micros: config.shed_horizon.as_micros(),
            chunk: config.chunk as u64,
            functions: self
                .registry
                .names()
                .iter()
                .map(|name| TraceFunction {
                    name: (*name).to_owned(),
                    class: class_index(
                        self.registry.slo(name).expect("names() lists deployed functions"),
                    ) as u8,
                })
                .collect(),
        }
    }

    /// The generation stage as a lazy iterator: arrival-stream gaps, Zipf
    /// function popularity, uniform batch items and tenants. O(1) state.
    fn generated(&self, load_factor: f64) -> impl Iterator<Item = OfferedInvocation> {
        let config = self.config;
        let sampler = ZipfSampler::new(self.registry.len(), 1.0);
        let mut stream = config.process.stream(config.seed, load_factor);
        let mut rng = Prng::seed_from_u64(config.seed ^ 0xFAA5_C0DE);
        let mut now = SimTime::ZERO;
        (0..config.invocations).map(move |_| {
            now += stream.next_gap();
            let function = sampler.sample(&mut rng);
            let items = rng.gen_range(1..=config.max_items);
            let tenant = rng.gen_range(0..config.tenants);
            OfferedInvocation { at: now, function, items, tenant }
        })
    }

    /// The shared serving loop behind [`FrontDoor::run_at_load`],
    /// [`FrontDoor::run_recorded`], and [`FrontDoor::replay`]: admission,
    /// routing, shedding, and chunked board serving over any offered
    /// sequence. One code path, so recorded traces replay through exactly
    /// the logic that produced them.
    fn serve(
        &self,
        load_factor: f64,
        offered: impl Iterator<Item = OfferedInvocation>,
        mut recorder: Option<&mut TraceWriter>,
    ) -> FrontDoorReport {
        let config = &self.config;
        let functions: Vec<(Arc<nimblock_app::AppSpec>, SloClass)> = self
            .registry
            .names()
            .iter()
            .map(|name| {
                let function = self
                    .registry
                    .get(name)
                    .expect("names() lists deployed functions");
                (Arc::clone(&function.app), function.slo)
            })
            .collect();
        let mut dispatcher = Dispatcher::new(config.policy, config.boards, config.reconfig);
        let mut tenants = TenantRegistry::new(config.tenants, config.tenant_policy);
        let mut counters = ServingCounters::default();
        let mut class_shed = vec![0u64; SloClass::ALL.len()];
        let mut explanations: Vec<ShedExplanation> = SloClass::ALL
            .iter()
            .map(|class| ShedExplanation {
                class_name: class.name().to_string(),
                ..ShedExplanation::default()
            })
            .collect();
        let mut boards: Vec<BoardServer> = (0..config.boards)
            .map(|_| BoardServer::new(config.slots_per_board))
            .collect();
        let mut chunks: Vec<Vec<ServeItem>> = (0..config.boards).map(|_| Vec::new()).collect();
        let mut buffered = 0usize;
        let mut peak_buffered = 0usize;
        let threads = pool::resolve_threads(config.threads);

        let mut now = SimTime::ZERO;
        for invocation in offered {
            now = invocation.at;
            let OfferedInvocation { function: function_index, items, tenant, .. } = invocation;
            counters.offered += 1;
            match tenants.judge(tenant, now) {
                verdict @ (AdmissionVerdict::RejectRate | AdmissionVerdict::RejectQuota) => {
                    if verdict == AdmissionVerdict::RejectRate {
                        counters.rejected_rate += 1;
                    } else {
                        counters.rejected_quota += 1;
                    }
                    if let Some(writer) = recorder.as_deref_mut() {
                        writer.push(&TraceRecord {
                            arrival_micros: now.as_micros(),
                            function: function_index as u32,
                            items,
                            tenant: tenant as u32,
                            verdict: if verdict == AdmissionVerdict::RejectRate {
                                TraceVerdict::RejectRate
                            } else {
                                TraceVerdict::RejectQuota
                            },
                            ..TraceRecord::default()
                        });
                    }
                    continue;
                }
                AdmissionVerdict::Admit => {}
            }
            let (app, slo) = &functions[function_index];
            let class_index = class_index(*slo);
            let event = ArrivalEvent::new(Arc::clone(app), items, slo.priority(), now);
            let decision = dispatcher.decide(&event);
            let predicted = decision.queue_wait + decision.work;
            let cold_latency = app.single_slot_latency(items, config.reconfig);
            let deadline =
                SimDuration::from_secs_f64(slo.deadline_factor() * cold_latency.as_secs_f64());
            let horizon = config
                .shed_horizon
                .saturating_mul(u64::from(slo.priority().weight()));
            let over_backlog = decision.queue_wait > horizon;
            let over_deadline = predicted > deadline;
            if over_backlog || over_deadline {
                let reconfig_part = if decision.warm {
                    SimDuration::ZERO
                } else {
                    cold_latency - app.single_slot_latency(items, SimDuration::ZERO)
                };
                // The backlog guard is checked first: it is the coarse
                // class-weighted gate, and its budget (the weighted
                // horizon) is what the shed exceeded.
                let (budget, reason_counter) = if over_backlog {
                    (horizon, &mut counters.shed_backlog)
                } else {
                    (deadline, &mut counters.shed_deadline)
                };
                *reason_counter += 1;
                class_shed[class_index] += 1;
                explanations[class_index] = std::mem::take(&mut explanations[class_index])
                    .merged(ShedExplanation {
                        class_name: slo.name().to_string(),
                        sheds: 1,
                        components: AttributionComponents {
                            queue_wait: decision.queue_wait.as_micros(),
                            reconfig: reconfig_part.as_micros(),
                            compute: decision.work.as_micros() - reconfig_part.as_micros(),
                            ..AttributionComponents::default()
                        },
                        budget_micros: budget.as_micros(),
                    });
                if let Some(writer) = recorder.as_deref_mut() {
                    writer.push(&TraceRecord {
                        arrival_micros: now.as_micros(),
                        function: function_index as u32,
                        items,
                        tenant: tenant as u32,
                        verdict: if over_backlog {
                            TraceVerdict::ShedBacklog
                        } else {
                            TraceVerdict::ShedDeadline
                        },
                        warm: decision.warm,
                        queue_wait_micros: decision.queue_wait.as_micros(),
                        work_micros: decision.work.as_micros(),
                        reconfig_micros: reconfig_part.as_micros(),
                        ..TraceRecord::default()
                    });
                }
                continue;
            }
            dispatcher.commit(&event, &decision);
            tenants.record_admission(tenant, now + predicted);
            counters.admitted += 1;
            if let Some(writer) = recorder.as_deref_mut() {
                writer.push(&TraceRecord {
                    arrival_micros: now.as_micros(),
                    function: function_index as u32,
                    items,
                    tenant: tenant as u32,
                    verdict: TraceVerdict::Admit,
                    warm: decision.warm,
                    board: decision.board as u32,
                    queue_wait_micros: decision.queue_wait.as_micros(),
                    work_micros: decision.work.as_micros(),
                    ..TraceRecord::default()
                });
            }
            chunks[decision.board].push(ServeItem {
                arrival: now,
                work: decision.work,
                deadline,
                class_index,
            });
            buffered += 1;
            peak_buffered = peak_buffered.max(buffered);
            if buffered >= config.chunk {
                flush(&mut boards, &mut chunks, threads);
                buffered = 0;
            }
        }
        if buffered > 0 {
            flush(&mut boards, &mut chunks, threads);
        }

        debug_assert!(counters.conserves(), "conservation is structural");
        self.assemble_report(load_factor, counters, class_shed, explanations, boards, tenants, peak_buffered, now)
    }

    /// Sweeps the load multipliers (ascending) and measures one curve
    /// point per factor, all from the same seed.
    pub fn run_curve(&self, load_factors: &[f64]) -> SloCurve {
        SloCurve {
            points: load_factors
                .iter()
                .map(|&factor| {
                    self.run_at_load(factor)
                        .curve_point(self.config.process.rate_per_sec() * factor)
                })
                .collect(),
        }
    }

    /// Folds router and server state into the final report and exports
    /// metrics when a registry is attached.
    #[allow(clippy::too_many_arguments)]
    fn assemble_report(
        &self,
        load_factor: f64,
        counters: ServingCounters,
        class_shed: Vec<u64>,
        explanations: Vec<ShedExplanation>,
        boards: Vec<BoardServer>,
        tenants: TenantRegistry,
        peak_buffered: usize,
        last_arrival: SimTime,
    ) -> FrontDoorReport {
        // Merge per-board shards in board-index order (DESIGN.md §12).
        let mut classes = Vec::with_capacity(SloClass::ALL.len());
        let mut total_within = 0u64;
        let mut total_admitted = 0u64;
        let mut virtual_end = last_arrival;
        for board in &boards {
            virtual_end = virtual_end.max(board.last_finish);
        }
        for (index, class) in SloClass::ALL.iter().enumerate() {
            let digest = QuantileDigest::detached();
            let mut admitted = 0u64;
            let mut within = 0u64;
            for board in &boards {
                let shard = &board.classes[index];
                admitted += shard.admitted;
                within += shard.within_slo;
                digest.merge_from(&shard.digest);
            }
            total_admitted += admitted;
            total_within += within;
            if let Some(registry) = &self.metrics {
                registry
                    .digest(
                        &format!("faas_response_micros_{}", class.name()),
                        "Front-door response times by SLO class",
                    )
                    .merge_from(&digest);
            }
            classes.push(ClassAttainment {
                class_name: class.name().to_string(),
                admitted,
                within_slo: within,
                shed: class_shed[index],
                p50_response_micros: digest.quantile(0.50),
                p95_response_micros: digest.quantile(0.95),
                p99_response_micros: digest.quantile(0.99),
            });
        }
        if let Some(registry) = &self.metrics {
            for (name, help, value) in [
                ("faas_offered_total", "Invocations offered to the front door", counters.offered),
                ("faas_admitted_total", "Invocations admitted and served", counters.admitted),
                ("faas_shed_backlog_total", "Sheds by the weighted backlog horizon", counters.shed_backlog),
                ("faas_shed_deadline_total", "Sheds by deadline infeasibility", counters.shed_deadline),
                ("faas_rejected_rate_total", "Tenant rate-limit rejections", counters.rejected_rate),
                ("faas_rejected_quota_total", "Tenant quota rejections", counters.rejected_quota),
            ] {
                registry.counter(name, help).add(value);
            }
        }
        let virtual_secs = virtual_end.as_secs_f64();
        let attainment = if total_admitted == 0 {
            1.0
        } else {
            total_within as f64 / total_admitted as f64
        };
        let offered_attainment = if counters.offered == 0 {
            1.0
        } else {
            total_within as f64 / counters.offered as f64
        };
        let goodput_per_sec = if virtual_secs > 0.0 {
            total_within as f64 / virtual_secs
        } else {
            0.0
        };
        FrontDoorReport {
            seed: self.config.seed,
            load_factor,
            counters,
            classes,
            shed_explanations: explanations,
            tenants: tenants
                .outcomes()
                .into_iter()
                .enumerate()
                .map(|(index, (offered, admitted, rejected_rate, rejected_quota, peak))| {
                    TenantOutcome {
                        tenant: index as u64,
                        offered,
                        admitted,
                        rejected_rate,
                        rejected_quota,
                        peak_in_flight: peak,
                    }
                })
                .collect(),
            peak_buffered: peak_buffered as u64,
            virtual_secs,
            goodput_per_sec,
            attainment,
            offered_attainment,
        }
    }
}

/// Index of a class in [`SloClass::ALL`] order.
fn class_index(class: SloClass) -> usize {
    match class {
        SloClass::Latency => 0,
        SloClass::Standard => 1,
        SloClass::Batch => 2,
    }
}

/// Drains every board's chunk through the worker pool and stores the
/// updated server states back in board-index order.
fn flush(boards: &mut Vec<BoardServer>, chunks: &mut [Vec<ServeItem>], threads: usize) {
    let jobs: Vec<_> = std::mem::take(boards)
        .into_iter()
        .zip(chunks.iter_mut().map(std::mem::take))
        .map(|(mut board, items)| {
            move || {
                board.serve(&items);
                board
            }
        })
        .collect();
    *boards = pool::run_indexed(threads, jobs);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn overload_config(seed: u64) -> FrontDoorConfig {
        let mut config = FrontDoorConfig::new(seed);
        config.invocations = 20_000;
        config.process = ArrivalProcess::parse("bursty:2000").expect("parses");
        config.shed_horizon = SimDuration::from_millis(200);
        config.tenant_policy = TenantPolicy { rate_per_sec: 300.0, burst: 32, quota: 64 };
        config
    }

    /// Roughly half the cluster's capacity: most invocations are admitted
    /// and actually flow through the per-board serving stage.
    fn moderate_config(seed: u64) -> FrontDoorConfig {
        let mut config = FrontDoorConfig::new(seed);
        config.invocations = 20_000;
        config.process = ArrivalProcess::parse("steady:0.05").expect("parses");
        config.shed_horizon = SimDuration::from_secs(60);
        config
    }

    #[test]
    fn conservation_holds_under_overload() {
        let report =
            FrontDoor::new(FunctionRegistry::benchmark_suite(), overload_config(11)).run();
        assert!(report.conserves());
        assert_eq!(report.counters.offered, 20_000);
        assert!(report.counters.shed() > 0, "overload must shed");
        assert!(report.counters.rejected() > 0, "rate limit must reject");
        assert!(report.shed_alert());
    }

    #[test]
    fn every_shed_is_explained() {
        let report =
            FrontDoor::new(FunctionRegistry::benchmark_suite(), overload_config(13)).run();
        let explained: u64 = report.shed_explanations.iter().map(|e| e.sheds).sum();
        assert_eq!(explained, report.counters.shed());
        for explanation in &report.shed_explanations {
            assert!(explanation.explains(), "{}", explanation.class_name);
        }
    }

    #[test]
    fn reports_are_byte_identical_across_threads() {
        let make = |threads| {
            let mut config = moderate_config(17);
            config.chunk = 256; // force many flush cycles through the pool
            config.threads = threads;
            FrontDoor::new(FunctionRegistry::benchmark_suite(), config).run()
        };
        let oracle = nimblock_ser::to_string_pretty(&make(1));
        for threads in [2, 4, 8] {
            assert_eq!(
                oracle,
                nimblock_ser::to_string_pretty(&make(threads)),
                "threads={threads} must merge byte-identically"
            );
        }
    }

    #[test]
    fn memory_stays_bounded_by_the_chunk() {
        let mut config = moderate_config(19);
        config.chunk = 512;
        let report = FrontDoor::new(FunctionRegistry::benchmark_suite(), config).run();
        assert!(report.peak_buffered <= 512, "peak {}", report.peak_buffered);
        assert!(report.counters.admitted > 512, "chunking must actually cycle");
    }

    #[test]
    fn backlog_budgets_follow_the_139_weights() {
        // A horizon tight enough that the backlog gate fires long before
        // any deadline does: every shed is a backlog shed, and each one
        // contributes exactly `horizon × priority_weight` to its class's
        // budget — 9× for latency, 3× for standard, 1× for batch.
        let mut config = overload_config(11);
        config.shed_horizon = SimDuration::from_millis(30);
        let report = FrontDoor::new(FunctionRegistry::benchmark_suite(), config).run();
        assert_eq!(report.counters.shed_deadline, 0, "backlog gate must dominate");
        assert!(report.counters.shed_backlog > 0);
        for (explanation, weight) in report.shed_explanations.iter().zip([9u64, 3, 1]) {
            assert_eq!(
                explanation.budget_micros,
                explanation.sheds * 30_000 * weight,
                "{} budget must be sheds × horizon × weight",
                explanation.class_name
            );
        }
    }

    #[test]
    fn shed_guards_follow_their_knobs() {
        // A huge horizon disables the backlog gate entirely; deadline
        // infeasibility becomes the only shed reason.
        let mut loose = overload_config(11);
        loose.shed_horizon = SimDuration::from_secs(100_000);
        let report = FrontDoor::new(FunctionRegistry::benchmark_suite(), loose).run();
        assert_eq!(report.counters.shed_backlog, 0);
        assert!(report.counters.shed_deadline > 0);
        assert!(report.conserves());
    }

    #[test]
    fn quotas_are_never_exceeded() {
        let mut config = overload_config(29);
        config.tenant_policy = TenantPolicy { rate_per_sec: 0.0, burst: 1, quota: 2 };
        let report = FrontDoor::new(FunctionRegistry::benchmark_suite(), config).run();
        for tenant in &report.tenants {
            assert!(
                tenant.peak_in_flight <= 2,
                "tenant {} peaked at {}",
                tenant.tenant,
                tenant.peak_in_flight
            );
        }
        assert!(report.counters.rejected_quota > 0);
    }

    #[test]
    fn curve_attainment_degrades_with_load() {
        let mut config = FrontDoorConfig::new(31);
        config.invocations = 8_000;
        config.process = ArrivalProcess::parse("steady:0.05").expect("parses");
        config.shed_horizon = SimDuration::from_secs(60);
        let door = FrontDoor::new(FunctionRegistry::benchmark_suite(), config);
        let curve = door.run_curve(&[0.25, 1.0, 4.0, 16.0]);
        assert_eq!(curve.points.len(), 4);
        assert!(
            curve.attainment_monotone(0.02),
            "offered attainment must not rise with load: {:?}",
            curve
                .points
                .iter()
                .map(|p| p.offered_attainment)
                .collect::<Vec<_>>()
        );
        let first = &curve.points[0];
        let last = &curve.points[curve.points.len() - 1];
        assert!(
            first.offered_attainment > last.offered_attainment,
            "load must hurt offered attainment ({} vs {})",
            first.offered_attainment,
            last.offered_attainment
        );
        for point in &curve.points {
            assert!(point.counters.conserves());
        }
    }

    #[test]
    fn metrics_registry_receives_counters_and_digests() {
        let registry = Registry::new();
        let mut config = overload_config(37);
        config.invocations = 5_000;
        let report = FrontDoor::new(FunctionRegistry::benchmark_suite(), config)
            .with_metrics(registry.clone())
            .run();
        let text = registry.render_prometheus();
        nimblock_obs::validate_prometheus(&text).expect("exposition stays valid");
        assert!(text.contains("faas_offered_total"));
        assert!(text.contains(&format!("faas_offered_total {}", report.counters.offered)));
        assert!(text.contains("faas_response_micros_latency"));
    }

    #[test]
    fn report_round_trips_json() {
        let mut config = overload_config(41);
        config.invocations = 2_000;
        let report = FrontDoor::new(FunctionRegistry::benchmark_suite(), config).run();
        let json = nimblock_ser::to_string_pretty(&report);
        let back: FrontDoorReport = nimblock_ser::from_str(&json).expect("round-trips");
        assert_eq!(back, report);
    }

    #[test]
    #[should_panic(expected = "deployed functions")]
    fn empty_registry_is_rejected() {
        let _ = FrontDoor::new(FunctionRegistry::new(), FrontDoorConfig::new(1));
    }

    #[test]
    fn recording_changes_nothing_and_replay_is_byte_identical() {
        let mut config = overload_config(43);
        config.invocations = 5_000;
        let door = FrontDoor::new(FunctionRegistry::benchmark_suite(), config);
        let plain = door.run();
        let (recorded, bytes) = door.run_recorded(1.0);
        assert_eq!(
            nimblock_ser::to_string_pretty(&plain),
            nimblock_ser::to_string_pretty(&recorded),
            "recording must not perturb the run"
        );
        let reader = nimblock_obs::TraceReader::parse(&bytes).expect("trace parses");
        assert_eq!(reader.summary().records, 5_000);
        assert_eq!(reader.summary().admitted, recorded.counters.admitted);
        assert_eq!(
            reader.report_json(),
            Some(nimblock_ser::to_string_pretty(&recorded).as_str())
        );
        // Replaying the recorded arrivals through the recorded config
        // reproduces the report byte-for-byte.
        let header = reader.header();
        let replay_config =
            FrontDoorConfig::from_trace_header(header).expect("header converts");
        assert_eq!(replay_config, config);
        verify_trace_functions(&FunctionRegistry::benchmark_suite(), header)
            .expect("benchmark suite matches its own trace");
        let offered = reader.records().map(|record| {
            let record = record.expect("records decode");
            OfferedInvocation {
                at: SimTime::from_micros(record.arrival_micros),
                function: record.function as usize,
                items: record.items,
                tenant: record.tenant as usize,
            }
        });
        let replayed = FrontDoor::new(FunctionRegistry::benchmark_suite(), replay_config)
            .replay(header.load_factor, offered);
        assert_eq!(
            nimblock_ser::to_string_pretty(&replayed),
            nimblock_ser::to_string_pretty(&recorded),
            "exact replay must be byte-identical"
        );
    }

    #[test]
    fn counterfactual_replay_changes_capacity_not_traffic() {
        let mut config = overload_config(47);
        config.invocations = 4_000;
        let door = FrontDoor::new(FunctionRegistry::benchmark_suite(), config);
        let (_, bytes) = door.run_recorded(1.0);
        let reader = nimblock_obs::TraceReader::parse(&bytes).expect("parses");
        let offered: Vec<OfferedInvocation> = reader
            .records()
            .map(|record| {
                let record = record.expect("decodes");
                OfferedInvocation {
                    at: SimTime::from_micros(record.arrival_micros),
                    function: record.function as usize,
                    items: record.items,
                    tenant: record.tenant as usize,
                }
            })
            .collect();
        let mut bigger = FrontDoorConfig::from_trace_header(reader.header()).expect("converts");
        bigger.boards *= 4;
        let base = FrontDoor::new(FunctionRegistry::benchmark_suite(), config)
            .replay(1.0, offered.iter().copied());
        let scaled = FrontDoor::new(FunctionRegistry::benchmark_suite(), bigger)
            .replay(1.0, offered.iter().copied());
        assert_eq!(scaled.counters.offered, base.counters.offered, "same traffic");
        assert!(
            scaled.counters.shed() <= base.counters.shed(),
            "4x the boards must not shed more ({} vs {})",
            scaled.counters.shed(),
            base.counters.shed()
        );
    }
}
