//! The gateway: invocations in, per-function statistics out.

use std::collections::BTreeMap;

use nimblock_core::{Scheduler, Testbed};
use nimblock_metrics::{percentile, AttributionComponents, AttributionSummary, Report};
use nimblock_sim::SimDuration;
use nimblock_workload::{ArrivalEvent, EventSequence};

use crate::registry::FunctionRegistry;
use crate::{FaasError, InvocationWorkload, SloClass};

/// Statistics for one deployed function after a run.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionStats {
    /// Function name.
    pub function: String,
    /// Service class it is deployed under.
    pub slo: SloClass,
    /// Number of invocations served.
    pub invocations: usize,
    /// Mean end-to-end latency in seconds (arrival to retirement).
    pub mean_latency_secs: f64,
    /// 95th-percentile latency in seconds.
    pub p95_latency_secs: f64,
    /// Fraction of invocations that met the class's deadline
    /// (`deadline_factor × single-slot latency`).
    pub slo_attainment: f64,
}

/// The aggregated result of one FaaS run.
#[derive(Debug, Clone, PartialEq)]
pub struct FaasSummary {
    scheduler: String,
    per_function: Vec<FunctionStats>,
    report: Report,
    /// Attribution components aggregated per function, sorted by function
    /// name; empty unless the gateway ran with
    /// [`FaasGateway::with_attribution`].
    attribution_by_function: Vec<(String, AttributionComponents)>,
    /// The monitoring document, when the gateway ran with
    /// [`FaasGateway::with_monitor`].
    monitor: Option<nimblock_obs::MonitorDoc>,
}

impl FaasSummary {
    /// Returns the scheduler that served the invocations.
    pub fn scheduler(&self) -> &str {
        &self.scheduler
    }

    /// Returns per-function statistics, sorted by function name.
    pub fn per_function(&self) -> &[FunctionStats] {
        &self.per_function
    }

    /// Returns the statistics of one function, if it was invoked.
    pub fn function(&self, name: &str) -> Option<&FunctionStats> {
        self.per_function.iter().find(|f| f.function == name)
    }

    /// Returns the underlying hypervisor report.
    pub fn report(&self) -> &Report {
        &self.report
    }

    /// Returns the total number of invocations served.
    pub fn total_invocations(&self) -> usize {
        self.per_function.iter().map(|f| f.invocations).sum()
    }

    /// Returns the whole-run response-time attribution, when the gateway
    /// ran with [`FaasGateway::with_attribution`].
    pub fn attribution(&self) -> Option<&AttributionSummary> {
        self.report.attribution()
    }

    /// Returns attribution components aggregated per function (sorted by
    /// function name); empty unless the gateway ran with
    /// [`FaasGateway::with_attribution`].
    pub fn attribution_by_function(&self) -> &[(String, AttributionComponents)] {
        &self.attribution_by_function
    }

    /// Returns the continuous-monitoring document (windowed series,
    /// alerts, flight recorder), when the gateway ran with
    /// [`FaasGateway::with_monitor`].
    pub fn monitor(&self) -> Option<&nimblock_obs::MonitorDoc> {
        self.monitor.as_ref()
    }

    /// Returns the overall SLO attainment across all invocations.
    pub fn overall_attainment(&self) -> f64 {
        let total = self.total_invocations();
        if total == 0 {
            return 1.0;
        }
        self.per_function
            .iter()
            .map(|f| f.slo_attainment * f.invocations as f64)
            .sum::<f64>()
            / total as f64
    }
}

/// Serves invocation workloads over a virtualized FPGA.
#[derive(Debug, Clone)]
pub struct FaasGateway {
    registry: FunctionRegistry,
    reconfig: SimDuration,
    metrics: Option<nimblock_obs::Registry>,
    monitor: Option<nimblock_obs::MonitorConfig>,
    attribution: bool,
}

impl FaasGateway {
    /// Creates a gateway over `registry` on the default ZCU106 overlay.
    pub fn new(registry: FunctionRegistry) -> Self {
        FaasGateway {
            registry,
            reconfig: SimDuration::from_millis(80),
            metrics: None,
            monitor: None,
            attribution: false,
        }
    }

    /// Attaches a continuous monitor: tumbling-window time-series, flight
    /// recorder, and `config`'s SLO rules, evaluated in virtual time. The
    /// document lands in [`FaasSummary::monitor`]; cluster runs merge
    /// per-board series in board order before evaluating the rules.
    pub fn with_monitor(mut self, config: nimblock_obs::MonitorConfig) -> Self {
        self.monitor = Some(config);
        self
    }

    /// Enables response-time attribution: the run is traced and the
    /// summary carries the six-component decomposition for every
    /// invocation ([`FaasSummary::attribution`]) plus per-function
    /// aggregates ([`FaasSummary::attribution_by_function`]). Tracing
    /// never perturbs the schedule; it only costs memory.
    pub fn with_attribution(mut self) -> Self {
        self.attribution = true;
        self
    }

    /// Publishes gateway telemetry in `metrics`: the `faas_*` series
    /// (invocations, SLO hits and misses, end-to-end latency histogram)
    /// plus the underlying testbed's `hv_*`/`sched_*`/`sim_*` series.
    pub fn with_metrics(mut self, metrics: nimblock_obs::Registry) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Returns the registry.
    pub fn registry(&self) -> &FunctionRegistry {
        &self.registry
    }

    /// Converts a workload into the hypervisor's arrival-event stimulus.
    ///
    /// # Errors
    ///
    /// Returns [`FaasError::EmptyRegistry`] or
    /// [`FaasError::UnknownFunction`] for malformed workloads.
    pub fn stimulus(&self, workload: &InvocationWorkload) -> Result<EventSequence, FaasError> {
        let invocations = workload.generate(&self.registry)?;
        let mut events = Vec::with_capacity(invocations.len());
        for invocation in &invocations {
            let function = self.registry.get(&invocation.function)?;
            events.push(ArrivalEvent::new(
                std::sync::Arc::clone(&function.app),
                invocation.items,
                function.slo.priority(),
                invocation.at,
            ));
        }
        Ok(EventSequence::new(events))
    }

    /// Runs `workload` under `scheduler` and aggregates per-function
    /// statistics.
    ///
    /// # Panics
    ///
    /// Panics on an empty registry or unknown functions (construct
    /// workloads through this gateway's registry) and propagates testbed
    /// panics (livelocked schedulers).
    pub fn run(&self, workload: &InvocationWorkload, scheduler: impl Scheduler) -> FaasSummary {
        let invocations = workload
            .generate(&self.registry)
            .expect("workload generation against this registry");
        let events = self
            .stimulus(workload)
            .expect("stimulus generation against this registry");
        let scheduler_name = scheduler.name();
        let mut testbed = Testbed::new(scheduler);
        if let Some(registry) = &self.metrics {
            testbed = testbed.with_metrics(registry.clone());
        }
        let monitor = self
            .monitor
            .as_ref()
            .map(|config| nimblock_obs::MonitorHandle::new(config.clone(), 0));
        if let Some(monitor) = &monitor {
            testbed = testbed.with_monitor(monitor.clone());
        }
        let report = if self.attribution {
            testbed.run_traced(&events).0
        } else {
            testbed.run(&events)
        };
        let mut summary = self.summarize(&invocations, report, scheduler_name);
        summary.monitor = monitor.map(|handle| handle.to_doc());
        summary
    }

    /// Runs `workload` across a cluster of `boards` identical FPGAs behind
    /// one gateway — the scale-out deployment shape: a front-end dispatcher
    /// fanning invocations out to boards, each board running its own
    /// hypervisor with a fresh scheduler from `scheduler_factory`.
    ///
    /// `threads` controls how many boards simulate in parallel (`1` =
    /// sequential oracle, `0` = auto); the summary is byte-identical for
    /// every thread count. With one board, the summary's statistics match
    /// [`FaasGateway::run`] exactly.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`FaasGateway::run`], or if
    /// `boards` is zero.
    pub fn run_cluster<S, F>(
        &self,
        workload: &InvocationWorkload,
        boards: usize,
        threads: usize,
        dispatch: nimblock_cluster::DispatchPolicy,
        scheduler_factory: F,
    ) -> FaasSummary
    where
        S: Scheduler,
        F: Fn() -> S + Sync,
    {
        let invocations = workload
            .generate(&self.registry)
            .expect("workload generation against this registry");
        let events = self
            .stimulus(workload)
            .expect("stimulus generation against this registry");
        let mut cluster = nimblock_cluster::ClusterTestbed::new(boards, dispatch, scheduler_factory)
            .with_threads(threads);
        if let Some(registry) = &self.metrics {
            cluster = cluster.with_metrics(registry.clone());
        }
        if let Some(config) = &self.monitor {
            cluster = cluster.with_monitor(config.clone());
        }
        if self.attribution {
            cluster = cluster.with_tracing();
        }
        let report = cluster.run(&events);
        let scheduler_name = report.merged().scheduler().to_owned();
        let mut summary = self.summarize(&invocations, report.merged().clone(), scheduler_name);
        summary.monitor = report.monitor().cloned();
        summary
    }

    /// Aggregates per-function statistics from a finished run. Records are
    /// matched to invocations through their stimulus `event_index`, so this
    /// works for both the single-board report (records in arrival order)
    /// and the cluster-merged report (records re-sorted after the merge).
    fn summarize(
        &self,
        invocations: &[crate::workload::Invocation],
        report: Report,
        scheduler_name: String,
    ) -> FaasSummary {
        let faas = self.metrics.as_ref().map(|registry| {
            (
                registry.counter("faas_invocations_total", "Invocations served"),
                registry.counter("faas_slo_met_total", "Invocations that met their deadline"),
                registry.counter("faas_slo_missed_total", "Invocations that missed their deadline"),
                registry.histogram(
                    "faas_latency_micros",
                    "End-to-end invocation latency in microseconds",
                ),
            )
        });

        // Group records by function. Each record names its stimulus event,
        // and events were generated 1:1 (and in order) from `invocations`,
        // so the record's `event_index` indexes straight into them — robust
        // even when records were merged back from several boards.
        let mut grouped: BTreeMap<String, Vec<(f64, bool)>> = BTreeMap::new();
        for record in report.records() {
            let invocation = &invocations[record.event_index];
            let function = self
                .registry
                .get(&invocation.function)
                .expect("generated against this registry");
            let latency = record.response_time().as_secs_f64();
            let deadline = function.slo.deadline_factor()
                * function
                    .app
                    .single_slot_latency(invocation.items, self.reconfig)
                    .as_secs_f64();
            let met = latency <= deadline;
            if let Some((invocations_c, met_c, missed_c, latency_h)) = &faas {
                invocations_c.inc();
                if met {
                    met_c.inc();
                } else {
                    missed_c.inc();
                }
                latency_h.observe(record.response_time().as_micros());
            }
            nimblock_obs::nb_debug!(
                "faas",
                "invocation {function} latency {latency:.3}s met_slo={met}",
                function = invocation.function
            );
            grouped
                .entry(invocation.function.clone())
                .or_default()
                .push((latency, met));
        }

        let per_function = grouped
            .into_iter()
            .map(|(function, samples)| {
                let slo = self
                    .registry
                    .slo(&function)
                    .expect("grouped from this registry");
                let mut latencies: Vec<f64> = samples.iter().map(|&(l, _)| l).collect();
                latencies.sort_by(f64::total_cmp);
                let met = samples.iter().filter(|&&(_, ok)| ok).count();
                FunctionStats {
                    slo,
                    invocations: samples.len(),
                    mean_latency_secs: latencies.iter().sum::<f64>() / latencies.len() as f64,
                    p95_latency_secs: percentile(&latencies, 95.0),
                    slo_attainment: met as f64 / samples.len() as f64,
                    function,
                }
            })
            .collect();
        // Per-function attribution: fold each invocation's components into
        // its function's bucket (attribution apps are indexed by stimulus
        // event, which maps 1:1 onto `invocations`).
        let mut by_function: BTreeMap<String, AttributionComponents> = BTreeMap::new();
        if let Some(attribution) = report.attribution() {
            for app in &attribution.apps {
                let function = invocations[app.event_index].function.clone();
                let entry = by_function.entry(function).or_default();
                *entry = entry.merged(app.components);
            }
        }
        FaasSummary {
            scheduler: scheduler_name,
            per_function,
            report,
            attribution_by_function: by_function.into_iter().collect(),
            monitor: None,
        }
    }
}

#[cfg(test)]
mod cluster_tests {
    use super::*;
    use nimblock_cluster::DispatchPolicy;
    use nimblock_core::NimblockScheduler;

    fn gateway() -> FaasGateway {
        FaasGateway::new(FunctionRegistry::benchmark_suite())
    }

    fn workload() -> InvocationWorkload {
        InvocationWorkload::new(33).invocations(20).mean_gap_millis(120)
    }

    #[test]
    fn one_board_cluster_matches_the_single_fpga_run() {
        let single = gateway().run(&workload(), NimblockScheduler::default());
        let cluster = gateway().run_cluster(
            &workload(),
            1,
            1,
            DispatchPolicy::RoundRobin,
            NimblockScheduler::default,
        );
        assert_eq!(single.per_function(), cluster.per_function());
        assert_eq!(single.total_invocations(), cluster.total_invocations());
    }

    #[test]
    fn cluster_fan_out_is_thread_count_invariant() {
        let sequential = gateway().run_cluster(
            &workload(),
            3,
            1,
            DispatchPolicy::LeastOutstanding,
            NimblockScheduler::default,
        );
        let parallel = gateway().run_cluster(
            &workload(),
            3,
            4,
            DispatchPolicy::LeastOutstanding,
            NimblockScheduler::default,
        );
        assert_eq!(sequential, parallel);
        assert_eq!(sequential.total_invocations(), 20);
    }

    #[test]
    fn cluster_metrics_cover_every_invocation() {
        let registry = nimblock_obs::Registry::new();
        let summary = gateway().with_metrics(registry.clone()).run_cluster(
            &workload(),
            2,
            2,
            DispatchPolicy::FewestApps,
            NimblockScheduler::default,
        );
        assert_eq!(summary.total_invocations(), 20);
        let text = registry.render_prometheus();
        assert!(text.contains("faas_invocations_total 20"), "{text}");
        assert!(text.contains("cluster_dispatches_total 20"), "{text}");
        assert!(text.contains("cluster_boards 2"), "{text}");
        nimblock_obs::validate_prometheus(&text).unwrap();
    }

    #[test]
    fn monitored_gateway_carries_a_doc_in_both_deployment_shapes() {
        let config = nimblock_obs::MonitorConfig::with_window_micros(1_000_000);
        let single = gateway()
            .with_monitor(config.clone())
            .run(&workload(), NimblockScheduler::default());
        let doc = single.monitor().expect("monitored run carries a doc");
        assert_eq!(doc.slots, 10);
        let arrivals: u64 = doc.windows.iter().map(|w| w.arrivals).sum();
        assert_eq!(arrivals as usize, single.total_invocations());
        let clustered = gateway().with_monitor(config).run_cluster(
            &workload(),
            2,
            2,
            DispatchPolicy::RoundRobin,
            NimblockScheduler::default,
        );
        let doc = clustered.monitor().expect("monitored cluster carries a doc");
        assert_eq!(doc.slots, 20, "2 boards x 10 slots");
        let arrivals: u64 = doc.windows.iter().map(|w| w.arrivals).sum();
        assert_eq!(arrivals as usize, clustered.total_invocations());
        // Unmonitored runs carry none.
        assert!(gateway().run(&workload(), NimblockScheduler::default()).monitor().is_none());
    }

    #[test]
    fn more_boards_do_not_hurt_attainment() {
        let heavy = InvocationWorkload::new(5).invocations(30).mean_gap_millis(60);
        let one = gateway().run_cluster(
            &heavy,
            1,
            1,
            DispatchPolicy::LeastOutstanding,
            NimblockScheduler::default,
        );
        let four = gateway().run_cluster(
            &heavy,
            4,
            2,
            DispatchPolicy::LeastOutstanding,
            NimblockScheduler::default,
        );
        assert!(
            four.overall_attainment() >= one.overall_attainment() - 1e-9,
            "4 boards {:.2} vs 1 board {:.2}",
            four.overall_attainment(),
            one.overall_attainment()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nimblock_core::{FcfsScheduler, NimblockScheduler};

    fn gateway() -> FaasGateway {
        FaasGateway::new(FunctionRegistry::benchmark_suite())
    }

    fn workload() -> InvocationWorkload {
        InvocationWorkload::new(9).invocations(25).mean_gap_millis(150)
    }

    #[test]
    fn summary_accounts_for_every_invocation() {
        let summary = gateway().run(&workload(), NimblockScheduler::default());
        assert_eq!(summary.total_invocations(), 25);
        for stats in summary.per_function() {
            assert!(stats.invocations > 0);
            assert!(stats.mean_latency_secs > 0.0);
            assert!(stats.p95_latency_secs >= stats.mean_latency_secs * 0.1);
            assert!((0.0..=1.0).contains(&stats.slo_attainment));
        }
    }

    #[test]
    fn stimulus_maps_slo_to_priority() {
        let gateway = gateway();
        let events = gateway.stimulus(&workload()).unwrap();
        for event in &events {
            let deployed: Vec<(&str, SloClass)> = gateway
                .registry()
                .names()
                .into_iter()
                .map(|n| (n, gateway.registry().slo(n).unwrap()))
                .collect();
            let matches = deployed
                .iter()
                .any(|&(_, slo)| slo.priority() == event.priority());
            assert!(matches);
        }
    }

    #[test]
    fn attainment_is_between_zero_and_one() {
        let summary = gateway().run(&workload(), FcfsScheduler::new());
        let overall = summary.overall_attainment();
        assert!((0.0..=1.0).contains(&overall), "{overall}");
    }

    #[test]
    fn nimblock_attains_at_least_as_much_slo_as_fcfs() {
        // Priority-aware scheduling should not lose to FCFS on SLO
        // attainment under this skewed, latency-class-heavy workload.
        let heavy = InvocationWorkload::new(21).invocations(40).mean_gap_millis(80);
        let nimblock = gateway().run(&heavy, NimblockScheduler::default());
        let fcfs = gateway().run(&heavy, FcfsScheduler::new());
        assert!(
            nimblock.overall_attainment() >= fcfs.overall_attainment() - 0.05,
            "Nimblock {:.2} vs FCFS {:.2}",
            nimblock.overall_attainment(),
            fcfs.overall_attainment()
        );
    }

    #[test]
    fn gateway_metrics_cover_every_invocation() {
        let registry = nimblock_obs::Registry::new();
        let summary = gateway()
            .with_metrics(registry.clone())
            .run(&workload(), NimblockScheduler::default());
        let text = registry.render_prometheus();
        assert!(text.contains("faas_invocations_total 25"), "{text}");
        assert!(text.contains("hv_arrivals_total 25"), "{text}");
        assert!(text.contains("faas_latency_micros_count 25"), "{text}");
        nimblock_obs::validate_prometheus(&text).unwrap();
        // met + missed partitions the invocations.
        let met = summary
            .per_function()
            .iter()
            .map(|f| (f.slo_attainment * f.invocations as f64).round() as u64)
            .sum::<u64>();
        assert!(text.contains(&format!("faas_slo_met_total {met}")), "{text}");
        assert!(
            text.contains(&format!("faas_slo_missed_total {}", 25 - met)),
            "{text}"
        );
    }

    #[test]
    fn attribution_decomposes_every_invocation_exactly() {
        let summary = gateway()
            .with_attribution()
            .run(&workload(), NimblockScheduler::default());
        let attribution = summary.attribution().expect("gateway ran attributed");
        assert!(attribution.is_exact());
        assert_eq!(attribution.apps.len(), 25);
        // Per-function aggregates cover every function that was invoked
        // and sum (component-wise) to the whole-run totals.
        let by_function = summary.attribution_by_function();
        assert_eq!(by_function.len(), summary.per_function().len());
        let mut folded = nimblock_metrics::AttributionComponents::default();
        for (_, components) in by_function {
            folded = folded.merged(*components);
        }
        assert_eq!(folded, attribution.totals);
        // Without the flag there is no attribution.
        let plain = gateway().run(&workload(), NimblockScheduler::default());
        assert!(plain.attribution().is_none());
        assert!(plain.attribution_by_function().is_empty());
        // Attribution never perturbs the observable statistics.
        assert_eq!(plain.per_function(), summary.per_function());
    }

    #[test]
    fn cluster_attribution_is_thread_count_invariant() {
        use nimblock_cluster::DispatchPolicy;
        let run = |threads| {
            gateway().with_attribution().run_cluster(
                &workload(),
                3,
                threads,
                DispatchPolicy::LeastOutstanding,
                NimblockScheduler::default,
            )
        };
        let sequential = run(1);
        let parallel = run(4);
        assert_eq!(sequential, parallel);
        let attribution = sequential.attribution().expect("attributed cluster run");
        assert!(attribution.is_exact());
        assert_eq!(attribution.apps.len(), 25);
    }

    #[test]
    fn function_lookup_by_name() {
        let summary = gateway().run(&workload(), NimblockScheduler::default());
        // The rank-0 function ("alexnet" alphabetically? no — registry
        // names are sorted; rank-0 popularity is the first sorted name).
        let first = gateway().registry().names()[0].to_owned();
        assert!(summary.function(&first).is_some());
        assert!(summary.function("nonexistent").is_none());
    }
}
