//! The `nimblock-cli` binary: a scriptable front-end for the Nimblock
//! FPGA-virtualization testbed. See `nimblock-cli help`.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match nimblock_cli::parse(&args) {
        Ok(command) => command,
        Err(error) => {
            eprintln!("error: {error}\n\n{}", nimblock_cli::USAGE);
            return ExitCode::FAILURE;
        }
    };
    let mut stdout = std::io::stdout().lock();
    match nimblock_cli::execute(&command, &mut stdout) {
        Ok(()) => ExitCode::SUCCESS,
        Err(error) => {
            eprintln!("error: {error}");
            ExitCode::FAILURE
        }
    }
}
