//! Hand-rolled argument parsing (the CLI is small enough not to warrant a
//! parser dependency).

use std::error::Error;
use std::fmt;

use nimblock_workload::Scenario;

/// An argument-parsing error; the message is user-facing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl Error for CliError {}

fn err(message: impl Into<String>) -> CliError {
    CliError(message.into())
}

/// Which scheduling policy to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum SchedulerKind {
    NoSharing,
    Fcfs,
    RoundRobin,
    Prema,
    PremaBackfill,
    Sjf,
    Edf,
    Nimblock,
    NimblockNoPreempt,
    NimblockNoPipe,
    NimblockNoPreemptNoPipe,
}

impl SchedulerKind {
    /// Parses a `--scheduler` value.
    pub fn parse(value: &str) -> Result<Self, CliError> {
        Ok(match value {
            "nosharing" => SchedulerKind::NoSharing,
            "fcfs" => SchedulerKind::Fcfs,
            "rr" => SchedulerKind::RoundRobin,
            "prema" => SchedulerKind::Prema,
            "prema-backfill" => SchedulerKind::PremaBackfill,
            "sjf" => SchedulerKind::Sjf,
            "edf" => SchedulerKind::Edf,
            "nimblock" => SchedulerKind::Nimblock,
            "nimblock-nopreempt" => SchedulerKind::NimblockNoPreempt,
            "nimblock-nopipe" => SchedulerKind::NimblockNoPipe,
            "nimblock-nopreempt-nopipe" => SchedulerKind::NimblockNoPreemptNoPipe,
            other => return Err(err(format!("unknown scheduler '{other}'"))),
        })
    }

    /// Builds the scheduler. The box is `Send` so cluster board workers
    /// can construct policies on their own threads.
    pub fn build(self) -> Box<dyn nimblock_core::Scheduler + Send> {
        use nimblock_core::*;
        match self {
            SchedulerKind::NoSharing => Box::new(NoSharingScheduler::new()),
            SchedulerKind::Fcfs => Box::new(FcfsScheduler::new()),
            SchedulerKind::RoundRobin => Box::new(RoundRobinScheduler::new()),
            SchedulerKind::Prema => Box::new(PremaScheduler::new()),
            SchedulerKind::PremaBackfill => Box::new(PremaScheduler::with_backfill()),
            SchedulerKind::Sjf => Box::new(SjfScheduler::new()),
            SchedulerKind::Edf => Box::new(EdfScheduler::default()),
            SchedulerKind::Nimblock => Box::new(NimblockScheduler::default()),
            SchedulerKind::NimblockNoPreempt => {
                Box::new(NimblockScheduler::with_config(NimblockConfig::no_preemption()))
            }
            SchedulerKind::NimblockNoPipe => {
                Box::new(NimblockScheduler::with_config(NimblockConfig::no_pipelining()))
            }
            SchedulerKind::NimblockNoPreemptNoPipe => Box::new(NimblockScheduler::with_config(
                NimblockConfig::no_preemption_no_pipelining(),
            )),
        }
    }
}

/// Stimulus selection shared by the commands.
#[derive(Debug, Clone, PartialEq)]
pub struct StimulusArgs {
    /// Congestion scenario when generating.
    pub scenario: Scenario,
    /// RNG seed.
    pub seed: u64,
    /// Number of events.
    pub events: usize,
    /// Fixed batch size (switches to the fixed-batch generator).
    pub batch: Option<u32>,
    /// Fixed inter-arrival delay in ms (with `batch`).
    pub delay_ms: u64,
    /// Load the stimulus from this JSON file instead of generating.
    pub input: Option<String>,
}

impl Default for StimulusArgs {
    fn default() -> Self {
        StimulusArgs {
            scenario: Scenario::Stress,
            seed: 2023,
            events: 20,
            batch: None,
            delay_ms: 500,
            input: None,
        }
    }
}

/// `generate` command arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct GenerateArgs {
    /// Stimulus selection.
    pub stimulus: StimulusArgs,
    /// Output path ('-' = stdout).
    pub output: String,
}

/// Schedule-trace output format (`--trace-format`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceFormat {
    /// The native `Trace` JSON (round-trips through `nimblock-ser`).
    Json,
    /// Chrome trace-event JSON, loadable in Perfetto / `chrome://tracing`.
    Chrome,
    /// ASCII Gantt chart, one row per slot plus the configuration port.
    Gantt,
}

impl TraceFormat {
    /// Parses a `--trace-format` value.
    pub fn parse(value: &str) -> Result<Self, CliError> {
        Ok(match value {
            "json" => TraceFormat::Json,
            "chrome" => TraceFormat::Chrome,
            "gantt" => TraceFormat::Gantt,
            other => return Err(err(format!("unknown trace format '{other}'"))),
        })
    }
}

/// `run` command arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct RunArgs {
    /// Stimulus selection.
    pub stimulus: StimulusArgs,
    /// Policy to run.
    pub scheduler: SchedulerKind,
    /// Device slot count.
    pub slots: usize,
    /// Where to write the JSON report, if anywhere ('-' = stdout).
    pub json: Option<String>,
    /// Print a Gantt chart of the schedule (same as `--trace-format gantt`).
    pub gantt: bool,
    /// Where to write the run's metrics as Prometheus text ('-' = stdout).
    pub metrics_out: Option<String>,
    /// Schedule-trace export format, if tracing was requested.
    pub trace_format: Option<TraceFormat>,
    /// Where the trace goes ('-' = stdout; default stdout).
    pub trace_out: Option<String>,
    /// Verify the recorded schedule against the paper's invariants after
    /// the run; a violation fails the command.
    pub check_invariants: bool,
    /// Where to write the compact binary stimulus trace, if anywhere.
    pub record_out: Option<String>,
    /// Continuous-monitoring options.
    pub monitor: MonitorArgs,
}

/// Continuous-monitoring flags shared by `run` and `cluster`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MonitorArgs {
    /// Where to write the windowed time-series document ('-' = stdout).
    pub timeseries_out: Option<String>,
    /// Tumbling-window length in simulated milliseconds.
    pub window_ms: u64,
    /// SLO rules to evaluate as windows close (repeatable `--slo`).
    pub slo: Vec<String>,
    /// Where a post-mortem bundle goes when the run fails ('-' = stdout).
    pub postmortem_out: Option<String>,
}

impl Default for MonitorArgs {
    fn default() -> Self {
        MonitorArgs {
            timeseries_out: None,
            window_ms: 10,
            slo: Vec::new(),
            postmortem_out: None,
        }
    }
}

impl MonitorArgs {
    /// Whether any monitoring flag was given — the monitor only attaches
    /// (and only then costs anything) when asked for.
    pub fn enabled(&self) -> bool {
        self.timeseries_out.is_some() || !self.slo.is_empty() || self.postmortem_out.is_some()
    }

    /// Builds the monitor configuration from the parsed flags.
    ///
    /// # Errors
    ///
    /// Returns a [`CliError`] for a zero window or a malformed SLO rule.
    pub fn config(&self) -> Result<nimblock_obs::MonitorConfig, CliError> {
        if self.window_ms == 0 {
            return Err(err("--window-ms must be at least 1"));
        }
        let rules = nimblock_obs::parse_rules(&self.slo).map_err(err)?;
        Ok(nimblock_obs::MonitorConfig::with_window_micros(self.window_ms * 1_000).rules(rules))
    }

    fn parse_flag(
        &mut self,
        flag: &str,
        stream: &mut ArgStream<'_>,
    ) -> Result<bool, CliError> {
        match flag {
            "--timeseries-out" => self.timeseries_out = Some(stream.value_for(flag)?.to_owned()),
            "--window-ms" => self.window_ms = parse_number(flag, stream.value_for(flag)?)?,
            "--slo" => self.slo.push(stream.value_for(flag)?.to_owned()),
            "--postmortem-out" => self.postmortem_out = Some(stream.value_for(flag)?.to_owned()),
            _ => return Ok(false),
        }
        Ok(true)
    }
}

/// `compare` command arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct CompareArgs {
    /// Stimulus selection.
    pub stimulus: StimulusArgs,
    /// Device slot count.
    pub slots: usize,
}

/// `faas` command arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct FaasArgs {
    /// RNG seed for the invocation workload.
    pub seed: u64,
    /// Number of invocations.
    pub invocations: usize,
    /// Mean inter-arrival gap in ms.
    pub mean_gap_ms: u64,
    /// Policy serving the invocations.
    pub scheduler: SchedulerKind,
    /// Front-door serving mode (enabled by `--arrivals`); `None` keeps the
    /// legacy batch gateway.
    pub frontdoor: Option<FrontDoorArgs>,
}

/// Front-door serving flags for the `faas` command (DESIGN.md §17).
#[derive(Debug, Clone, PartialEq)]
pub struct FrontDoorArgs {
    /// Arrival process spec, `kind[:rate]` (steady / diurnal / bursty).
    pub arrivals: String,
    /// Number of tenants sharing the door.
    pub tenants: usize,
    /// Per-tenant token-bucket rate (invocations/sec; 0 = unlimited).
    pub rate_limit: f64,
    /// Token-bucket burst capacity.
    pub burst: u64,
    /// Per-tenant in-flight quota (0 = unlimited).
    pub quota: u64,
    /// Cluster board count.
    pub boards: usize,
    /// Slots per board.
    pub slots: usize,
    /// Worker threads for the serving stage (`1` = sequential oracle,
    /// `0` = auto). The report is byte-identical for every value.
    pub threads: usize,
    /// Base shed horizon in ms (scaled by the class's 1/3/9 weight).
    pub shed_horizon_ms: u64,
    /// Maximum data items per invocation.
    pub max_items: u32,
    /// Arrival-rate multiplier for a single run.
    pub load: f64,
    /// Load factors to sweep into an SLO attainment curve.
    pub curve: Option<Vec<f64>>,
    /// Where the rendered curve goes ('-' = stdout).
    pub curve_out: Option<String>,
    /// Curve / report render format: text (default), md, or json.
    pub format: ExplainFormat,
    /// Where to write the full serving report as JSON ('-' = stdout).
    pub json: Option<String>,
    /// Where to write the run's metrics as Prometheus text ('-' = stdout).
    pub metrics_out: Option<String>,
    /// Where to write the compact binary serving trace (for
    /// `analyze plan`); recording is off unless asked for.
    pub record_out: Option<String>,
}

impl Default for FrontDoorArgs {
    fn default() -> Self {
        FrontDoorArgs {
            arrivals: "steady:0.1".to_owned(),
            tenants: 4,
            rate_limit: 0.0,
            burst: 16,
            quota: 0,
            boards: 4,
            slots: 3,
            threads: 1,
            shed_horizon_ms: 10_000,
            max_items: 4,
            load: 1.0,
            curve: None,
            curve_out: None,
            format: ExplainFormat::Text,
            json: None,
            metrics_out: None,
            record_out: None,
        }
    }
}

/// `cluster` command arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterArgs {
    /// Stimulus selection.
    pub stimulus: StimulusArgs,
    /// Number of boards.
    pub boards: usize,
    /// Policy on every board.
    pub scheduler: SchedulerKind,
    /// Worker threads simulating boards (`1` = sequential oracle,
    /// `0` = auto). The result is byte-identical for every value.
    pub threads: usize,
    /// How arrivals are assigned to boards.
    pub dispatch: nimblock_cluster::DispatchPolicy,
    /// Board counts to sweep instead of a single run.
    pub sweep_boards: Option<Vec<usize>>,
    /// Where to write the compact binary stimulus trace, if anywhere.
    pub record_out: Option<String>,
    /// Continuous-monitoring options (series merged across boards).
    pub monitor: MonitorArgs,
}

/// What `analyze` should look at.
#[derive(Debug, Clone, PartialEq)]
pub enum AnalyzeTarget {
    /// Lint the source tree rooted at the given directory.
    Lint {
        /// Workspace root to lint.
        root: String,
    },
    /// Deep whole-workspace analysis: call-graph reachability passes on
    /// top of the full lint, plus a stale-suppression audit.
    Deep {
        /// Workspace root to analyze.
        root: String,
        /// Report format: `text` (default), `md`, or `json`.
        format: ExplainFormat,
        /// Where to write the call graph as Graphviz DOT, if anywhere.
        graph_out: Option<String>,
    },
    /// Verify a serialized schedule trace (as written by
    /// `run --trace-format json --trace-out FILE`).
    Trace {
        /// Path of the trace JSON.
        path: String,
        /// Skip Nimblock-policy invariants (goal ceilings, preemption
        /// priority order).
        mechanism_only: bool,
    },
    /// Explain a serialized schedule trace: response-time attribution
    /// (six exactly-summing components) plus critical-path span trees.
    Explain {
        /// Path of the trace JSON.
        path: String,
        /// Report format: `text` (default), `md`, or `json`.
        format: ExplainFormat,
        /// How many of the slowest applications to detail.
        top: usize,
    },
    /// Render a monitoring document (as written by `--timeseries-out` or
    /// a post-mortem dump): windowed series, alerts, flight recorder.
    Monitor {
        /// Path of the monitoring JSON.
        path: String,
        /// Report format: `text` (default), `md`, or `json`.
        format: ExplainFormat,
    },
    /// Capacity planning from a recorded serving trace (as written by
    /// `faas --arrivals ... --record-out`): sweep counterfactual fleet
    /// shapes through the calibrated estimator and validate a sample of
    /// scenarios by exact replay.
    Plan {
        /// Path of the recorded binary trace.
        path: String,
        /// Sweep axes, `name=spec` (repeatable `--sweep`); empty means
        /// the planner's default boards sweep.
        sweeps: Vec<String>,
        /// Offered-attainment target the recommendation must meet.
        slo: f64,
        /// How many scenarios to validate by exact replay.
        replays: usize,
        /// Report format: `text` (default), `md`, or `json`.
        format: ExplainFormat,
        /// Where the report goes ('-' = stdout; default stdout).
        out: Option<String>,
    },
}

/// `analyze explain` report format (shared with `nimblock-analyze`).
pub use nimblock_analyze::ExplainFormat;

fn parse_explain_format(value: &str) -> Result<ExplainFormat, CliError> {
    ExplainFormat::parse(value).ok_or_else(|| {
        err(format!(
            "unknown explain format '{value}' (expected text, md, or json)"
        ))
    })
}

/// `analyze` command arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyzeArgs {
    /// Lint a tree or verify a trace.
    pub target: AnalyzeTarget,
    /// Emit a machine-readable JSON report instead of diagnostics.
    pub json: bool,
}

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)]
pub enum Command {
    Generate(GenerateArgs),
    Run(RunArgs),
    Compare(CompareArgs),
    Faas(FaasArgs),
    Cluster(ClusterArgs),
    Analyze(AnalyzeArgs),
    Help,
}

fn parse_scenario(value: &str) -> Result<Scenario, CliError> {
    Ok(match value {
        "standard" => Scenario::Standard,
        "stress" => Scenario::Stress,
        "realtime" | "real-time" => Scenario::RealTime,
        other => return Err(err(format!("unknown scenario '{other}'"))),
    })
}

struct ArgStream<'a> {
    args: &'a [String],
    index: usize,
}

impl<'a> ArgStream<'a> {
    fn next(&mut self) -> Option<&'a str> {
        let value = self.args.get(self.index).map(String::as_str);
        self.index += 1;
        value
    }

    fn value_for(&mut self, flag: &str) -> Result<&'a str, CliError> {
        self.next()
            .ok_or_else(|| err(format!("{flag} needs a value")))
    }
}

/// Parses a full command line (without the program name).
///
/// # Errors
///
/// Returns a user-facing [`CliError`] for unknown commands, flags, or
/// malformed values.
pub fn parse(args: &[String]) -> Result<Command, CliError> {
    let mut stream = ArgStream { args, index: 0 };
    let Some(command) = stream.next() else {
        return Ok(Command::Help);
    };
    match command {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "generate" => {
            let mut stimulus = StimulusArgs::default();
            let mut output = None;
            while let Some(flag) = stream.next() {
                match flag {
                    "--output" => output = Some(stream.value_for(flag)?.to_owned()),
                    other => parse_stimulus_flag(&mut stimulus, other, &mut stream)?,
                }
            }
            Ok(Command::Generate(GenerateArgs {
                stimulus,
                output: output.ok_or_else(|| err("generate requires --output"))?,
            }))
        }
        "run" => {
            let mut stimulus = StimulusArgs::default();
            let mut scheduler = SchedulerKind::Nimblock;
            let mut slots = 10usize;
            let mut json = None;
            let mut gantt = false;
            let mut metrics_out = None;
            let mut trace_format = None;
            let mut trace_out = None;
            let mut check_invariants = false;
            let mut record_out = None;
            let mut monitor = MonitorArgs::default();
            while let Some(flag) = stream.next() {
                match flag {
                    "--scheduler" => scheduler = SchedulerKind::parse(stream.value_for(flag)?)?,
                    "--slots" => slots = parse_number(flag, stream.value_for(flag)?)?,
                    "--json" => json = Some(stream.value_for(flag)?.to_owned()),
                    "--gantt" => gantt = true,
                    "--metrics-out" => metrics_out = Some(stream.value_for(flag)?.to_owned()),
                    "--trace-format" => {
                        trace_format = Some(TraceFormat::parse(stream.value_for(flag)?)?)
                    }
                    "--trace-out" => trace_out = Some(stream.value_for(flag)?.to_owned()),
                    "--check-invariants" => check_invariants = true,
                    "--record-out" => record_out = Some(stream.value_for(flag)?.to_owned()),
                    other if monitor.parse_flag(other, &mut stream)? => {}
                    other => parse_stimulus_flag(&mut stimulus, other, &mut stream)?,
                }
            }
            if trace_out.is_some() && trace_format.is_none() {
                return Err(err("--trace-out requires --trace-format"));
            }
            if record_out.as_deref() == Some("-") {
                return Err(err("--record-out writes a binary trace; '-' is not supported"));
            }
            monitor.config()?; // validate rules and window at parse time
            Ok(Command::Run(RunArgs {
                stimulus,
                scheduler,
                slots,
                json,
                gantt,
                metrics_out,
                trace_format,
                trace_out,
                check_invariants,
                record_out,
                monitor,
            }))
        }
        "analyze" => {
            match stream.next() {
                Some("lint") => {
                    let mut root = ".".to_owned();
                    let mut json = false;
                    while let Some(flag) = stream.next() {
                        match flag {
                            "--root" => root = stream.value_for(flag)?.to_owned(),
                            "--json" => json = true,
                            other => return Err(err(format!("unknown flag '{other}'"))),
                        }
                    }
                    return Ok(Command::Analyze(AnalyzeArgs {
                        target: AnalyzeTarget::Lint { root },
                        json,
                    }));
                }
                Some("deep") => {
                    let mut root = ".".to_owned();
                    let mut format = ExplainFormat::Text;
                    let mut graph_out = None;
                    while let Some(flag) = stream.next() {
                        match flag {
                            "--root" => root = stream.value_for(flag)?.to_owned(),
                            "--format" => format = parse_explain_format(stream.value_for(flag)?)?,
                            "--graph-out" => graph_out = Some(stream.value_for(flag)?.to_owned()),
                            other => return Err(err(format!("unknown flag '{other}'"))),
                        }
                    }
                    return Ok(Command::Analyze(AnalyzeArgs {
                        target: AnalyzeTarget::Deep { root, format, graph_out },
                        json: format == ExplainFormat::Json,
                    }));
                }
                Some("trace") => {
                    let mut path = None;
                    let mut json = false;
                    let mut mechanism_only = false;
                    while let Some(flag) = stream.next() {
                        match flag {
                            "--json" => json = true,
                            "--mechanism-only" => mechanism_only = true,
                            other if !other.starts_with('-') && path.is_none() => {
                                path = Some(other.to_owned())
                            }
                            other => return Err(err(format!("unknown flag '{other}'"))),
                        }
                    }
                    let path = path.ok_or_else(|| err("analyze trace needs a FILE"))?;
                    Ok(Command::Analyze(AnalyzeArgs {
                        target: AnalyzeTarget::Trace { path, mechanism_only },
                        json,
                    }))
                }
                Some("explain") => {
                    let mut path = None;
                    let mut format = ExplainFormat::Text;
                    let mut top = 5usize;
                    while let Some(flag) = stream.next() {
                        match flag {
                            "--format" => format = parse_explain_format(stream.value_for(flag)?)?,
                            "--top" => top = parse_number(flag, stream.value_for(flag)?)?,
                            other if !other.starts_with('-') && path.is_none() => {
                                path = Some(other.to_owned())
                            }
                            other => return Err(err(format!("unknown flag '{other}'"))),
                        }
                    }
                    let path = path.ok_or_else(|| err("analyze explain needs a FILE"))?;
                    Ok(Command::Analyze(AnalyzeArgs {
                        target: AnalyzeTarget::Explain { path, format, top },
                        json: format == ExplainFormat::Json,
                    }))
                }
                Some("monitor") => {
                    let mut path = None;
                    let mut format = ExplainFormat::Text;
                    while let Some(flag) = stream.next() {
                        match flag {
                            "--format" => format = parse_explain_format(stream.value_for(flag)?)?,
                            other if !other.starts_with('-') && path.is_none() => {
                                path = Some(other.to_owned())
                            }
                            other => return Err(err(format!("unknown flag '{other}'"))),
                        }
                    }
                    let path = path.ok_or_else(|| err("analyze monitor needs a FILE"))?;
                    Ok(Command::Analyze(AnalyzeArgs {
                        target: AnalyzeTarget::Monitor { path, format },
                        json: format == ExplainFormat::Json,
                    }))
                }
                Some("plan") => {
                    let mut path = None;
                    let mut sweeps = Vec::new();
                    let mut slo = 0.95f64;
                    let mut replays = 5usize;
                    let mut format = ExplainFormat::Text;
                    let mut out = None;
                    while let Some(flag) = stream.next() {
                        match flag {
                            "--sweep" => sweeps.push(stream.value_for(flag)?.to_owned()),
                            "--slo" => slo = parse_number(flag, stream.value_for(flag)?)?,
                            "--replays" => replays = parse_number(flag, stream.value_for(flag)?)?,
                            "--format" => format = parse_explain_format(stream.value_for(flag)?)?,
                            "--out" => out = Some(stream.value_for(flag)?.to_owned()),
                            other if !other.starts_with('-') && path.is_none() => {
                                path = Some(other.to_owned())
                            }
                            other => return Err(err(format!("unknown flag '{other}'"))),
                        }
                    }
                    let path = path.ok_or_else(|| err("analyze plan needs a TRACE file"))?;
                    if !(0.0..=1.0).contains(&slo) {
                        return Err(err("--slo must be a fraction in 0..=1"));
                    }
                    Ok(Command::Analyze(AnalyzeArgs {
                        target: AnalyzeTarget::Plan { path, sweeps, slo, replays, format, out },
                        json: format == ExplainFormat::Json,
                    }))
                }
                Some(other) => Err(err(format!(
                    "unknown analyze target '{other}' \
                     (expected lint, deep, trace, explain, monitor, or plan)"
                ))),
                None => {
                    Err(err("analyze needs a target: lint, deep, trace, explain, monitor, or plan"))
                }
            }
        }
        "faas" => {
            let mut args = FaasArgs {
                seed: 2023,
                invocations: 60,
                mean_gap_ms: 150,
                scheduler: SchedulerKind::Nimblock,
                frontdoor: None,
            };
            let mut door = FrontDoorArgs::default();
            let mut arrivals_given = false;
            let mut door_flag: Option<String> = None;
            while let Some(flag) = stream.next() {
                match flag {
                    "--seed" => args.seed = parse_number(flag, stream.value_for(flag)?)?,
                    "--invocations" => {
                        args.invocations = parse_number(flag, stream.value_for(flag)?)?
                    }
                    "--mean-gap-ms" => {
                        args.mean_gap_ms = parse_number(flag, stream.value_for(flag)?)?
                    }
                    "--scheduler" => {
                        args.scheduler = SchedulerKind::parse(stream.value_for(flag)?)?
                    }
                    "--arrivals" => {
                        let value = stream.value_for(flag)?;
                        nimblock_workload::ArrivalProcess::parse(value)
                            .map_err(|e| err(format!("--arrivals: {e}")))?;
                        door.arrivals = value.to_owned();
                        arrivals_given = true;
                    }
                    "--tenants" => {
                        door.tenants = parse_number(flag, stream.value_for(flag)?)?;
                        door_flag.get_or_insert_with(|| flag.to_owned());
                    }
                    "--rate-limit" => {
                        door.rate_limit = parse_number(flag, stream.value_for(flag)?)?;
                        door_flag.get_or_insert_with(|| flag.to_owned());
                    }
                    "--burst" => {
                        door.burst = parse_number(flag, stream.value_for(flag)?)?;
                        door_flag.get_or_insert_with(|| flag.to_owned());
                    }
                    "--quota" => {
                        door.quota = parse_number(flag, stream.value_for(flag)?)?;
                        door_flag.get_or_insert_with(|| flag.to_owned());
                    }
                    "--boards" => {
                        door.boards = parse_number(flag, stream.value_for(flag)?)?;
                        door_flag.get_or_insert_with(|| flag.to_owned());
                    }
                    "--slots" => {
                        door.slots = parse_number(flag, stream.value_for(flag)?)?;
                        door_flag.get_or_insert_with(|| flag.to_owned());
                    }
                    "--cluster-threads" | "--threads" => {
                        door.threads = parse_number(flag, stream.value_for(flag)?)?;
                        door_flag.get_or_insert_with(|| flag.to_owned());
                    }
                    "--shed-horizon-ms" => {
                        door.shed_horizon_ms = parse_number(flag, stream.value_for(flag)?)?;
                        door_flag.get_or_insert_with(|| flag.to_owned());
                    }
                    "--max-items" => {
                        door.max_items = parse_number(flag, stream.value_for(flag)?)?;
                        door_flag.get_or_insert_with(|| flag.to_owned());
                    }
                    "--load" => {
                        door.load = parse_number(flag, stream.value_for(flag)?)?;
                        door_flag.get_or_insert_with(|| flag.to_owned());
                    }
                    "--curve" => {
                        let list = stream.value_for(flag)?;
                        let mut factors = Vec::new();
                        for part in list.split(',') {
                            let factor: f64 = parse_number(flag, part)?;
                            if !(factor > 0.0) {
                                return Err(err("--curve factors must be positive"));
                            }
                            factors.push(factor);
                        }
                        if factors.is_empty() {
                            return Err(err("--curve needs at least one load factor"));
                        }
                        door.curve = Some(factors);
                        door_flag.get_or_insert_with(|| flag.to_owned());
                    }
                    "--slo-curve-out" => {
                        door.curve_out = Some(stream.value_for(flag)?.to_owned());
                        door_flag.get_or_insert_with(|| flag.to_owned());
                    }
                    "--format" => {
                        door.format = parse_explain_format(stream.value_for(flag)?)?;
                        door_flag.get_or_insert_with(|| flag.to_owned());
                    }
                    "--json" => {
                        door.json = Some(stream.value_for(flag)?.to_owned());
                        door_flag.get_or_insert_with(|| flag.to_owned());
                    }
                    "--metrics-out" => {
                        door.metrics_out = Some(stream.value_for(flag)?.to_owned());
                        door_flag.get_or_insert_with(|| flag.to_owned());
                    }
                    "--record-out" => {
                        door.record_out = Some(stream.value_for(flag)?.to_owned());
                        door_flag.get_or_insert_with(|| flag.to_owned());
                    }
                    other => return Err(err(format!("unknown flag '{other}'"))),
                }
            }
            if arrivals_given {
                if door.tenants == 0 {
                    return Err(err("--tenants must be at least 1"));
                }
                if door.boards == 0 || door.slots == 0 {
                    return Err(err("--boards and --slots must be at least 1"));
                }
                if door.max_items == 0 {
                    return Err(err("--max-items must be at least 1"));
                }
                if door.curve_out.is_some() && door.curve.is_none() {
                    return Err(err("--slo-curve-out requires --curve"));
                }
                if door.record_out.as_deref() == Some("-") {
                    return Err(err("--record-out writes a binary trace; '-' is not supported"));
                }
                if door.record_out.is_some() && door.curve.is_some() {
                    return Err(err(
                        "--record-out records a single run; it cannot be combined with --curve",
                    ));
                }
                args.frontdoor = Some(door);
            } else if let Some(flag) = door_flag {
                return Err(err(format!(
                    "{flag} is a front-door flag; it requires --arrivals KIND[:RATE]"
                )));
            }
            Ok(Command::Faas(args))
        }
        "cluster" => {
            let mut stimulus = StimulusArgs::default();
            let mut boards = 2usize;
            let mut scheduler = SchedulerKind::Nimblock;
            let mut threads = 1usize;
            let mut dispatch = nimblock_cluster::DispatchPolicy::FewestApps;
            let mut sweep_boards = None;
            let mut record_out = None;
            let mut monitor = MonitorArgs::default();
            while let Some(flag) = stream.next() {
                match flag {
                    "--boards" => boards = parse_number(flag, stream.value_for(flag)?)?,
                    "--scheduler" => scheduler = SchedulerKind::parse(stream.value_for(flag)?)?,
                    "--cluster-threads" | "--threads" => {
                        threads = parse_number(flag, stream.value_for(flag)?)?
                    }
                    "--dispatch" => {
                        let value = stream.value_for(flag)?;
                        dispatch = nimblock_cluster::DispatchPolicy::parse(value)
                            .ok_or_else(|| {
                                err(format!(
                                    "unknown dispatch policy '{value}' \
                                     (expected rr, fewest-apps, or least-outstanding)"
                                ))
                            })?;
                    }
                    "--sweep-boards" => {
                        let list = stream.value_for(flag)?;
                        let mut counts = Vec::new();
                        for part in list.split(',') {
                            let count: usize = parse_number(flag, part)?;
                            if count == 0 {
                                return Err(err("--sweep-boards entries must be at least 1"));
                            }
                            counts.push(count);
                        }
                        if counts.is_empty() {
                            return Err(err("--sweep-boards needs at least one count"));
                        }
                        sweep_boards = Some(counts);
                    }
                    "--record-out" => record_out = Some(stream.value_for(flag)?.to_owned()),
                    other if monitor.parse_flag(other, &mut stream)? => {}
                    other => parse_stimulus_flag(&mut stimulus, other, &mut stream)?,
                }
            }
            if boards == 0 {
                return Err(err("--boards must be at least 1"));
            }
            if record_out.as_deref() == Some("-") {
                return Err(err("--record-out writes a binary trace; '-' is not supported"));
            }
            monitor.config()?; // validate rules and window at parse time
            Ok(Command::Cluster(ClusterArgs {
                stimulus,
                boards,
                scheduler,
                threads,
                dispatch,
                sweep_boards,
                record_out,
                monitor,
            }))
        }
        "compare" => {
            let mut stimulus = StimulusArgs::default();
            let mut slots = 10usize;
            while let Some(flag) = stream.next() {
                match flag {
                    "--slots" => slots = parse_number(flag, stream.value_for(flag)?)?,
                    other => parse_stimulus_flag(&mut stimulus, other, &mut stream)?,
                }
            }
            Ok(Command::Compare(CompareArgs { stimulus, slots }))
        }
        other => Err(err(format!("unknown command '{other}'"))),
    }
}

fn parse_number<T: std::str::FromStr>(flag: &str, value: &str) -> Result<T, CliError> {
    value
        .parse()
        .map_err(|_| err(format!("{flag}: cannot parse '{value}'")))
}

fn parse_stimulus_flag(
    stimulus: &mut StimulusArgs,
    flag: &str,
    stream: &mut ArgStream<'_>,
) -> Result<(), CliError> {
    match flag {
        "--scenario" => stimulus.scenario = parse_scenario(stream.value_for(flag)?)?,
        "--seed" => stimulus.seed = parse_number(flag, stream.value_for(flag)?)?,
        "--events" => stimulus.events = parse_number(flag, stream.value_for(flag)?)?,
        "--batch" => stimulus.batch = Some(parse_number(flag, stream.value_for(flag)?)?),
        "--delay-ms" => stimulus.delay_ms = parse_number(flag, stream.value_for(flag)?)?,
        "--input" => stimulus.input = Some(stream.value_for(flag)?.to_owned()),
        other => return Err(err(format!("unknown flag '{other}'"))),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(line: &str) -> Vec<String> {
        line.split_whitespace().map(str::to_owned).collect()
    }

    #[test]
    fn empty_and_help_lines() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&argv("--help")).unwrap(), Command::Help);
        assert_eq!(parse(&argv("help")).unwrap(), Command::Help);
    }

    #[test]
    fn run_defaults() {
        let Command::Run(run) = parse(&argv("run")).unwrap() else {
            panic!("expected run");
        };
        assert_eq!(run.scheduler, SchedulerKind::Nimblock);
        assert_eq!(run.slots, 10);
        assert_eq!(run.stimulus.seed, 2023);
        assert!(!run.gantt);
    }

    #[test]
    fn run_with_everything() {
        let line = "run --scheduler prema --scenario standard --seed 7 --events 5 --slots 4 --json - --gantt";
        let Command::Run(run) = parse(&argv(line)).unwrap() else {
            panic!("expected run");
        };
        assert_eq!(run.scheduler, SchedulerKind::Prema);
        assert_eq!(run.stimulus.scenario, Scenario::Standard);
        assert_eq!(run.stimulus.seed, 7);
        assert_eq!(run.stimulus.events, 5);
        assert_eq!(run.slots, 4);
        assert_eq!(run.json.as_deref(), Some("-"));
        assert!(run.gantt);
    }

    #[test]
    fn generate_requires_output() {
        assert!(parse(&argv("generate")).is_err());
        let Command::Generate(generate) =
            parse(&argv("generate --batch 5 --delay-ms 500 --output s.json")).unwrap()
        else {
            panic!("expected generate");
        };
        assert_eq!(generate.stimulus.batch, Some(5));
        assert_eq!(generate.output, "s.json");
    }

    #[test]
    fn compare_parses_input_files() {
        let Command::Compare(compare) = parse(&argv("compare --input stim.json --slots 6")).unwrap()
        else {
            panic!("expected compare");
        };
        assert_eq!(compare.stimulus.input.as_deref(), Some("stim.json"));
        assert_eq!(compare.slots, 6);
    }

    #[test]
    fn faas_and_cluster_commands_parse() {
        let Command::Faas(f) =
            parse(&argv("faas --seed 9 --invocations 30 --mean-gap-ms 80 --scheduler prema")).unwrap()
        else {
            panic!("expected faas");
        };
        assert_eq!(f.seed, 9);
        assert_eq!(f.invocations, 30);
        assert_eq!(f.scheduler, SchedulerKind::Prema);
        assert_eq!(f.frontdoor, None, "legacy gateway by default");

        let Command::Cluster(c) = parse(&argv("cluster --boards 4 --events 6")).unwrap() else {
            panic!("expected cluster");
        };
        assert_eq!(c.boards, 4);
        assert_eq!(c.stimulus.events, 6);
        assert_eq!(c.threads, 1, "sequential oracle by default");
        assert_eq!(c.dispatch, nimblock_cluster::DispatchPolicy::FewestApps);
        assert_eq!(c.sweep_boards, None);
        assert!(parse(&argv("cluster --boards 0")).is_err());
    }

    #[test]
    fn cluster_parallelism_flags_parse() {
        let line = "cluster --boards 8 --cluster-threads 4 --dispatch least-outstanding";
        let Command::Cluster(c) = parse(&argv(line)).unwrap() else {
            panic!("expected cluster");
        };
        assert_eq!(c.boards, 8);
        assert_eq!(c.threads, 4);
        assert_eq!(c.dispatch, nimblock_cluster::DispatchPolicy::LeastOutstanding);
        // --threads is an accepted alias; 0 means auto.
        let Command::Cluster(c) = parse(&argv("cluster --threads 0 --dispatch rr")).unwrap()
        else {
            panic!("expected cluster");
        };
        assert_eq!(c.threads, 0);
        assert_eq!(c.dispatch, nimblock_cluster::DispatchPolicy::RoundRobin);
        assert!(parse(&argv("cluster --dispatch hashring")).is_err());
    }

    #[test]
    fn cluster_sweep_flag_parses_lists() {
        let Command::Cluster(c) =
            parse(&argv("cluster --sweep-boards 1,2,4,8 --events 6")).unwrap()
        else {
            panic!("expected cluster");
        };
        assert_eq!(c.sweep_boards, Some(vec![1, 2, 4, 8]));
        assert!(parse(&argv("cluster --sweep-boards 1,0,4")).is_err());
        assert!(parse(&argv("cluster --sweep-boards nope")).is_err());
    }

    #[test]
    fn run_telemetry_flags_parse() {
        let line = "run --metrics-out - --trace-format chrome --trace-out t.json";
        let Command::Run(run) = parse(&argv(line)).unwrap() else {
            panic!("expected run");
        };
        assert_eq!(run.metrics_out.as_deref(), Some("-"));
        assert_eq!(run.trace_format, Some(TraceFormat::Chrome));
        assert_eq!(run.trace_out.as_deref(), Some("t.json"));
        for (name, format) in [
            ("json", TraceFormat::Json),
            ("chrome", TraceFormat::Chrome),
            ("gantt", TraceFormat::Gantt),
        ] {
            assert_eq!(TraceFormat::parse(name).unwrap(), format);
        }
        assert!(TraceFormat::parse("svg").is_err());
        // --trace-out without a format is rejected.
        assert!(parse(&argv("run --trace-out t.json")).is_err());
    }

    #[test]
    fn analyze_explain_parses() {
        let Command::Analyze(a) =
            parse(&argv("analyze explain t.json --format md --top 3")).unwrap()
        else {
            panic!("expected analyze");
        };
        assert_eq!(
            a.target,
            AnalyzeTarget::Explain {
                path: "t.json".into(),
                format: ExplainFormat::Markdown,
                top: 3,
            }
        );
        // Defaults: text format, top 5; JSON format sets the json flag.
        let Command::Analyze(a) = parse(&argv("analyze explain t.json")).unwrap() else {
            panic!("expected analyze");
        };
        assert_eq!(
            a.target,
            AnalyzeTarget::Explain {
                path: "t.json".into(),
                format: ExplainFormat::Text,
                top: 5,
            }
        );
        assert!(!a.json);
        let Command::Analyze(a) =
            parse(&argv("analyze explain t.json --format json")).unwrap()
        else {
            panic!("expected analyze");
        };
        assert!(a.json);
        assert!(parse(&argv("analyze explain")).is_err());
        assert!(parse(&argv("analyze explain t.json --format svg")).is_err());
    }

    #[test]
    fn monitor_flags_parse_on_run_and_cluster() {
        let line = "run --timeseries-out ts.json --window-ms 50 \
                    --slo resp:high:p95<=200ms --slo util>=30% --postmortem-out pm.json";
        let Command::Run(run) = parse(&argv(line)).unwrap() else {
            panic!("expected run");
        };
        assert_eq!(run.monitor.timeseries_out.as_deref(), Some("ts.json"));
        assert_eq!(run.monitor.window_ms, 50);
        assert_eq!(run.monitor.slo, vec!["resp:high:p95<=200ms", "util>=30%"]);
        assert_eq!(run.monitor.postmortem_out.as_deref(), Some("pm.json"));
        assert!(run.monitor.enabled());
        let config = run.monitor.config().unwrap();
        assert_eq!(config.window_micros, 50_000);
        assert_eq!(config.rules.len(), 2);

        let Command::Cluster(c) =
            parse(&argv("cluster --boards 2 --timeseries-out - --slo queue<=4")).unwrap()
        else {
            panic!("expected cluster");
        };
        assert_eq!(c.monitor.timeseries_out.as_deref(), Some("-"));
        assert_eq!(c.monitor.window_ms, 10, "default window");
        assert!(c.monitor.enabled());

        // Defaults: monitoring off, nothing attached.
        let Command::Run(run) = parse(&argv("run")).unwrap() else {
            panic!("expected run");
        };
        assert!(!run.monitor.enabled());
        // Malformed rules and zero windows are rejected at parse time.
        assert!(parse(&argv("run --slo nonsense")).is_err());
        assert!(parse(&argv("run --window-ms 0 --timeseries-out -")).is_err());
    }

    #[test]
    fn analyze_monitor_parses() {
        let Command::Analyze(a) = parse(&argv("analyze monitor ts.json --format md")).unwrap()
        else {
            panic!("expected analyze");
        };
        assert_eq!(
            a.target,
            AnalyzeTarget::Monitor { path: "ts.json".into(), format: ExplainFormat::Markdown }
        );
        assert!(!a.json);
        let Command::Analyze(a) = parse(&argv("analyze monitor ts.json --format json")).unwrap()
        else {
            panic!("expected analyze");
        };
        assert!(a.json);
        assert!(parse(&argv("analyze monitor")).is_err());
        assert!(parse(&argv("analyze monitor ts.json --format svg")).is_err());
    }

    #[test]
    fn faas_front_door_flags_parse() {
        let line = "faas --arrivals bursty:2 --invocations 500 --tenants 8 --rate-limit 0.5 \
                    --burst 4 --quota 2 --boards 6 --slots 2 --cluster-threads 4 \
                    --shed-horizon-ms 250 --max-items 2 --load 3.5";
        let Command::Faas(f) = parse(&argv(line)).unwrap() else {
            panic!("expected faas");
        };
        let door = f.frontdoor.expect("front-door mode");
        assert_eq!(door.arrivals, "bursty:2");
        assert_eq!(door.tenants, 8);
        assert_eq!(door.rate_limit, 0.5);
        assert_eq!(door.burst, 4);
        assert_eq!(door.quota, 2);
        assert_eq!(door.boards, 6);
        assert_eq!(door.slots, 2);
        assert_eq!(door.threads, 4);
        assert_eq!(door.shed_horizon_ms, 250);
        assert_eq!(door.max_items, 2);
        assert_eq!(door.load, 3.5);
        assert_eq!(door.curve, None);

        // Flag order does not matter: front-door flags may precede --arrivals.
        let Command::Faas(f) =
            parse(&argv("faas --tenants 2 --arrivals steady")).unwrap()
        else {
            panic!("expected faas");
        };
        assert_eq!(f.frontdoor.expect("front-door mode").tenants, 2);
    }

    #[test]
    fn faas_front_door_curve_and_outputs_parse() {
        let line = "faas --arrivals steady:0.1 --curve 0.25,1,4 --slo-curve-out curve.json \
                    --format json --json report.json --metrics-out -";
        let Command::Faas(f) = parse(&argv(line)).unwrap() else {
            panic!("expected faas");
        };
        let door = f.frontdoor.expect("front-door mode");
        assert_eq!(door.curve, Some(vec![0.25, 1.0, 4.0]));
        assert_eq!(door.curve_out.as_deref(), Some("curve.json"));
        assert_eq!(door.format, ExplainFormat::Json);
        assert_eq!(door.json.as_deref(), Some("report.json"));
        assert_eq!(door.metrics_out.as_deref(), Some("-"));
    }

    #[test]
    fn faas_front_door_flags_are_validated() {
        // Front-door flags without --arrivals name the offending flag.
        let err = parse(&argv("faas --tenants 2")).unwrap_err();
        assert!(err.to_string().contains("--tenants"), "{err}");
        assert!(err.to_string().contains("--arrivals"), "{err}");
        // Malformed processes, degenerate shapes, and orphan outputs.
        assert!(parse(&argv("faas --arrivals warp:10")).is_err());
        assert!(parse(&argv("faas --arrivals steady --tenants 0")).is_err());
        assert!(parse(&argv("faas --arrivals steady --boards 0")).is_err());
        assert!(parse(&argv("faas --arrivals steady --max-items 0")).is_err());
        assert!(parse(&argv("faas --arrivals steady --curve -1")).is_err());
        assert!(parse(&argv("faas --arrivals steady --slo-curve-out c.json")).is_err());
    }

    #[test]
    fn analyze_plan_parses() {
        let line = "analyze plan t.nbt --sweep boards=1..8 --sweep slots=2,3 \
                    --slo 0.9 --replays 3 --format md --out plan.md";
        let Command::Analyze(a) = parse(&argv(line)).unwrap() else {
            panic!("expected analyze");
        };
        assert_eq!(
            a.target,
            AnalyzeTarget::Plan {
                path: "t.nbt".into(),
                sweeps: vec!["boards=1..8".into(), "slots=2,3".into()],
                slo: 0.9,
                replays: 3,
                format: ExplainFormat::Markdown,
                out: Some("plan.md".into()),
            }
        );
        // Defaults: boards sweep comes from the planner, 95% target,
        // five validation replays, text on stdout.
        let Command::Analyze(a) = parse(&argv("analyze plan t.nbt")).unwrap() else {
            panic!("expected analyze");
        };
        let AnalyzeTarget::Plan { sweeps, slo, replays, format, out, .. } = a.target else {
            panic!("expected plan");
        };
        assert!(sweeps.is_empty());
        assert_eq!(slo, 0.95);
        assert_eq!(replays, 5);
        assert_eq!(format, ExplainFormat::Text);
        assert_eq!(out, None);
        let Command::Analyze(a) = parse(&argv("analyze plan t.nbt --format json")).unwrap()
        else {
            panic!("expected analyze");
        };
        assert!(a.json);
        assert!(parse(&argv("analyze plan")).is_err());
        assert!(parse(&argv("analyze plan t.nbt --slo 1.5")).is_err());
        assert!(parse(&argv("analyze plan t.nbt --format svg")).is_err());
        let err = parse(&argv("analyze bogus")).unwrap_err();
        assert!(err.to_string().contains("plan"), "{err}");
    }

    #[test]
    fn record_out_flags_parse() {
        let Command::Faas(f) =
            parse(&argv("faas --arrivals bursty:2 --record-out day.nbt")).unwrap()
        else {
            panic!("expected faas");
        };
        assert_eq!(
            f.frontdoor.expect("front-door mode").record_out.as_deref(),
            Some("day.nbt")
        );
        // Recording is a front-door flag, writes binary (no '-'), and
        // captures exactly one run (no --curve).
        assert!(parse(&argv("faas --record-out day.nbt")).is_err());
        assert!(parse(&argv("faas --arrivals steady --record-out -")).is_err());
        assert!(parse(&argv("faas --arrivals steady --curve 1,2 --record-out d.nbt")).is_err());

        let Command::Run(run) = parse(&argv("run --record-out stim.nbt")).unwrap() else {
            panic!("expected run");
        };
        assert_eq!(run.record_out.as_deref(), Some("stim.nbt"));
        assert!(parse(&argv("run --record-out -")).is_err());

        let Command::Cluster(c) =
            parse(&argv("cluster --boards 4 --record-out stim.nbt")).unwrap()
        else {
            panic!("expected cluster");
        };
        assert_eq!(c.record_out.as_deref(), Some("stim.nbt"));
        assert!(parse(&argv("cluster --record-out -")).is_err());
    }

    #[test]
    fn all_scheduler_names_parse() {
        for name in [
            "nosharing",
            "fcfs",
            "rr",
            "prema",
            "prema-backfill",
            "sjf",
            "edf",
            "nimblock",
            "nimblock-nopreempt",
            "nimblock-nopipe",
            "nimblock-nopreempt-nopipe",
        ] {
            assert!(SchedulerKind::parse(name).is_ok(), "{name}");
        }
        assert!(SchedulerKind::parse("premature").is_err());
    }

    #[test]
    fn errors_are_descriptive() {
        let err = parse(&argv("run --scheduler")).unwrap_err();
        assert!(err.to_string().contains("needs a value"));
        let err = parse(&argv("run --frobnicate")).unwrap_err();
        assert!(err.to_string().contains("unknown flag"));
        let err = parse(&argv("launch")).unwrap_err();
        assert!(err.to_string().contains("unknown command"));
        let err = parse(&argv("run --events many")).unwrap_err();
        assert!(err.to_string().contains("cannot parse"));
    }
}
