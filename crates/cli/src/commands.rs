//! Command execution.

use std::fs;
use std::io::Write;

use nimblock_core::Testbed;
use nimblock_fpga::DeviceConfig;
use nimblock_metrics::{fmt3, harmonic_speedup, Summary, TextTable};
use nimblock_sim::SimDuration;
use nimblock_workload::{fixed_batch_sequence, generate, EventSequence};

use crate::args::{
    AnalyzeArgs, AnalyzeTarget, ClusterArgs, Command, CompareArgs, FaasArgs, GenerateArgs,
    RunArgs, SchedulerKind, StimulusArgs, TraceFormat,
};
use crate::CliError;

/// Builds the stimulus described by `args`: generated from a scenario, a
/// fixed-batch generator, or loaded from a JSON file.
///
/// # Errors
///
/// Returns a [`CliError`] if an `--input` file cannot be read or parsed.
pub fn make_sequence(args: &StimulusArgs) -> Result<EventSequence, CliError> {
    if let Some(path) = &args.input {
        return load_sequence(path);
    }
    Ok(match args.batch {
        Some(batch) => fixed_batch_sequence(
            args.seed,
            args.events,
            batch,
            SimDuration::from_millis(args.delay_ms),
        ),
        None => generate(args.seed, args.events, args.scenario),
    })
}

/// Loads an [`EventSequence`] from a JSON file.
///
/// # Errors
///
/// Returns a [`CliError`] describing the I/O or parse failure.
pub fn load_sequence(path: &str) -> Result<EventSequence, CliError> {
    let text = fs::read_to_string(path)
        .map_err(|e| CliError(format!("cannot read {path}: {e}")))?;
    nimblock_ser::from_str(&text).map_err(|e| CliError(format!("cannot parse {path}: {e}")))
}

/// Best-effort text of a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(message) = payload.downcast_ref::<&str>() {
        (*message).to_owned()
    } else if let Some(message) = payload.downcast_ref::<String>() {
        message.clone()
    } else {
        "unknown panic".to_owned()
    }
}

fn write_output(path: &str, contents: &str, out: &mut dyn Write) -> Result<(), CliError> {
    if path == "-" {
        writeln!(out, "{contents}").map_err(|e| CliError(e.to_string()))
    } else {
        fs::write(path, contents).map_err(|e| CliError(format!("cannot write {path}: {e}")))
    }
}

/// Encodes a `run`/`cluster` stimulus as a compact engine-kind binary
/// trace: every arrival with its board placement, no admission control.
/// Serving-only header knobs stay zeroed; `analyze plan` needs a serving
/// trace, but the seekable wire format and reader are shared.
fn engine_stimulus_trace(
    events: &EventSequence,
    seed: u64,
    boards: u64,
    slots_per_board: u64,
    threads: u64,
    policy: &str,
    reconfig: SimDuration,
    assignments: Option<&[usize]>,
) -> Vec<u8> {
    use nimblock_app::Priority;
    use nimblock_obs::record::{
        TraceFunction, TraceHeader, TraceRecord, TraceVerdict, TraceWriter, KIND_ENGINE,
    };
    let mut header = TraceHeader::serving(seed);
    header.kind = KIND_ENGINE;
    header.process = "engine".to_owned();
    header.invocations = events.len() as u64;
    header.boards = boards;
    header.slots_per_board = slots_per_board;
    header.threads = threads;
    header.policy = policy.to_owned();
    header.reconfig_micros = reconfig.as_micros();
    header.max_items = events
        .events()
        .iter()
        .map(|e| u64::from(e.batch_size()))
        .max()
        .unwrap_or(1);
    let mut indices = Vec::with_capacity(events.len());
    for event in events.events() {
        let name = event.app().name();
        let index = match header.functions.iter().position(|f| f.name == name) {
            Some(index) => index,
            None => {
                // Class code = index into `SloClass::ALL` (strictest
                // first), recovered from the application's priority.
                let class = match event.priority() {
                    Priority::High => 0,
                    Priority::Medium => 1,
                    Priority::Low => 2,
                };
                header.functions.push(TraceFunction { name: name.to_owned(), class });
                header.functions.len() - 1
            }
        };
        indices.push(index as u32);
    }
    // The writer requires monotone arrivals; a loaded stimulus file may
    // be unsorted, so records go out in arrival order (stable, so equal
    // arrivals keep their stimulus order).
    let mut order: Vec<usize> = (0..events.len()).collect();
    order.sort_by_key(|&i| events.events()[i].arrival());
    let mut writer = TraceWriter::new(&header);
    for &i in &order {
        let event = &events.events()[i];
        writer.push(&TraceRecord {
            arrival_micros: event.arrival().as_micros(),
            function: indices[i],
            items: event.batch_size(),
            tenant: 0,
            verdict: TraceVerdict::Admit,
            warm: false,
            board: assignments.map_or(0, |a| a[i] as u32),
            queue_wait_micros: 0,
            work_micros: 0,
            reconfig_micros: 0,
        });
    }
    writer.finish(None)
}

/// Writes an engine stimulus trace and prints the one-line receipt.
fn write_engine_trace(path: &str, trace: &[u8], out: &mut dyn Write) -> Result<(), CliError> {
    fs::write(path, trace).map_err(|e| CliError(format!("cannot write {path}: {e}")))?;
    writeln!(out, "recorded stimulus trace written to {path} ({} bytes)", trace.len())
        .map_err(|e| CliError(e.to_string()))
}

fn run_command(args: &RunArgs, out: &mut dyn Write) -> Result<(), CliError> {
    let events = make_sequence(&args.stimulus)?;
    let config = DeviceConfig::zcu106().with_slot_count(args.slots);
    // With pre-loaded bitstreams (SD bandwidth 0) every reconfiguration takes
    // exactly the nominal CAP latency, so the invariant check can be exact.
    let exact_reconfig_latency = (config.sd_bandwidth_bytes_per_sec == 0)
        .then(|| nimblock_fpga::Device::new(config.clone()).nominal_reconfig_latency());
    if let Some(path) = &args.record_out {
        let trace = engine_stimulus_trace(
            &events,
            args.stimulus.seed,
            1,
            args.slots as u64,
            1,
            "",
            nimblock_fpga::Device::new(config.clone()).nominal_reconfig_latency(),
            None,
        );
        write_engine_trace(path, &trace, out)?;
    }
    let mut testbed = Testbed::new(args.scheduler.build()).with_device_config(config);
    let registry = args.metrics_out.as_ref().map(|_| nimblock_obs::Registry::new());
    if let Some(registry) = &registry {
        testbed = testbed.with_metrics(registry.clone());
    }
    let monitor_config = if args.monitor.enabled() {
        Some(args.monitor.config()?)
    } else {
        None
    };
    let monitor = monitor_config
        .clone()
        .map(|config| nimblock_obs::MonitorHandle::new(config, 0));
    if let Some(monitor) = &monitor {
        testbed = testbed.with_monitor(monitor.clone());
    }
    let trace_format = args
        .trace_format
        .or_else(|| args.gantt.then_some(TraceFormat::Gantt));
    let run_it = move || {
        if trace_format.is_some() || args.check_invariants {
            let (report, trace) = testbed.run_traced(&events);
            (report, Some(trace))
        } else {
            (testbed.run(&events), None)
        }
    };
    // A monitored run survives a sim panic long enough to dump the
    // flight recorder: the handle's state is shared, so whatever was
    // aggregated before the panic is still there.
    let (report, trace) = if monitor.is_some() {
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(run_it)) {
            Ok(result) => result,
            Err(payload) => {
                let reason = panic_message(payload.as_ref());
                if let Some(path) = args.monitor.postmortem_out.as_deref() {
                    let mut doc = monitor.as_ref().expect("monitored run").to_doc();
                    doc.trigger = Some(format!("panic: {reason}"));
                    write_output(path, &nimblock_ser::to_string_pretty(&doc), out)?;
                }
                return Err(CliError(format!("simulation panicked: {reason}")));
            }
        }
    } else {
        run_it()
    };

    let responses: Vec<f64> = report
        .records()
        .iter()
        .map(|r| r.response_time().as_secs_f64())
        .collect();
    let summary = Summary::of(&responses);
    writeln!(
        out,
        "{}: {} applications on {} slots\n  response time (s): mean {} | median {} | p95 {} | p99 {} | max {}",
        report.scheduler(),
        report.records().len(),
        args.slots,
        fmt3(summary.mean),
        fmt3(summary.median),
        fmt3(summary.p95),
        fmt3(summary.p99),
        fmt3(summary.max),
    )
    .map_err(|e| CliError(e.to_string()))?;
    let preemptions: u32 = report.records().iter().map(|r| r.preemptions).sum();
    writeln!(out, "  makespan: {} | preemptions: {preemptions}", report.finished_at())
        .map_err(|e| CliError(e.to_string()))?;
    let counters = report.counters();
    let hit_rate = counters
        .cache_hit_rate()
        .map_or_else(|| "n/a".to_owned(), |r| fmt3(r));
    writeln!(
        out,
        "  counters: reconfigurations {} | alloc stalls {} | bitstream cache hit rate {hit_rate}",
        counters.reconfigurations, counters.alloc_stalls,
    )
    .map_err(|e| CliError(e.to_string()))?;

    if args.check_invariants {
        let trace = trace.as_ref().expect("run was traced for invariant checking");
        let mut invariant_config = nimblock_analyze::InvariantConfig::default();
        invariant_config.reconfig_latency = exact_reconfig_latency;
        let verdict = nimblock_analyze::verify_trace(trace, &invariant_config);
        if verdict.is_clean() {
            writeln!(
                out,
                "  invariants: ok ({} events, {} applications)",
                verdict.events_checked, verdict.apps_seen
            )
            .map_err(|e| CliError(e.to_string()))?;
        } else {
            writeln!(out, "{verdict}").map_err(|e| CliError(e.to_string()))?;
            // The flight-recorder payoff: the bundle carries the recent
            // windows, the event ring, and the failing app's span tree.
            if let Some(path) = args.monitor.postmortem_out.as_deref() {
                let first = verdict.violations.first();
                let trigger = first
                    .map(|v| format!("invariant: {} — {}", v.rule, v.message))
                    .unwrap_or_else(|| "invariant violation".to_owned());
                // Not every violation names an application (a bare slot
                // overlap doesn't); implicate the first one that does.
                let doc = nimblock_core::post_mortem(
                    trace,
                    monitor_config.clone().unwrap_or_default(),
                    &trigger,
                    verdict.violations.iter().find_map(|v| v.app),
                );
                write_output(path, &nimblock_ser::to_string_pretty(&doc), out)?;
                writeln!(out, "  post-mortem bundle written to {path}")
                    .map_err(|e| CliError(e.to_string()))?;
            }
            return Err(CliError(format!(
                "schedule violates {} invariant(s)",
                verdict.violations.len()
            )));
        }
    }

    if let Some(monitor) = &monitor {
        let doc = monitor.to_doc();
        if !doc.rules.is_empty() {
            writeln!(
                out,
                "  slo: {} rule(s) evaluated over {} window(s), {} alert(s) fired",
                doc.rules.len(),
                doc.windows.len(),
                doc.alerts.len(),
            )
            .map_err(|e| CliError(e.to_string()))?;
        }
        if let Some(path) = &args.monitor.timeseries_out {
            write_output(path, &nimblock_ser::to_string_pretty(&doc), out)?;
        }
    }

    if let (Some(format), Some(trace)) = (trace_format, &trace) {
        let rendered = match format {
            TraceFormat::Json => nimblock_ser::to_string_pretty(trace),
            TraceFormat::Chrome => trace.to_chrome(),
            TraceFormat::Gantt => trace.gantt(100),
        };
        match args.trace_out.as_deref() {
            None | Some("-") => {
                writeln!(out, "\n{rendered}").map_err(|e| CliError(e.to_string()))?
            }
            Some(path) => write_output(path, &rendered, out)?,
        }
    }
    if let Some(path) = &args.json {
        let json = nimblock_ser::to_string_pretty(&report);
        write_output(path, &json, out)?;
    }
    if let (Some(path), Some(registry)) = (&args.metrics_out, &registry) {
        write_output(path, &registry.render_prometheus(), out)?;
    }
    Ok(())
}

fn generate_command(args: &GenerateArgs, out: &mut dyn Write) -> Result<(), CliError> {
    let events = make_sequence(&args.stimulus)?;
    let json = nimblock_ser::to_string_pretty(&events);
    write_output(&args.output, &json, out)?;
    if args.output != "-" {
        writeln!(out, "wrote {} events to {}", events.len(), args.output)
            .map_err(|e| CliError(e.to_string()))?;
    }
    Ok(())
}

fn compare_command(args: &CompareArgs, out: &mut dyn Write) -> Result<(), CliError> {
    let events = make_sequence(&args.stimulus)?;
    let config = DeviceConfig::zcu106().with_slot_count(args.slots);
    let baseline = Testbed::new(SchedulerKind::NoSharing.build())
        .with_device_config(config.clone())
        .run(&events);
    let mut table = TextTable::new(vec!["scheduler", "mean resp (s)", "reduction", "p95 (s)"]);
    let roster = [
        SchedulerKind::NoSharing,
        SchedulerKind::Fcfs,
        SchedulerKind::RoundRobin,
        SchedulerKind::Prema,
        SchedulerKind::Sjf,
        SchedulerKind::Edf,
        SchedulerKind::Nimblock,
    ];
    for kind in roster {
        let report = if kind == SchedulerKind::NoSharing {
            baseline.clone()
        } else {
            Testbed::new(kind.build())
                .with_device_config(config.clone())
                .run(&events)
        };
        let responses: Vec<f64> = report
            .records()
            .iter()
            .map(|r| r.response_time().as_secs_f64())
            .collect();
        let summary = Summary::of(&responses);
        table.row(vec![
            report.scheduler().to_owned(),
            fmt3(summary.mean),
            format!("{}x", fmt3(harmonic_speedup(&baseline, &report))),
            fmt3(summary.p95),
        ]);
    }
    write!(out, "{table}").map_err(|e| CliError(e.to_string()))
}

/// Renders a [`TextTable`] as a GitHub-flavoured markdown pipe table.
fn markdown_table(table: &TextTable) -> String {
    let mut text = String::new();
    text.push_str(&format!("| {} |\n", table.headers().join(" | ")));
    text.push_str(&format!("|{}\n", "---|".repeat(table.headers().len())));
    for row in table.rows() {
        text.push_str(&format!("| {} |\n", row.join(" | ")));
    }
    text
}

fn front_door_command(
    args: &FaasArgs,
    door: &crate::args::FrontDoorArgs,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    use nimblock_faas::{FrontDoor, FrontDoorConfig, FunctionRegistry, TenantPolicy};

    let mut config = FrontDoorConfig::new(args.seed);
    config.invocations =
        u64::try_from(args.invocations).expect("invocation count fits in u64");
    config.process = nimblock_workload::ArrivalProcess::parse(&door.arrivals)
        .map_err(|e| CliError(format!("--arrivals: {e}")))?;
    config.tenants = door.tenants;
    config.tenant_policy = TenantPolicy {
        rate_per_sec: door.rate_limit,
        burst: door.burst,
        quota: door.quota,
    };
    config.boards = door.boards;
    config.slots_per_board = door.slots;
    config.threads = door.threads;
    config.shed_horizon = SimDuration::from_millis(door.shed_horizon_ms);
    config.max_items = door.max_items;

    let registry = door.metrics_out.as_ref().map(|_| nimblock_obs::Registry::new());
    let mut front = FrontDoor::new(FunctionRegistry::benchmark_suite(), config);
    if let Some(registry) = &registry {
        front = front.with_metrics(registry.clone());
    }

    if let Some(factors) = &door.curve {
        let curve = front.run_curve(factors);
        let rendered = match door.format {
            nimblock_analyze::ExplainFormat::Json => nimblock_ser::to_string_pretty(&curve),
            nimblock_analyze::ExplainFormat::Markdown => {
                format!("# SLO attainment curve\n\n{}", markdown_table(&curve.to_table()))
            }
            nimblock_analyze::ExplainFormat::Text => curve.to_table().to_string(),
        };
        match door.curve_out.as_deref() {
            None | Some("-") => {
                writeln!(out, "{rendered}").map_err(|e| CliError(e.to_string()))?
            }
            Some(path) => write_output(path, &rendered, out)?,
        }
        let monotone = curve.attainment_monotone(0.02);
        writeln!(
            out,
            "curve: {} point(s), offered attainment {}",
            curve.points.len(),
            if monotone { "monotone non-increasing" } else { "NOT monotone" },
        )
        .map_err(|e| CliError(e.to_string()))?;
        for point in &curve.points {
            if !point.counters.conserves() {
                return Err(CliError(format!(
                    "conservation violated at load {}",
                    point.load_factor
                )));
            }
        }
        return Ok(());
    }

    let report = match door.record_out.as_deref() {
        Some(path) => {
            let (report, trace) = front.run_recorded(door.load);
            fs::write(path, &trace)
                .map_err(|e| CliError(format!("cannot write {path}: {e}")))?;
            writeln!(
                out,
                "recorded {} invocation(s) to {path} ({} bytes)",
                report.counters.offered,
                trace.len(),
            )
            .map_err(|e| CliError(e.to_string()))?;
            report
        }
        None => front.run_at_load(door.load),
    };
    let counters = &report.counters;
    writeln!(
        out,
        "front door: {} offered at {} (load {}), {} tenant(s), {} board(s) x {} slot(s)",
        counters.offered,
        door.arrivals,
        door.load,
        door.tenants,
        door.boards,
        door.slots,
    )
    .map_err(|e| CliError(e.to_string()))?;
    writeln!(
        out,
        "  admitted {} | shed {} (backlog {}, deadline {}) | rejected {} (rate {}, quota {})",
        counters.admitted,
        counters.shed(),
        counters.shed_backlog,
        counters.shed_deadline,
        counters.rejected(),
        counters.rejected_rate,
        counters.rejected_quota,
    )
    .map_err(|e| CliError(e.to_string()))?;
    writeln!(
        out,
        "  conservation: {} (offered = admitted + shed + rejected)",
        if report.conserves() { "exact" } else { "VIOLATED" },
    )
    .map_err(|e| CliError(e.to_string()))?;
    writeln!(
        out,
        "  goodput {}/s | attainment {} | offered attainment {} | peak buffered {} | virtual {}s",
        fmt3(report.goodput_per_sec),
        fmt3(report.attainment),
        fmt3(report.offered_attainment),
        report.peak_buffered,
        fmt3(report.virtual_secs),
    )
    .map_err(|e| CliError(e.to_string()))?;
    writeln!(
        out,
        "  shed-alert: {}",
        if report.shed_alert() { "fired" } else { "quiet" },
    )
    .map_err(|e| CliError(e.to_string()))?;

    let mut classes = TextTable::new(vec![
        "class", "admitted", "within-slo", "shed", "p50 (ms)", "p95 (ms)", "p99 (ms)",
        "attainment",
    ]);
    for class in &report.classes {
        classes.row(vec![
            class.class_name.clone(),
            class.admitted.to_string(),
            class.within_slo.to_string(),
            class.shed.to_string(),
            (class.p50_response_micros / 1_000).to_string(),
            (class.p95_response_micros / 1_000).to_string(),
            (class.p99_response_micros / 1_000).to_string(),
            fmt3(class.attainment()),
        ]);
    }
    let mut tenants = TextTable::new(vec![
        "tenant", "offered", "admitted", "rej-rate", "rej-quota", "peak in-flight",
    ]);
    for tenant in &report.tenants {
        tenants.row(vec![
            tenant.tenant.to_string(),
            tenant.offered.to_string(),
            tenant.admitted.to_string(),
            tenant.rejected_rate.to_string(),
            tenant.rejected_quota.to_string(),
            tenant.peak_in_flight.to_string(),
        ]);
    }
    match door.format {
        nimblock_analyze::ExplainFormat::Markdown => {
            write!(
                out,
                "\n## Classes\n\n{}\n## Tenants\n\n{}",
                markdown_table(&classes),
                markdown_table(&tenants),
            )
            .map_err(|e| CliError(e.to_string()))?;
        }
        _ => {
            write!(out, "{classes}{tenants}").map_err(|e| CliError(e.to_string()))?;
        }
    }
    for explanation in &report.shed_explanations {
        if explanation.sheds == 0 {
            continue;
        }
        let c = &explanation.components;
        writeln!(
            out,
            "  shed[{}]: {} shed(s); components queue_wait {} + cap {} + reconfig {} + \
             compute {} + preempt {} - overlap {} us vs budget {} us",
            explanation.class_name,
            explanation.sheds,
            c.queue_wait,
            c.cap_serialization,
            c.reconfig,
            c.compute,
            c.preemption_loss,
            c.pipeline_overlap_gain,
            explanation.budget_micros,
        )
        .map_err(|e| CliError(e.to_string()))?;
    }
    if let Some(path) = &door.json {
        write_output(path, &nimblock_ser::to_string_pretty(&report), out)?;
    }
    if let (Some(path), Some(registry)) = (&door.metrics_out, &registry) {
        write_output(path, &registry.render_prometheus(), out)?;
    }
    if !report.conserves() {
        return Err(CliError("serving counters do not conserve invocations".to_owned()));
    }
    Ok(())
}

fn faas_command(args: &FaasArgs, out: &mut dyn Write) -> Result<(), CliError> {
    use nimblock_faas::{FaasGateway, FunctionRegistry, InvocationWorkload};
    if let Some(door) = &args.frontdoor {
        return front_door_command(args, door, out);
    }
    let gateway = FaasGateway::new(FunctionRegistry::benchmark_suite());
    let workload = InvocationWorkload::new(args.seed)
        .invocations(args.invocations)
        .mean_gap_millis(args.mean_gap_ms);
    let summary = gateway.run(&workload, args.scheduler.build());
    writeln!(
        out,
        "{}: {} invocations, overall SLO attainment {}",
        summary.scheduler(),
        summary.total_invocations(),
        fmt3(summary.overall_attainment())
    )
    .map_err(|e| CliError(e.to_string()))?;
    let mut table = TextTable::new(vec![
        "function", "class", "invocations", "mean (s)", "p95 (s)", "SLO attainment",
    ]);
    for stats in summary.per_function() {
        table.row(vec![
            stats.function.clone(),
            stats.slo.to_string(),
            stats.invocations.to_string(),
            fmt3(stats.mean_latency_secs),
            fmt3(stats.p95_latency_secs),
            fmt3(stats.slo_attainment),
        ]);
    }
    write!(out, "{table}").map_err(|e| CliError(e.to_string()))
}

fn cluster_command(args: &ClusterArgs, out: &mut dyn Write) -> Result<(), CliError> {
    use nimblock_cluster::ClusterTestbed;
    let events = make_sequence(&args.stimulus)?;
    let scheduler = args.scheduler;
    let factory = move || scheduler.build();
    if args.sweep_boards.is_some() && args.monitor.enabled() {
        return Err(CliError(
            "monitoring flags are not supported with --sweep-boards \
             (one document per run; sweep runs many)"
                .to_owned(),
        ));
    }
    if args.sweep_boards.is_some() && args.record_out.is_some() {
        return Err(CliError(
            "--record-out is not supported with --sweep-boards \
             (one trace per run; sweep runs many)"
                .to_owned(),
        ));
    }
    if let Some(sweep) = &args.sweep_boards {
        let mut table = TextTable::new(vec![
            "boards", "mean resp (s)", "p95 (s)", "makespan", "loads",
        ]);
        for &boards in sweep {
            let report = ClusterTestbed::new(boards, args.dispatch, factory)
                .with_threads(args.threads)
                .run(&events);
            let responses: Vec<f64> = report
                .merged()
                .records()
                .iter()
                .map(|r| r.response_time().as_secs_f64())
                .collect();
            let summary = Summary::of(&responses);
            table.row(vec![
                boards.to_string(),
                fmt3(summary.mean),
                fmt3(summary.p95),
                report.merged().finished_at().to_string(),
                format!("{:?}", report.board_loads()),
            ]);
        }
        writeln!(
            out,
            "cluster sweep ({scheduler:?}, {dispatch}, {events} events, threads {threads})",
            scheduler = args.scheduler,
            dispatch = args.dispatch.name(),
            events = events.len(),
            threads = args.threads,
        )
        .map_err(|e| CliError(e.to_string()))?;
        return write!(out, "{table}").map_err(|e| CliError(e.to_string()));
    }
    let mut cluster = ClusterTestbed::new(args.boards, args.dispatch, factory)
        .with_threads(args.threads);
    if args.monitor.enabled() {
        cluster = cluster.with_monitor(args.monitor.config()?);
    }
    let report = cluster.run(&events);
    if let Some(path) = &args.record_out {
        let config = DeviceConfig::zcu106();
        let slots = config.slot_count as u64;
        let trace = engine_stimulus_trace(
            &events,
            args.stimulus.seed,
            args.boards as u64,
            slots,
            args.threads as u64,
            args.dispatch.name(),
            nimblock_fpga::Device::new(config).nominal_reconfig_latency(),
            Some(report.assignments()),
        );
        write_engine_trace(path, &trace, out)?;
    }
    writeln!(
        out,
        "{}: mean response {}s over {} events; per-board loads {:?}",
        report.merged().scheduler(),
        fmt3(report.merged().mean_response_secs()),
        report.merged().records().len(),
        report.board_loads(),
    )
    .map_err(|e| CliError(e.to_string()))?;
    if let Some(doc) = report.monitor() {
        if !doc.rules.is_empty() {
            writeln!(
                out,
                "  slo: {} rule(s) evaluated over {} merged window(s), {} alert(s) fired",
                doc.rules.len(),
                doc.windows.len(),
                doc.alerts.len(),
            )
            .map_err(|e| CliError(e.to_string()))?;
        }
        if let Some(path) = &args.monitor.timeseries_out {
            write_output(path, &nimblock_ser::to_string_pretty(doc), out)?;
        }
    }
    Ok(())
}

fn analyze_command(args: &AnalyzeArgs, out: &mut dyn Write) -> Result<(), CliError> {
    match &args.target {
        AnalyzeTarget::Lint { root } => {
            let report = nimblock_analyze::lint_tree(std::path::Path::new(root))
                .map_err(|e| CliError(format!("cannot lint {root}: {e}")))?;
            if args.json {
                writeln!(out, "{}", nimblock_ser::to_string_pretty(&report))
                    .map_err(|e| CliError(e.to_string()))?;
            } else {
                writeln!(out, "{report}").map_err(|e| CliError(e.to_string()))?;
            }
            if report.is_clean() {
                Ok(())
            } else {
                Err(CliError(format!("lint reported {} finding(s)", report.diags.len())))
            }
        }
        AnalyzeTarget::Deep { root, format, graph_out } => {
            let analysis = nimblock_analyze::deep_tree(std::path::Path::new(root))
                .map_err(|e| CliError(format!("cannot analyze {root}: {e}")))?;
            if let Some(path) = graph_out {
                fs::write(path, &analysis.dot)
                    .map_err(|e| CliError(format!("cannot write {path}: {e}")))?;
            }
            write!(out, "{}", analysis.report.render(*format))
                .map_err(|e| CliError(e.to_string()))?;
            if analysis.report.is_clean() {
                Ok(())
            } else {
                Err(CliError(format!(
                    "deep analysis reported {} finding(s), {} lint finding(s), {} stale suppression(s)",
                    analysis.report.findings.len(),
                    analysis.report.lint.len(),
                    analysis.report.unused_suppressions.len()
                )))
            }
        }
        AnalyzeTarget::Trace { path, mechanism_only } => {
            let text = fs::read_to_string(path)
                .map_err(|e| CliError(format!("cannot read {path}: {e}")))?;
            let trace: nimblock_core::Trace = nimblock_ser::from_str(&text)
                .map_err(|e| CliError(format!("{path} is not a serialized trace: {e}")))?;
            let config = if *mechanism_only {
                nimblock_analyze::InvariantConfig::mechanism_only()
            } else {
                nimblock_analyze::InvariantConfig::default()
            };
            let report = nimblock_analyze::verify_trace(&trace, &config);
            if args.json {
                writeln!(out, "{}", nimblock_ser::to_string_pretty(&report))
                    .map_err(|e| CliError(e.to_string()))?;
            } else if report.is_clean() {
                writeln!(
                    out,
                    "ok: {} event(s), {} application(s), all invariants hold",
                    report.events_checked, report.apps_seen
                )
                .map_err(|e| CliError(e.to_string()))?;
            } else {
                writeln!(out, "{report}").map_err(|e| CliError(e.to_string()))?;
            }
            if report.is_clean() {
                Ok(())
            } else {
                Err(CliError(format!(
                    "trace violates {} invariant(s)",
                    report.violations.len()
                )))
            }
        }
        AnalyzeTarget::Monitor { path, format } => {
            let text = fs::read_to_string(path)
                .map_err(|e| CliError(format!("cannot read {path}: {e}")))?;
            let doc: nimblock_obs::MonitorDoc = nimblock_ser::from_str(&text)
                .map_err(|e| CliError(format!("{path} is not a monitoring document: {e}")))?;
            write!(out, "{}", nimblock_analyze::render_monitor(&doc, *format))
                .map_err(|e| CliError(e.to_string()))
            // Fired alerts describe the run, not this command: rendering
            // an alert-bearing document is still a clean exit.
        }
        AnalyzeTarget::Plan { path, sweeps, slo, replays, format, out: plan_out } => {
            let trace = fs::read(path)
                .map_err(|e| CliError(format!("cannot read {path}: {e}")))?;
            let options = nimblock_plan::PlanOptions {
                sweeps: sweeps.clone(),
                slo_target: *slo,
                replays: *replays,
            };
            let report = nimblock_plan::plan(&trace, &options).map_err(CliError)?;
            let plan_format = match format {
                nimblock_analyze::ExplainFormat::Text => nimblock_plan::PlanFormat::Text,
                nimblock_analyze::ExplainFormat::Markdown => nimblock_plan::PlanFormat::Markdown,
                nimblock_analyze::ExplainFormat::Json => nimblock_plan::PlanFormat::Json,
            };
            let rendered = nimblock_plan::render_plan(&report, plan_format);
            match plan_out.as_deref() {
                None | Some("-") => {
                    write!(out, "{rendered}").map_err(|e| CliError(e.to_string()))?
                }
                Some(path) => write_output(path, &rendered, out)?,
            }
            // A failed byte-identity check means the planner's replay did
            // not reproduce the recorded day — none of its counterfactual
            // predictions can be trusted, so the command fails.
            if report.replay_check == "MISMATCH" {
                return Err(CliError(
                    "exact replay of the recorded configuration did not reproduce \
                     the embedded report byte-for-byte"
                        .to_owned(),
                ));
            }
            Ok(())
        }
        AnalyzeTarget::Explain { path, format, top } => {
            let text = fs::read_to_string(path)
                .map_err(|e| CliError(format!("cannot read {path}: {e}")))?;
            let trace: nimblock_core::Trace = nimblock_ser::from_str(&text)
                .map_err(|e| CliError(format!("{path} is not a serialized trace: {e}")))?;
            let explain = nimblock_analyze::explain_trace(&trace);
            write!(out, "{}", explain.render(*format, *top))
                .map_err(|e| CliError(e.to_string()))?;
            if explain.is_exact() {
                Ok(())
            } else {
                Err(CliError(
                    "attribution components do not sum to the measured response times"
                        .to_owned(),
                ))
            }
        }
    }
}

/// Executes a parsed command, writing human-readable output to `out`.
///
/// # Errors
///
/// Propagates I/O, parse, and serialization failures as [`CliError`].
pub fn execute(command: &Command, out: &mut dyn Write) -> Result<(), CliError> {
    match command {
        Command::Help => {
            write!(out, "{}", crate::USAGE).map_err(|e| CliError(e.to_string()))
        }
        Command::Generate(args) => generate_command(args, out),
        Command::Run(args) => run_command(args, out),
        Command::Compare(args) => compare_command(args, out),
        Command::Faas(args) => faas_command(args, out),
        Command::Cluster(args) => cluster_command(args, out),
        Command::Analyze(args) => analyze_command(args, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn argv(line: &str) -> Vec<String> {
        line.split_whitespace().map(str::to_owned).collect()
    }

    fn run_line(line: &str) -> String {
        let command = parse(&argv(line)).unwrap();
        let mut out = Vec::new();
        execute(&command, &mut out).unwrap();
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn run_prints_a_summary() {
        let output = run_line("run --scheduler fcfs --events 3 --seed 1");
        assert!(output.contains("FCFS: 3 applications"), "{output}");
        assert!(output.contains("mean"), "{output}");
    }

    #[test]
    fn generate_then_replay_roundtrips() {
        let dir = std::env::temp_dir().join("nimblock-cli-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stimulus.json");
        let path = path.to_str().unwrap();
        run_line(&format!("generate --batch 2 --delay-ms 100 --events 4 --output {path}"));
        let loaded = load_sequence(path).unwrap();
        assert_eq!(loaded.len(), 4);
        // Replaying the file gives the same report as generating in-process.
        let from_file = run_line(&format!("run --scheduler rr --input {path}"));
        let generated = run_line("run --scheduler rr --batch 2 --delay-ms 100 --events 4");
        assert_eq!(from_file, generated);
    }

    #[test]
    fn json_report_is_valid() {
        let output = run_line("run --scheduler nimblock --events 2 --seed 5 --json -");
        let json_start = output.find('{').expect("json in output");
        let value = nimblock_ser::parse(output[json_start..].trim()).unwrap();
        assert!(value.get("records").is_some());
    }

    #[test]
    fn gantt_renders_slot_rows() {
        let output = run_line("run --scheduler nimblock --events 2 --seed 5 --slots 4 --gantt");
        assert!(output.contains("slot#0"), "{output}");
        assert!(output.contains("slot#3"), "{output}");
    }

    #[test]
    fn run_prints_counters_without_any_flags() {
        let output = run_line("run --scheduler nimblock --events 3 --seed 1");
        assert!(output.contains("counters: reconfigurations"), "{output}");
        assert!(output.contains("bitstream cache hit rate"), "{output}");
    }

    #[test]
    fn metrics_out_renders_valid_prometheus() {
        let output = run_line("run --scheduler nimblock --events 3 --seed 1 --metrics-out -");
        let start = output.find("# HELP").expect("prometheus text in output");
        let count = nimblock_obs::validate_prometheus(&output[start..]).unwrap();
        assert!(count > 5, "expected several series, got {count}");
        assert!(output.contains("hv_arrivals_total 3"), "{output}");
    }

    #[test]
    fn chrome_trace_export_is_valid() {
        let output =
            run_line("run --scheduler nimblock --events 2 --seed 5 --trace-format chrome");
        let start = output.find('{').expect("chrome json in output");
        nimblock_obs::validate_chrome_trace(output[start..].trim()).unwrap();
    }

    #[test]
    fn trace_format_json_roundtrips() {
        let output = run_line("run --scheduler fcfs --events 2 --seed 5 --trace-format json");
        let start = output.find('{').expect("trace json in output");
        let trace: nimblock_core::Trace =
            nimblock_ser::from_str(output[start..].trim()).unwrap();
        trace.validate().unwrap();
        assert!(!trace.events().is_empty());
    }

    #[test]
    fn compare_lists_all_schedulers() {
        let output = run_line("compare --events 3 --seed 2 --batch 2 --delay-ms 200");
        for name in ["NoSharing", "FCFS", "RR", "PREMA", "SJF", "EDF", "Nimblock"] {
            assert!(output.contains(name), "missing {name} in\n{output}");
        }
    }

    #[test]
    fn faas_command_reports_attainment() {
        let output = run_line("faas --invocations 10 --seed 4 --scheduler fcfs");
        assert!(output.contains("SLO attainment"), "{output}");
        assert!(output.contains("FCFS: 10 invocations"), "{output}");
    }

    #[test]
    fn faas_front_door_reports_conservation_and_sheds() {
        // Deep overload with a tight horizon: sheds and rate rejections both
        // fire, and the conservation line renders as exact.
        let output = run_line(
            "faas --arrivals bursty:2000 --invocations 2000 --seed 11 \
             --shed-horizon-ms 200 --rate-limit 300 --burst 32",
        );
        assert!(output.contains("conservation: exact"), "{output}");
        assert!(output.contains("shed-alert: fired"), "{output}");
        assert!(output.contains("front door: 2000 offered"), "{output}");
        assert!(output.contains("class"), "{output}");
        assert!(output.contains("tenant"), "{output}");
        assert!(output.contains("shed[latency]"), "{output}");
    }

    #[test]
    fn faas_front_door_output_is_thread_count_invariant() {
        let base = "faas --arrivals steady:0.05 --invocations 400 --seed 17 \
                    --shed-horizon-ms 60000";
        let sequential = run_line(&format!("{base} --cluster-threads 1"));
        for threads in [2, 8, 0] {
            let parallel = run_line(&format!("{base} --cluster-threads {threads}"));
            assert_eq!(sequential, parallel, "threads={threads}");
        }
    }

    #[test]
    fn faas_front_door_renders_curves_in_every_format() {
        let base = "faas --arrivals steady:0.05 --invocations 300 --seed 31 \
                    --shed-horizon-ms 60000 --curve 0.25,4";
        let text = run_line(base);
        assert!(text.contains("offered-slo"), "{text}");
        assert!(text.contains("monotone non-increasing"), "{text}");
        let md = run_line(&format!("{base} --format md"));
        assert!(md.contains("# SLO attainment curve"), "{md}");
        assert!(md.contains("| load |"), "{md}");
        let json = run_line(&format!("{base} --format json"));
        let start = json.find('{').expect("curve json in output");
        let end = json.rfind('}').expect("curve json in output");
        let curve: nimblock_metrics::SloCurve =
            nimblock_ser::from_str(&json[start..=end]).unwrap();
        assert_eq!(curve.points.len(), 2);
    }

    #[test]
    fn faas_front_door_writes_json_and_metrics() {
        let dir = std::env::temp_dir().join("nimblock-cli-frontdoor-test");
        fs::create_dir_all(&dir).unwrap();
        let report_path = dir.join("report.json");
        let report_path = report_path.to_str().unwrap();
        let output = run_line(&format!(
            "faas --arrivals bursty:2000 --invocations 1000 --seed 7 \
             --shed-horizon-ms 200 --json {report_path} --metrics-out -"
        ));
        let report: nimblock_faas::FrontDoorReport =
            nimblock_ser::from_str(&fs::read_to_string(report_path).unwrap()).unwrap();
        assert!(report.conserves());
        assert_eq!(report.counters.offered, 1000);
        let start = output.find("# HELP").expect("prometheus text in output");
        let count = nimblock_obs::validate_prometheus(&output[start..]).unwrap();
        assert!(count > 5, "expected several series, got {count}");
        assert!(output.contains("faas_offered_total 1000"), "{output}");
    }

    #[test]
    fn cluster_command_reports_loads() {
        let output = run_line("cluster --boards 3 --events 6 --seed 8 --batch 2 --delay-ms 100");
        assert!(output.contains("cluster(3x"), "{output}");
        assert!(output.contains("per-board loads"), "{output}");
    }

    #[test]
    fn cluster_output_is_thread_count_invariant() {
        // The CLI-level determinism oracle: any --cluster-threads value
        // prints the same bytes.
        let base = "cluster --boards 4 --events 8 --seed 13 --dispatch least-outstanding";
        let sequential = run_line(&format!("{base} --cluster-threads 1"));
        for threads in [2, 8, 0] {
            let parallel = run_line(&format!("{base} --cluster-threads {threads}"));
            assert_eq!(sequential, parallel, "threads={threads}");
        }
    }

    #[test]
    fn cluster_sweep_tabulates_board_counts() {
        let output = run_line(
            "cluster --sweep-boards 1,2,4 --events 6 --seed 8 --batch 2 --delay-ms 100 \
             --cluster-threads 2 --dispatch rr",
        );
        assert!(output.contains("cluster sweep"), "{output}");
        assert!(output.contains("boards"), "{output}");
        for count in ["1", "2", "4"] {
            assert!(output.contains(count), "missing boards={count}:\n{output}");
        }
    }

    #[test]
    fn help_prints_usage() {
        let output = run_line("help");
        assert!(output.contains("USAGE"));
    }

    #[test]
    fn check_invariants_passes_for_every_paper_scheduler() {
        // The acceptance bar: all five evaluated policies produce schedules
        // that hold every invariant on a fig5-style stress workload.
        for scheduler in ["nosharing", "fcfs", "rr", "prema", "nimblock"] {
            let output = run_line(&format!(
                "run --scheduler {scheduler} --scenario stress --events 8 --seed 23 \
                 --check-invariants"
            ));
            assert!(
                output.contains("invariants: ok"),
                "{scheduler} failed the invariant check:\n{output}"
            );
        }
    }

    #[test]
    fn check_invariants_composes_with_telemetry_flags() {
        let output = run_line(
            "run --scheduler nimblock --batch 2 --delay-ms 100 --events 3 --seed 7 \
             --check-invariants --trace-format gantt",
        );
        assert!(output.contains("invariants: ok"), "{output}");
        assert!(output.contains("slot#0"), "{output}");
    }

    #[test]
    fn analyze_trace_verifies_an_exported_trace() {
        let dir = std::env::temp_dir().join("nimblock-cli-analyze-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        let path = path.to_str().unwrap();
        run_line(&format!(
            "run --scheduler nimblock --events 4 --seed 11 \
             --trace-format json --trace-out {path}"
        ));
        let output = run_line(&format!("analyze trace {path}"));
        assert!(output.contains("all invariants hold"), "{output}");
        let json = run_line(&format!("analyze trace {path} --json"));
        let start = json.find('{').expect("json in output");
        let report: nimblock_analyze::InvariantReport =
            nimblock_ser::from_str(json[start..].trim()).unwrap();
        assert!(report.is_clean());
        assert!(report.events_checked > 0);
    }

    #[test]
    fn analyze_explain_attributes_an_exported_trace() {
        let dir = std::env::temp_dir().join("nimblock-cli-explain-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        let path = path.to_str().unwrap();
        run_line(&format!(
            "run --scheduler nimblock --scenario stress --events 6 --seed 3 \
             --trace-format json --trace-out {path}"
        ));
        let text = run_line(&format!("analyze explain {path} --top 2"));
        assert!(text.contains("exact decomposition: yes"), "{text}");
        assert!(text.contains("queue_wait"), "{text}");
        assert!(text.contains("critical path of"), "{text}");
        let md = run_line(&format!("analyze explain {path} --format md"));
        assert!(md.starts_with("# Response-time attribution"), "{md}");
        let json = run_line(&format!("analyze explain {path} --format json"));
        let value = nimblock_ser::parse(json.trim()).unwrap();
        assert_eq!(value.get("exact"), Some(&nimblock_ser::Json::Bool(true)));
        let summary: nimblock_metrics::AttributionSummary =
            nimblock_ser::FromJson::from_json(value.get("summary").unwrap()).unwrap();
        assert!(summary.is_exact());
        assert_eq!(summary.apps.len(), 6);
    }

    #[test]
    fn analyze_trace_rejects_garbage_and_missing_files() {
        let command = parse(&argv("analyze trace /nonexistent/t.json")).unwrap();
        let mut out = Vec::new();
        let err = execute(&command, &mut out).unwrap_err();
        assert!(err.to_string().contains("cannot read"));

        let dir = std::env::temp_dir().join("nimblock-cli-analyze-garbage");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("not-a-trace.json");
        fs::write(&path, "{\"events\": 42}").unwrap();
        let command =
            parse(&argv(&format!("analyze trace {}", path.display()))).unwrap();
        let mut out = Vec::new();
        let err = execute(&command, &mut out).unwrap_err();
        assert!(err.to_string().contains("not a serialized trace"), "{err}");
    }

    #[test]
    fn analyze_command_lines_parse() {
        use crate::args::{AnalyzeArgs, AnalyzeTarget};
        assert_eq!(
            parse(&argv("analyze lint --root sub/dir --json")).unwrap(),
            Command::Analyze(AnalyzeArgs {
                target: AnalyzeTarget::Lint { root: "sub/dir".into() },
                json: true,
            })
        );
        assert_eq!(
            parse(&argv("analyze trace t.json --mechanism-only")).unwrap(),
            Command::Analyze(AnalyzeArgs {
                target: AnalyzeTarget::Trace {
                    path: "t.json".into(),
                    mechanism_only: true,
                },
                json: false,
            })
        );
        assert!(parse(&argv("analyze")).is_err());
        assert!(parse(&argv("analyze frobnicate")).is_err());
        assert!(parse(&argv("analyze trace")).is_err());
    }

    #[test]
    fn faas_record_then_analyze_plan_forecasts_capacity() {
        let dir = std::env::temp_dir().join("nimblock-cli-plan-test");
        fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("day.nbt");
        let trace = trace.to_str().unwrap();
        let output = run_line(&format!(
            "faas --arrivals bursty:2000 --invocations 600 --seed 11 --shed-horizon-ms 200 \
             --rate-limit 300 --burst 32 --record-out {trace}"
        ));
        assert!(output.contains("recorded 600 invocation(s)"), "{output}");
        assert!(output.contains("conservation: exact"), "{output}");

        let text = run_line(&format!("analyze plan {trace} --sweep boards=2..5 --replays 2"));
        assert!(text.contains("capacity plan"), "{text}");
        assert!(text.contains("baseline replay byte-identical"), "{text}");
        assert!(text.contains("error bound"), "{text}");
        let md = run_line(&format!(
            "analyze plan {trace} --sweep boards=4..5 --replays 1 --format md"
        ));
        assert!(md.starts_with("# Capacity plan"), "{md}");
        let json = run_line(&format!(
            "analyze plan {trace} --sweep boards=4..5 --replays 1 --format json"
        ));
        let report: nimblock_plan::PlanReport = nimblock_ser::from_str(json.trim()).unwrap();
        assert_eq!(report.replay_check, "byte-identical");
        assert_eq!(report.records, 600);
        assert!(report.error_bound_pp >= 0.0);

        // --out writes the render to a file instead of stdout.
        let out_path = dir.join("plan.md");
        let out_path = out_path.to_str().unwrap();
        run_line(&format!(
            "analyze plan {trace} --sweep boards=4..5 --replays 1 --format md --out {out_path}"
        ));
        assert_eq!(fs::read_to_string(out_path).unwrap(), md);
    }

    #[test]
    fn run_and_cluster_record_stimulus_traces() {
        let dir = std::env::temp_dir().join("nimblock-cli-record-engine-test");
        fs::create_dir_all(&dir).unwrap();
        let run_trace = dir.join("run.nbt");
        let run_trace = run_trace.to_str().unwrap();
        let output = run_line(&format!(
            "run --scheduler fcfs --events 4 --seed 9 --record-out {run_trace}"
        ));
        assert!(output.contains("recorded stimulus trace written"), "{output}");

        // Engine traces carry placements, not admission decisions, so the
        // capacity planner refuses them with a pointer at the right flag.
        let command = parse(&argv(&format!("analyze plan {run_trace}"))).unwrap();
        let mut sink = Vec::new();
        let err = execute(&command, &mut sink).unwrap_err();
        assert!(err.to_string().contains("engine stimulus trace"), "{err}");

        let cluster_trace = dir.join("cluster.nbt");
        let cluster_trace = cluster_trace.to_str().unwrap();
        run_line(&format!(
            "cluster --boards 3 --events 6 --seed 8 --batch 2 --delay-ms 100 \
             --dispatch rr --record-out {cluster_trace}"
        ));
        let bytes = fs::read(cluster_trace).unwrap();
        let reader = nimblock_obs::record::TraceReader::parse(&bytes).unwrap();
        assert_eq!(reader.header().kind, nimblock_obs::record::KIND_ENGINE);
        assert_eq!(reader.header().boards, 3);
        assert_eq!(reader.header().policy, "round-robin");
        assert_eq!(reader.summary().records, 6);
        assert_eq!(reader.summary().admitted, 6, "engine arrivals are all admitted");
        // Round-robin placements ride along with the stimulus.
        let boards: Vec<u32> = reader.records().map(|r| r.unwrap().board).collect();
        let mut seen = boards.clone();
        seen.sort_unstable();
        seen.dedup();
        assert!(seen.len() > 1, "placements should spread: {boards:?}");

        // Sweeps run many configurations; one trace cannot describe them.
        let command = parse(&argv(&format!(
            "cluster --sweep-boards 1,2 --events 4 --record-out {cluster_trace}"
        )))
        .unwrap();
        let mut sink = Vec::new();
        let err = execute(&command, &mut sink).unwrap_err();
        assert!(err.to_string().contains("--sweep-boards"), "{err}");
    }

    #[test]
    fn missing_input_file_is_a_clean_error() {
        let command = parse(&argv("run --input /nonexistent/st.json")).unwrap();
        let mut out = Vec::new();
        let err = execute(&command, &mut out).unwrap_err();
        assert!(err.to_string().contains("cannot read"));
    }

    #[test]
    fn monitored_run_writes_a_timeseries_and_fires_a_tight_slo() {
        let dir = std::env::temp_dir().join("nimblock-cli-monitor-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("series.json");
        let path = path.to_str().unwrap();
        // util>=100% cannot hold in every window (reconfiguration stalls
        // alone guarantee sub-full windows), so the rule reliably fires.
        let output = run_line(&format!(
            "run --scheduler nimblock --scenario stress --events 6 --seed 3 \
             --window-ms 1000 --slo util>=100% --timeseries-out {path}"
        ));
        assert!(output.contains("slo: 1 rule(s) evaluated"), "{output}");
        assert!(output.contains("alert(s) fired"), "{output}");

        let text = fs::read_to_string(path).unwrap();
        let doc: nimblock_obs::MonitorDoc = nimblock_ser::from_str(&text).unwrap();
        assert!(!doc.windows.is_empty());
        assert!(!doc.alerts.is_empty(), "tight rule should fire");
        assert_eq!(doc.rules, vec!["util>=100%".to_string()]);

        // The exported document round-trips through `analyze monitor` in
        // every format, and an alert-bearing document is still a clean exit.
        let rendered = run_line(&format!("analyze monitor {path}"));
        assert!(rendered.contains("continuous monitor:"), "{rendered}");
        assert!(rendered.contains("SLO rules:"), "{rendered}");
        let md = run_line(&format!("analyze monitor {path} --format md"));
        assert!(md.starts_with("# Continuous monitor"), "{md}");
        let json = run_line(&format!("analyze monitor {path} --format json"));
        let value = nimblock_ser::parse(json.trim()).unwrap();
        assert_eq!(value.get("clean"), Some(&nimblock_ser::Json::Bool(false)));
    }

    #[test]
    fn monitored_cluster_run_merges_boards_and_is_thread_invariant() {
        let dir = std::env::temp_dir().join("nimblock-cli-monitor-cluster");
        fs::create_dir_all(&dir).unwrap();
        let base = "cluster --boards 3 --events 6 --seed 8 --batch 2 --delay-ms 100 \
                    --window-ms 1000 --slo queue<=0";
        let mut docs = Vec::new();
        for threads in [1, 2, 8] {
            let path = dir.join(format!("series-{threads}.json"));
            let path = path.to_str().unwrap();
            let output = run_line(&format!(
                "{base} --cluster-threads {threads} --timeseries-out {path}"
            ));
            assert!(output.contains("merged window(s)"), "{output}");
            docs.push(fs::read_to_string(path).unwrap());
        }
        assert_eq!(docs[0], docs[1], "threads 1 vs 2");
        assert_eq!(docs[0], docs[2], "threads 1 vs 8");
        let doc: nimblock_obs::MonitorDoc = nimblock_ser::from_str(&docs[0]).unwrap();
        assert_eq!(doc.slots, 30, "3 boards x 10 slots");
    }

    #[test]
    fn monitor_flags_reject_sweeps_and_bad_rules() {
        let command = parse(&argv(
            "cluster --sweep-boards 1,2 --events 4 --slo util>=50%",
        ))
        .unwrap();
        let mut out = Vec::new();
        let err = execute(&command, &mut out).unwrap_err();
        assert!(err.to_string().contains("--sweep-boards"), "{err}");

        let err = parse(&argv("run --events 2 --slo nonsense<=3")).unwrap_err();
        assert!(err.to_string().contains("rule"), "{err}");
    }
}
