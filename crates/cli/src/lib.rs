//! Library behind the `nimblock-cli` binary: argument parsing and command
//! execution, separated so tests can drive it without spawning processes.
//!
//! Commands:
//!
//! * `generate` — write a stimulus (event sequence) as JSON,
//! * `run` — run a scheduler on a generated or loaded stimulus, printing a
//!   summary and optionally a JSON report or a Gantt chart,
//! * `compare` — run several schedulers on the same stimulus and tabulate
//!   the reductions versus the no-sharing baseline,
//! * `analyze` — correctness and observability tooling: lint the source
//!   tree, verify a recorded schedule trace against the paper's invariants
//!   (the same engine `run --check-invariants` applies inline), or
//!   `explain` a trace — decompose every application's response time into
//!   six exactly-summing attribution components with critical-path span
//!   trees — render a continuous-monitoring document (`monitor`), or
//!   forecast what-if fleet shapes from a recorded serving trace (`plan`),
//! * `faas` / `cluster` — the scale-out deployment shapes.
//!
//! `run` and `cluster` optionally attach a continuous monitor
//! (`--timeseries-out`, `--slo`, `--postmortem-out`): tumbling-window
//! time-series in virtual time, a flight recorder, and SLO burn-rate
//! alerts, all byte-identical for any `--cluster-threads` value.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod args;
mod commands;

pub use args::{
    parse, AnalyzeArgs, AnalyzeTarget, CliError, ClusterArgs, Command, CompareArgs,
    ExplainFormat, FaasArgs, FrontDoorArgs, GenerateArgs, MonitorArgs, RunArgs, SchedulerKind,
    TraceFormat,
};
pub use commands::{execute, load_sequence, make_sequence};

/// The usage text printed for `--help` or argument errors.
pub const USAGE: &str = "\
nimblock-cli — Nimblock FPGA virtualization testbed

USAGE:
  nimblock-cli generate [--scenario S] [--seed N] [--events N]
                        [--batch N --delay-ms N] --output FILE
  nimblock-cli run      [--scheduler NAME] [stimulus options | --input FILE]
                        [--slots N] [--json FILE] [--gantt]
                        [--metrics-out FILE] [--trace-format FMT [--trace-out FILE]]
                        [--check-invariants] [--record-out FILE]
                        [monitor options]
  nimblock-cli compare  [stimulus options | --input FILE] [--slots N]
  nimblock-cli analyze  lint [--root DIR] [--json]
  nimblock-cli analyze  deep [--root DIR] [--format text|md|json]
                        [--graph-out FILE]
  nimblock-cli analyze  trace FILE [--json] [--mechanism-only]
  nimblock-cli analyze  explain FILE [--format text|md|json] [--top N]
  nimblock-cli analyze  monitor FILE [--format text|md|json]
  nimblock-cli analyze  plan TRACE [--sweep NAME=SPEC]... [--slo F]
                        [--replays N] [--format text|md|json] [--out FILE]
  nimblock-cli faas     [--seed N] [--invocations N] [--mean-gap-ms N]
                        [--scheduler NAME]
  nimblock-cli faas     --arrivals KIND[:RATE] [--seed N] [--invocations N]
                        [--tenants N] [--rate-limit R] [--burst N] [--quota N]
                        [--boards N] [--slots N] [--cluster-threads N]
                        [--shed-horizon-ms N] [--max-items N] [--load F]
                        [--curve F,F,... [--slo-curve-out FILE]]
                        [--format text|md|json] [--json FILE]
                        [--metrics-out FILE] [--record-out FILE]
  nimblock-cli cluster  [--boards N | --sweep-boards N,N,...] [--scheduler NAME]
                        [--dispatch POLICY] [--cluster-threads N]
                        [--record-out FILE] [stimulus options]
                        [monitor options]

STIMULUS OPTIONS (used by run/compare when no --input is given):
  --scenario standard|stress|realtime   congestion condition [stress]
  --seed N                              RNG seed [2023]
  --events N                            events per sequence [20]
  --batch N --delay-ms N                fixed batch/delay instead of a scenario

SCHEDULERS (--scheduler):
  nosharing fcfs rr prema prema-backfill sjf edf
  nimblock nimblock-nopreempt nimblock-nopipe nimblock-nopreempt-nopipe

OTHER:
  --slots N            slots on the modelled device [10]
  --json FILE          write the full report as JSON ('-' for stdout)
  --gantt              print a slot-occupancy Gantt chart of the schedule
  --metrics-out FILE   write run telemetry as Prometheus text ('-' for stdout)
  --trace-format FMT   export the schedule trace: json | chrome | gantt
                       (chrome loads in Perfetto / chrome://tracing)
  --trace-out FILE     where the trace goes ('-' for stdout) [stdout]
  --check-invariants   verify the recorded schedule against the paper's
                       invariants after the run (a violation fails the run)
  --output FILE        where generate writes the stimulus ('-' for stdout)
  --input FILE         load a stimulus JSON instead of generating one
  --boards N           boards in the modelled cluster [2]
  --sweep-boards LIST  run the cluster for each board count (e.g. 1,2,4,8)
                       and tabulate the results
  --dispatch POLICY    board assignment: rr | fewest-apps | least-outstanding
                       [fewest-apps]
  --cluster-threads N  worker threads simulating boards (1 = sequential
                       oracle, 0 = auto); results are byte-identical for
                       every value [1]
  --root DIR           workspace root for analyze lint/deep [.]
  --graph-out FILE     analyze deep: also write the call graph with the
                       union pass walk as Graphviz DOT
  --mechanism-only     analyze trace: skip Nimblock-policy invariants
                       (use for traces from preempting non-Nimblock policies)
  --format FMT         analyze deep/explain/monitor report format:
                       text | md | json [text]
  --top N              analyze explain: how many of the slowest applications
                       get their critical-path span trees printed [5]
  --record-out FILE    write the offered traffic as a compact binary trace:
                       `faas --arrivals` records the serving day (for
                       `analyze plan`); run/cluster record the stimulus
                       with board placements

CAPACITY PLANNING (analyze plan; forecast what-if fleet shapes, §18):
  TRACE                a recorded serving trace (faas ... --record-out FILE)
  --sweep NAME=SPEC    sweep axis, repeatable; axes cross-product. SPEC is
                       lo..hi, lo..hi:step, or a comma list:
                         boards=1..32  slots=2,3  reconfig-ms=40,80
                         policy=rr (cache-aware | rr | fewest-apps |
                                    least-outstanding)
                       [boards=1..8]
  --slo F              offered-attainment target the recommendation must
                       meet, fraction [0.95]
  --replays N          scenarios validated by exact replay; the worst
                       error is the report's error bound [5]
  --out FILE           where the plan report goes ('-' for stdout) [stdout]

FRONT DOOR (faas --arrivals; the streaming serving layer, DESIGN.md §17):
  --arrivals KIND[:RATE] arrival process: steady | diurnal | bursty, with a
                         mean rate in invocations/sec (e.g. bursty:2)
  --tenants N            tenants sharing the door [4]
  --rate-limit R         per-tenant token-bucket rate, invocations/sec
                         (0 = unlimited) [0]
  --burst N              token-bucket burst capacity [16]
  --quota N              per-tenant in-flight quota (0 = unlimited) [0]
  --slots N              slots per board [3]
  --shed-horizon-ms N    base backlog horizon, scaled by the class's 1/3/9
                         priority weight [10000]
  --max-items N          max data items per invocation [4]
  --load F               arrival-rate multiplier for a single run [1.0]
  --curve F,F,...        sweep these load factors into an SLO attainment
                         curve instead of a single run
  --slo-curve-out FILE   where the rendered curve goes ('-' for stdout)

MONITOR OPTIONS (run/cluster; attach a continuous monitor in virtual time):
  --timeseries-out FILE  write the windowed time-series + alerts document as
                         JSON ('-' for stdout); render with `analyze monitor`
  --window-ms N          tumbling-window width in simulated milliseconds [10]
  --slo RULE             declarative SLO rule, repeatable. Grammar:
                           resp:CLASS:pN<=DUR   (CLASS: low|med|high;
                                                 DUR like 250us, 80ms, 2s)
                           util>=N%             per-window slot-utilization floor
                           queue<=N             per-window queue-depth ceiling
                           burn:CLASS:pN<=DUR@n/m  burn rate: fires when the
                                                 ceiling is breached in >= n of
                                                 the last m windows
  --postmortem-out FILE  on an invariant failure or simulation panic, dump a
                         post-mortem bundle (recent windows, flight recorder,
                         implicated span tree) to FILE

Set NIMBLOCK_LOG=debug (or e.g. 'hv=debug,sched=info') for structured logs
on stderr.
";
