//! End-to-end tests of the `nimblock-cli` binary itself: real process,
//! real exit codes, real stdout/stderr.

use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_nimblock-cli"))
}

#[test]
fn run_succeeds_and_prints_a_summary() {
    let out = cli()
        .args(["run", "--scheduler", "fcfs", "--events", "3", "--seed", "1"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("FCFS: 3 applications"), "{stdout}");
}

#[test]
fn errors_exit_nonzero_with_message_on_stderr() {
    let out = cli()
        .args(["run", "--scheduler", "bogus"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("unknown scheduler 'bogus'"), "{stderr}");
    assert!(stderr.contains("USAGE"), "usage shown on parse errors");
}

#[test]
fn help_exits_zero() {
    let out = cli().arg("--help").output().expect("binary runs");
    assert!(out.status.success());
    assert!(String::from_utf8(out.stdout).unwrap().contains("USAGE"));
}

#[test]
fn generate_then_run_roundtrip_through_the_filesystem() {
    let dir = std::env::temp_dir().join(format!("nimblock-cli-bin-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let stim = dir.join("s.json");
    let out = cli()
        .args([
            "generate", "--batch", "2", "--delay-ms", "100", "--events", "3",
            "--output", stim.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let out = cli()
        .args(["run", "--input", stim.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8(out.stdout).unwrap().contains("3 applications"));
}

#[test]
fn missing_input_file_fails_cleanly() {
    let out = cli()
        .args(["run", "--input", "/definitely/not/here.json"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8(out.stderr).unwrap().contains("cannot read"));
}
