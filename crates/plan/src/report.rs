//! The planner's report model and its text/markdown/JSON renders.
//!
//! Every scenario row carries the estimator's prediction; rows picked
//! for validation also carry the exact replay and the absolute
//! attainment error in percentage points. The report-level
//! `error_bound_pp` is the worst such error — the caveat every
//! prediction in the table ships with.

use nimblock_metrics::TextTable;
use nimblock_ser::impl_json_struct;

/// Predicted (or exactly replayed) outcome of serving the recorded
/// traffic on one scenario's fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct Outcome {
    /// Invocations offered (always the recorded traffic).
    pub offered: u64,
    /// Invocations admitted and served.
    pub admitted: u64,
    /// Invocations shed by the backlog or deadline guards.
    pub shed: u64,
    /// Invocations rejected by tenant admission control.
    pub rejected: u64,
    /// SLO attainment over admitted invocations.
    pub attainment: f64,
    /// SLO attainment over offered invocations — the planning axis.
    pub offered_attainment: f64,
    /// Per-class attainment over admitted invocations, strictest class
    /// first (latency, standard, batch).
    pub class_attainment: Vec<f64>,
    /// SLO-met invocations per virtual second.
    pub goodput_per_sec: f64,
    /// Fleet cost: boards × virtual duration, board-seconds.
    pub board_seconds: f64,
}

impl_json_struct!(Outcome {
    offered, admitted, shed, rejected, attainment, offered_attainment,
    class_attainment, goodput_per_sec, board_seconds,
});

/// One scenario of the sweep: the configuration knobs, the estimator's
/// prediction, and (for sampled rows) the exact replay next to it.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioRow {
    /// Boards in the counterfactual fleet.
    pub boards: u64,
    /// Slots per board.
    pub slots: u64,
    /// Routing policy name.
    pub policy: String,
    /// Partial-reconfiguration latency, milliseconds.
    pub reconfig_ms: f64,
    /// The estimator's prediction.
    pub predicted: Outcome,
    /// Exact replay, when this row was sampled for validation.
    pub exact: Option<Outcome>,
    /// Worst absolute attainment error vs the exact replay, percentage
    /// points (overall and per class), when sampled.
    pub error_pp: Option<f64>,
}

impl_json_struct!(ScenarioRow {
    boards, slots, policy, reconfig_ms, predicted, exact, error_pp,
});

/// The full capacity-planning report: recorded-run context, calibration,
/// validation verdicts, and the swept scenarios.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanReport {
    /// Seed of the recorded run.
    pub seed: u64,
    /// Records in the trace (equals offered invocations).
    pub records: u64,
    /// Arrival-process spec of the recorded run.
    pub process: String,
    /// Load multiplier of the recorded run.
    pub load_factor: f64,
    /// Deployed functions in the recorded run.
    pub functions: u64,
    /// Tenants sharing the recorded cluster.
    pub tenants: u64,
    /// Recorded fleet size.
    pub baseline_boards: u64,
    /// Recorded slots per board.
    pub baseline_slots: u64,
    /// Recorded routing policy.
    pub baseline_policy: String,
    /// Recorded reconfiguration latency, milliseconds.
    pub baseline_reconfig_ms: f64,
    /// Offered-attainment target the recommendation must meet.
    pub slo_target: f64,
    /// Calibrated warm rate (from the recorded attribution components).
    pub warm_rate: f64,
    /// Calibrated queue-wait scale.
    pub queue_scale: f64,
    /// Baseline byte-identity verdict: `byte-identical`, `MISMATCH`, or
    /// `report-missing` when the trace embeds no report.
    pub replay_check: String,
    /// Scenarios validated by exact replay.
    pub sampled_replays: u64,
    /// Worst estimator attainment error across the sampled replays,
    /// percentage points.
    pub error_bound_pp: f64,
    /// Cheapest scenario predicted to meet the SLO target, if any.
    pub recommendation: Option<String>,
    /// The swept scenarios, cross-product order.
    pub scenarios: Vec<ScenarioRow>,
}

impl_json_struct!(PlanReport {
    seed, records, process, load_factor, functions, tenants,
    baseline_boards, baseline_slots, baseline_policy, baseline_reconfig_ms,
    slo_target, warm_rate, queue_scale, replay_check, sampled_replays,
    error_bound_pp, recommendation, scenarios,
});

/// Output format of [`render_plan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanFormat {
    /// Aligned plain-text table.
    Text,
    /// GitHub-flavoured markdown.
    Markdown,
    /// The report's canonical pretty-printed JSON.
    Json,
}

impl PlanFormat {
    /// Parses a `--format` value.
    pub fn parse(value: &str) -> Option<PlanFormat> {
        match value {
            "text" => Some(PlanFormat::Text),
            "md" | "markdown" => Some(PlanFormat::Markdown),
            "json" => Some(PlanFormat::Json),
            _ => None,
        }
    }
}

/// Percentage with one decimal — the render's attainment precision.
fn pct(fraction: f64) -> String {
    format!("{:.1}", fraction * 100.0)
}

/// The scenario table's column headers, shared by text and markdown.
fn table_headers() -> Vec<&'static str> {
    vec![
        "boards", "slots", "policy", "reconfig-ms", "att%", "latency%", "standard%", "batch%",
        "shed", "rejected", "board-s", "exact-att%", "err-pp",
    ]
}

/// One scenario's table cells, shared by text and markdown.
fn table_cells(row: &ScenarioRow) -> Vec<String> {
    let class = |index: usize| {
        row.predicted
            .class_attainment
            .get(index)
            .map(|&v| pct(v))
            .unwrap_or_else(|| "-".to_owned())
    };
    vec![
        row.boards.to_string(),
        row.slots.to_string(),
        row.policy.clone(),
        format!("{:.1}", row.reconfig_ms),
        pct(row.predicted.offered_attainment),
        class(0),
        class(1),
        class(2),
        row.predicted.shed.to_string(),
        row.predicted.rejected.to_string(),
        format!("{:.1}", row.predicted.board_seconds),
        row.exact
            .as_ref()
            .map(|exact| pct(exact.offered_attainment))
            .unwrap_or_else(|| "-".to_owned()),
        row.error_pp
            .map(|error| format!("{error:.2}"))
            .unwrap_or_else(|| "-".to_owned()),
    ]
}

/// The context lines above the scenario table, shared by text and
/// markdown (markdown prefixes them with list bullets).
fn summary_lines(report: &PlanReport) -> Vec<String> {
    vec![
        format!(
            "trace: seed {}, {} record(s), {} @ {:.2}x load, {} function(s), {} tenant(s)",
            report.seed,
            report.records,
            report.process,
            report.load_factor,
            report.functions,
            report.tenants,
        ),
        format!(
            "baseline: {} board(s) x {} slot(s), {} routing, {:.1} ms reconfig",
            report.baseline_boards,
            report.baseline_slots,
            report.baseline_policy,
            report.baseline_reconfig_ms,
        ),
        format!(
            "calibration: warm rate {}%, queue scale {:.3}",
            pct(report.warm_rate),
            report.queue_scale,
        ),
        format!(
            "validation: baseline replay {}, {} sampled exact replay(s), error bound {:.2} pp",
            report.replay_check, report.sampled_replays, report.error_bound_pp,
        ),
        format!(
            "recommendation (SLO target {}%): {}",
            pct(report.slo_target),
            report
                .recommendation
                .as_deref()
                .unwrap_or("no swept scenario meets the target"),
        ),
    ]
}

/// Renders a planning report in the requested format. Deterministic: the
/// same report always renders to the same bytes.
pub fn render_plan(report: &PlanReport, format: PlanFormat) -> String {
    match format {
        PlanFormat::Json => {
            let mut text = nimblock_ser::to_string_pretty(report);
            text.push('\n');
            text
        }
        PlanFormat::Text => {
            let mut out = String::from("capacity plan\n=============\n");
            for line in summary_lines(report) {
                out.push_str(&line);
                out.push('\n');
            }
            out.push('\n');
            let mut table = TextTable::new(table_headers());
            for row in &report.scenarios {
                table.row(table_cells(row));
            }
            out.push_str(&table.to_string());
            out
        }
        PlanFormat::Markdown => {
            let mut out = String::from("# Capacity plan\n\n");
            for line in summary_lines(report) {
                out.push_str("- ");
                out.push_str(&line);
                out.push('\n');
            }
            out.push('\n');
            let headers = table_headers();
            out.push_str(&format!("| {} |\n", headers.join(" | ")));
            out.push_str(&format!(
                "|{}\n",
                " --- |".repeat(headers.len())
            ));
            for row in &report.scenarios {
                out.push_str(&format!("| {} |\n", table_cells(row).join(" | ")));
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PlanReport {
        let predicted = Outcome {
            offered: 1_000,
            admitted: 800,
            shed: 150,
            rejected: 50,
            attainment: 0.9,
            offered_attainment: 0.72,
            class_attainment: vec![0.95, 0.9, 0.8],
            goodput_per_sec: 12.5,
            board_seconds: 48.0,
        };
        PlanReport {
            seed: 7,
            records: 1_000,
            process: "bursty:2000".to_owned(),
            load_factor: 1.0,
            functions: 6,
            tenants: 4,
            baseline_boards: 4,
            baseline_slots: 3,
            baseline_policy: "cache-aware".to_owned(),
            baseline_reconfig_ms: 80.0,
            slo_target: 0.95,
            warm_rate: 0.42,
            queue_scale: 1.25,
            replay_check: "byte-identical".to_owned(),
            sampled_replays: 1,
            error_bound_pp: 1.5,
            recommendation: Some("4 board(s) x 3 slot(s)".to_owned()),
            scenarios: vec![ScenarioRow {
                boards: 4,
                slots: 3,
                policy: "cache-aware".to_owned(),
                reconfig_ms: 80.0,
                predicted: predicted.clone(),
                exact: Some(predicted),
                error_pp: Some(1.5),
            }],
        }
    }

    #[test]
    fn formats_parse() {
        assert_eq!(PlanFormat::parse("text"), Some(PlanFormat::Text));
        assert_eq!(PlanFormat::parse("md"), Some(PlanFormat::Markdown));
        assert_eq!(PlanFormat::parse("markdown"), Some(PlanFormat::Markdown));
        assert_eq!(PlanFormat::parse("json"), Some(PlanFormat::Json));
        assert_eq!(PlanFormat::parse("csv"), None);
    }

    #[test]
    fn text_render_carries_the_error_bound_and_classes() {
        let text = render_plan(&sample(), PlanFormat::Text);
        assert!(text.contains("error bound 1.50 pp"), "{text}");
        assert!(text.contains("byte-identical"), "{text}");
        assert!(text.contains("latency%"), "{text}");
        assert!(text.contains("95.0"), "{text}");
        assert!(text.contains("recommendation"), "{text}");
    }

    #[test]
    fn markdown_render_is_a_pipe_table() {
        let md = render_plan(&sample(), PlanFormat::Markdown);
        assert!(md.starts_with("# Capacity plan"), "{md}");
        assert!(md.contains("| boards | slots |"), "{md}");
        assert!(md.contains("| 4 | 3 | cache-aware | 80.0 |"), "{md}");
    }

    #[test]
    fn json_render_round_trips() {
        let report = sample();
        let json = render_plan(&report, PlanFormat::Json);
        let back: PlanReport = nimblock_ser::from_str(json.trim_end()).expect("round-trips");
        assert_eq!(back, report);
    }

    #[test]
    fn renders_are_deterministic() {
        for format in [PlanFormat::Text, PlanFormat::Markdown, PlanFormat::Json] {
            assert_eq!(render_plan(&sample(), format), render_plan(&sample(), format));
        }
    }
}
