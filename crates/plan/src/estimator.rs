//! The analytical capacity estimator and its exact-replay ground truth.
//!
//! The estimator is a single-pass fluid approximation of the front-door
//! pipeline (DESIGN.md §18). Three simplifications buy the speed:
//!
//! 1. **Pooled fleet** — the per-board earliest-free-slot servers
//!    collapse into one pool of `boards × slots` slot-free times (a
//!    binary heap), erasing the dispatcher's per-board routing state.
//! 2. **Calibrated warmth** — the bitstream cache becomes a per-function
//!    warm *probability*, realized by deterministic error diffusion so
//!    the same trace always predicts the same outcome. The probability
//!    is the recorded warm rate, rescaled by a structural cache-coverage
//!    model when the counterfactual fleet or policy changes.
//! 3. **Scaled queue wait** — the pooled queue wait is multiplied by a
//!    scale factor calibrated so the baseline scenario's mean matches
//!    the recorded mean queue wait.
//!
//! Everything else is the real thing: the same [`TenantRegistry`]
//! admission control, the same class-weighted backlog and deadline shed
//! guards, the same per-class deadline model. [`exact_outcome`] replays
//! the recorded offered sequence through the full front door instead and
//! is what the planner samples to measure the estimator's error bound.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

use nimblock_app::AppSpec;
use nimblock_cluster::{DispatchPolicy, BITSTREAM_CACHE_SLOTS};
use nimblock_faas::{
    AdmissionVerdict, FrontDoor, FrontDoorConfig, FrontDoorReport, FunctionRegistry,
    OfferedInvocation, SloClass, TenantPolicy, TenantRegistry,
};
use nimblock_obs::record::{TraceHeader, TraceRecord};
use nimblock_sim::{SimDuration, SimTime};

use crate::report::Outcome;
use crate::sweep::Scenario;

/// Decodes a trace record back into the front door's offered form.
pub fn offered_from_record(record: &TraceRecord) -> OfferedInvocation {
    OfferedInvocation {
        at: SimTime::from_micros(record.arrival_micros),
        function: record.function as usize,
        items: record.items,
        tenant: record.tenant as usize,
    }
}

/// The fraction of functions a fleet's bitstream caches can keep warm,
/// as a structural model: cache-aware routing concentrates each function
/// on the boards that already hold it, so coverage scales with the fleet
/// (`min(1, cache_slots × boards / functions)`); oblivious policies
/// spread every function over every board, so only the per-board cache
/// helps (`min(1, cache_slots / functions)`).
fn structural_warm(policy: DispatchPolicy, boards: u64, functions: usize) -> f64 {
    let cache = BITSTREAM_CACHE_SLOTS as f64;
    let functions = functions.max(1) as f64;
    match policy {
        DispatchPolicy::CacheAware => (cache * boards as f64 / functions).min(1.0),
        _ => (cache / functions).min(1.0),
    }
}

/// Estimator calibration extracted from a recorded trace's attribution
/// components.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Calibration {
    /// Warm-hit rate over the recorded routed (admitted + shed)
    /// invocations — anchors the warmth model to the recorded day.
    pub warm_rate: f64,
    /// Recorded mean queue wait divided by the pooled model's raw mean
    /// on the baseline scenario, clamped to `[0.25, 4]` — corrects the
    /// pooled fleet's optimistic queueing.
    pub queue_scale: f64,
}

impl Calibration {
    /// Calibrates against `records` as recorded under `header`.
    pub fn from_trace(
        header: &TraceHeader,
        records: &[TraceRecord],
        registry: &FunctionRegistry,
    ) -> Result<Calibration, String> {
        let mut routed = 0u64;
        let mut warm = 0u64;
        let mut queue_sum = 0u64;
        for record in records {
            if record.verdict.routed() {
                routed += 1;
                if record.warm {
                    warm += 1;
                }
                queue_sum += record.queue_wait_micros;
            }
        }
        let baseline = Scenario::baseline(header);
        let warm_rate = if routed == 0 {
            structural_warm(baseline.policy, baseline.boards, header.functions.len())
        } else {
            warm as f64 / routed as f64
        };
        let unit = Calibration { warm_rate, queue_scale: 1.0 };
        let probe = Estimator::new(header, registry, &unit);
        let (_, raw_mean) = probe.simulate(&baseline, records);
        let recorded_mean = if routed == 0 { 0.0 } else { queue_sum as f64 / routed as f64 };
        let queue_scale = if raw_mean > 0.0 && recorded_mean > 0.0 {
            (recorded_mean / raw_mean).clamp(0.25, 4.0)
        } else {
            1.0
        };
        Ok(Calibration { warm_rate, queue_scale })
    }
}

/// Per-function state the estimator prices invocations with.
struct FunctionProfile {
    app: Arc<AppSpec>,
    class: usize,
    weight: u64,
    deadline_factor: f64,
}

/// The single-pass analytical estimator. Construct once per trace; each
/// [`Estimator::predict`] call prices one counterfactual scenario.
pub struct Estimator {
    functions: Vec<FunctionProfile>,
    tenants: usize,
    tenant_policy: TenantPolicy,
    shed_horizon: SimDuration,
    max_items: u32,
    warm_rate: f64,
    queue_scale: f64,
    baseline_structural: f64,
}

impl Estimator {
    /// Builds an estimator for the fleet and function table described by
    /// `header`, priced with `registry`'s applications and calibrated by
    /// `calibration`.
    ///
    /// # Panics
    ///
    /// Panics if a header function is not deployed in `registry` — run
    /// [`nimblock_faas::verify_trace_functions`] first.
    pub fn new(
        header: &TraceHeader,
        registry: &FunctionRegistry,
        calibration: &Calibration,
    ) -> Estimator {
        let baseline = Scenario::baseline(header);
        let functions = header
            .functions
            .iter()
            .map(|function| {
                let app = registry
                    .app(&function.name)
                    .expect("verify_trace_functions checked the table");
                let slo = registry.slo(&function.name).expect("app() implies deployment");
                FunctionProfile {
                    app,
                    class: class_index(slo),
                    weight: u64::from(slo.priority().weight()),
                    deadline_factor: slo.deadline_factor(),
                }
            })
            .collect();
        Estimator {
            functions,
            tenants: header.tenants as usize,
            tenant_policy: TenantPolicy {
                rate_per_sec: header.tenant_rate_per_sec,
                burst: header.tenant_burst,
                quota: header.tenant_quota,
            },
            shed_horizon: SimDuration::from_micros(header.shed_horizon_micros),
            max_items: header.max_items.max(1) as u32,
            warm_rate: calibration.warm_rate,
            queue_scale: calibration.queue_scale,
            baseline_structural: structural_warm(
                baseline.policy,
                baseline.boards,
                header.functions.len(),
            ),
        }
    }

    /// Predicts the outcome of serving `records`' offered sequence on
    /// `scenario`'s fleet.
    pub fn predict(&self, scenario: &Scenario, records: &[TraceRecord]) -> Outcome {
        self.simulate(scenario, records).0
    }

    /// The pass behind [`Estimator::predict`]; also returns the *raw*
    /// (unscaled) mean pooled queue wait in micros, which is what
    /// [`Calibration::from_trace`] anchors `queue_scale` against.
    fn simulate(&self, scenario: &Scenario, records: &[TraceRecord]) -> (Outcome, f64) {
        let classes = SloClass::ALL.len();
        // Per-function latency tables for this scenario's CAP latency:
        // warm work (no reconfiguration) and cold work, per batch size.
        let items_range = self.max_items as usize;
        let mut warm_work = vec![0u64; self.functions.len() * items_range];
        let mut cold_work = vec![0u64; self.functions.len() * items_range];
        for (f, profile) in self.functions.iter().enumerate() {
            for i in 0..items_range {
                let items = (i + 1) as u32;
                warm_work[f * items_range + i] =
                    profile.app.single_slot_latency(items, SimDuration::ZERO).as_micros();
                cold_work[f * items_range + i] =
                    profile.app.single_slot_latency(items, scenario.reconfig).as_micros();
            }
        }
        let p_warm = if self.baseline_structural > 0.0 {
            (self.warm_rate * structural_warm(scenario.policy, scenario.boards, self.functions.len())
                / self.baseline_structural)
                .clamp(0.0, 1.0)
        } else {
            self.warm_rate.clamp(0.0, 1.0)
        };
        let mut warm_credit = vec![0.0f64; self.functions.len()];

        let slots = (scenario.boards * scenario.slots) as usize;
        let mut slot_free: BinaryHeap<Reverse<u64>> = (0..slots).map(|_| Reverse(0u64)).collect();
        let mut tenants = TenantRegistry::new(self.tenants, self.tenant_policy);
        let horizon_base = self.shed_horizon;

        let mut offered = 0u64;
        let mut rejected = 0u64;
        let mut shed = 0u64;
        let mut admitted = 0u64;
        let mut within = 0u64;
        let mut class_admitted = vec![0u64; classes];
        let mut class_within = vec![0u64; classes];
        let mut virtual_end = 0u64;
        let mut routed = 0u64;
        let mut raw_wait_sum = 0u64;

        for record in records {
            let now = record.arrival_micros;
            virtual_end = virtual_end.max(now);
            offered += 1;
            match tenants.judge(record.tenant as usize, SimTime::from_micros(now)) {
                AdmissionVerdict::RejectRate | AdmissionVerdict::RejectQuota => {
                    rejected += 1;
                    continue;
                }
                AdmissionVerdict::Admit => {}
            }
            let profile = &self.functions[record.function as usize];
            let item_slot = (record.items.clamp(1, self.max_items) - 1) as usize;
            let index = record.function as usize * items_range + item_slot;
            warm_credit[record.function as usize] += p_warm;
            let warm = warm_credit[record.function as usize] >= 1.0;
            if warm {
                warm_credit[record.function as usize] -= 1.0;
            }
            let work = if warm { warm_work[index] } else { cold_work[index] };
            let cold = cold_work[index];
            let Reverse(free) = *slot_free.peek().expect("fleets have at least one slot");
            let raw_wait = free.saturating_sub(now);
            routed += 1;
            raw_wait_sum += raw_wait;
            let queue_wait = (raw_wait as f64 * self.queue_scale) as u64;
            let deadline = SimDuration::from_secs_f64(
                profile.deadline_factor * SimDuration::from_micros(cold).as_secs_f64(),
            )
            .as_micros();
            let horizon = horizon_base.saturating_mul(profile.weight).as_micros();
            if queue_wait > horizon || queue_wait + work > deadline {
                shed += 1;
                continue;
            }
            tenants.record_admission(
                record.tenant as usize,
                SimTime::from_micros(now + queue_wait + work),
            );
            let Reverse(free) = slot_free.pop().expect("fleets have at least one slot");
            let start = free.max(now);
            let finish = start + work;
            slot_free.push(Reverse(finish));
            virtual_end = virtual_end.max(finish);
            admitted += 1;
            class_admitted[profile.class] += 1;
            if finish - now <= deadline {
                within += 1;
                class_within[profile.class] += 1;
            }
        }

        let virtual_secs = virtual_end as f64 / 1_000_000.0;
        let outcome = Outcome {
            offered,
            admitted,
            shed,
            rejected,
            attainment: ratio(within, admitted),
            offered_attainment: ratio(within, offered),
            class_attainment: (0..classes)
                .map(|c| ratio(class_within[c], class_admitted[c]))
                .collect(),
            goodput_per_sec: if virtual_secs > 0.0 { within as f64 / virtual_secs } else { 0.0 },
            board_seconds: scenario.boards as f64 * virtual_secs,
        };
        let raw_mean = if routed == 0 { 0.0 } else { raw_wait_sum as f64 / routed as f64 };
        (outcome, raw_mean)
    }
}

/// Ground truth for one scenario: the recorded offered sequence replayed
/// through the full front door on the counterfactual fleet.
pub fn exact_outcome(
    header: &TraceHeader,
    registry: &FunctionRegistry,
    records: &[TraceRecord],
    scenario: &Scenario,
) -> Result<Outcome, String> {
    let mut config = FrontDoorConfig::from_trace_header(header)?;
    config.boards = scenario.boards as usize;
    config.slots_per_board = scenario.slots as usize;
    config.reconfig = scenario.reconfig;
    config.policy = scenario.policy;
    let door = FrontDoor::new(registry.clone(), config);
    let report = door.replay(header.load_factor, records.iter().map(offered_from_record));
    Ok(outcome_from_report(&report, scenario.boards))
}

/// Collapses a full front-door report into the planner's outcome row.
fn outcome_from_report(report: &FrontDoorReport, boards: u64) -> Outcome {
    Outcome {
        offered: report.counters.offered,
        admitted: report.counters.admitted,
        shed: report.counters.shed(),
        rejected: report.counters.rejected(),
        attainment: report.attainment,
        offered_attainment: report.offered_attainment,
        class_attainment: report
            .classes
            .iter()
            .map(|class| ratio(class.within_slo, class.admitted))
            .collect(),
        goodput_per_sec: report.goodput_per_sec,
        board_seconds: boards as f64 * report.virtual_secs,
    }
}

/// `within / total`, defined as perfect when nothing was counted.
fn ratio(within: u64, total: u64) -> f64 {
    if total == 0 {
        1.0
    } else {
        within as f64 / total as f64
    }
}

/// Index of a class in [`SloClass::ALL`] order.
fn class_index(class: SloClass) -> usize {
    match class {
        SloClass::Latency => 0,
        SloClass::Standard => 1,
        SloClass::Batch => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nimblock_faas::verify_trace_functions;
    use nimblock_obs::record::TraceReader;
    use nimblock_workload::ArrivalProcess;

    fn recorded(seed: u64) -> Vec<u8> {
        let mut config = FrontDoorConfig::new(seed);
        config.invocations = 2_500;
        config.process = ArrivalProcess::parse("bursty:2000").expect("parses");
        config.shed_horizon = SimDuration::from_millis(200);
        config.tenant_policy = TenantPolicy { rate_per_sec: 300.0, burst: 32, quota: 64 };
        FrontDoor::new(FunctionRegistry::benchmark_suite(), config).run_recorded(1.0).1
    }

    fn decoded(trace: &[u8]) -> (TraceHeader, Vec<TraceRecord>) {
        let reader = TraceReader::parse(trace).expect("parses");
        let records = reader.records().collect::<Result<Vec<_>, _>>().expect("decodes");
        (reader.header().clone(), records)
    }

    #[test]
    fn calibration_reads_the_recorded_components() {
        let trace = recorded(7);
        let (header, records) = decoded(&trace);
        let registry = FunctionRegistry::benchmark_suite();
        verify_trace_functions(&registry, &header).expect("matches");
        let calibration = Calibration::from_trace(&header, &records, &registry).expect("calibrates");
        assert!((0.0..=1.0).contains(&calibration.warm_rate), "{}", calibration.warm_rate);
        assert!(
            (0.25..=4.0).contains(&calibration.queue_scale),
            "{}",
            calibration.queue_scale
        );
    }

    #[test]
    fn estimator_tracks_the_exact_replay_on_the_baseline() {
        let trace = recorded(11);
        let (header, records) = decoded(&trace);
        let registry = FunctionRegistry::benchmark_suite();
        let calibration = Calibration::from_trace(&header, &records, &registry).expect("calibrates");
        let estimator = Estimator::new(&header, &registry, &calibration);
        let baseline = Scenario::baseline(&header);
        let predicted = estimator.predict(&baseline, &records);
        let exact = exact_outcome(&header, &registry, &records, &baseline).expect("replays");
        assert_eq!(predicted.offered, exact.offered);
        let error = (predicted.offered_attainment - exact.offered_attainment).abs();
        assert!(
            error < 0.15,
            "baseline estimate must track the replay: {} vs {} (|err| {error})",
            predicted.offered_attainment,
            exact.offered_attainment
        );
    }

    #[test]
    fn predictions_are_deterministic() {
        let trace = recorded(13);
        let (header, records) = decoded(&trace);
        let registry = FunctionRegistry::benchmark_suite();
        let calibration = Calibration::from_trace(&header, &records, &registry).expect("calibrates");
        let estimator = Estimator::new(&header, &registry, &calibration);
        let scenario = Scenario { boards: 9, ..Scenario::baseline(&header) };
        let a = estimator.predict(&scenario, &records);
        let b = estimator.predict(&scenario, &records);
        assert_eq!(nimblock_ser::to_string_pretty(&a), nimblock_ser::to_string_pretty(&b));
    }

    #[test]
    fn warmth_model_rewards_cache_aware_fleets() {
        assert!(structural_warm(DispatchPolicy::CacheAware, 4, 6) > structural_warm(DispatchPolicy::RoundRobin, 4, 6));
        assert_eq!(structural_warm(DispatchPolicy::CacheAware, 64, 6), 1.0);
        assert!(structural_warm(DispatchPolicy::RoundRobin, 64, 6) < 1.0);
    }
}
