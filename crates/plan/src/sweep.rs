//! Sweep-spec parsing and scenario expansion.
//!
//! A sweep axis is `name=spec` where `name` picks the knob and `spec` is
//! either an inclusive range `lo..hi[:step]` (integer knobs) or a
//! comma-separated list. Axes combine as a cross product; knobs without
//! an axis stay pinned at the recorded baseline:
//!
//! ```text
//! --sweep boards=1..32
//! --sweep boards=2..16:2 --sweep reconfig-ms=40,80,160
//! --sweep policy=cache-aware,round-robin --sweep slots=2..4
//! ```

use nimblock_cluster::DispatchPolicy;
use nimblock_obs::record::TraceHeader;
use nimblock_sim::SimDuration;

/// Hard cap on the cross-product size — a guard against runaway sweeps,
/// not a tuning knob.
pub const MAX_SCENARIOS: usize = 512;

/// One counterfactual fleet configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scenario {
    /// Boards in the fleet.
    pub boards: u64,
    /// Reconfigurable slots per board.
    pub slots: u64,
    /// Partial-reconfiguration (CAP) latency.
    pub reconfig: SimDuration,
    /// Board-selection policy.
    pub policy: DispatchPolicy,
}

impl Scenario {
    /// The recorded run's own configuration.
    pub fn baseline(header: &TraceHeader) -> Scenario {
        Scenario {
            boards: header.boards,
            slots: header.slots_per_board,
            reconfig: SimDuration::from_micros(header.reconfig_micros),
            policy: DispatchPolicy::parse(&header.policy).unwrap_or(DispatchPolicy::CacheAware),
        }
    }
}

/// One parsed sweep axis.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepAxis {
    /// Fleet sizes to try.
    Boards(Vec<u64>),
    /// Per-board slot counts to try.
    Slots(Vec<u64>),
    /// CAP latencies to try.
    Reconfig(Vec<SimDuration>),
    /// Routing policies to try.
    Policy(Vec<DispatchPolicy>),
}

/// Parses an integer spec: `lo..hi`, `lo..hi:step`, or `a,b,c`.
fn parse_values(name: &str, spec: &str) -> Result<Vec<u64>, String> {
    if let Some((range, step)) = split_range(spec) {
        let (lo, hi) = range;
        let step = step.unwrap_or(1);
        if step == 0 {
            return Err(format!("{name}: step must be positive"));
        }
        if lo == 0 {
            return Err(format!("{name}: values must be positive"));
        }
        if hi < lo {
            return Err(format!("{name}: empty range {lo}..{hi}"));
        }
        return Ok((lo..=hi).step_by(step as usize).collect());
    }
    let values = spec
        .split(',')
        .map(|v| {
            v.trim()
                .parse::<u64>()
                .map_err(|_| format!("{name}: invalid value '{v}'"))
        })
        .collect::<Result<Vec<u64>, String>>()?;
    if values.is_empty() || values.contains(&0) {
        return Err(format!("{name}: values must be positive"));
    }
    Ok(values)
}

/// Splits `lo..hi[:step]` into its parts, or `None` if not a range.
fn split_range(spec: &str) -> Option<((u64, u64), Option<u64>)> {
    let (range, step) = match spec.split_once(':') {
        Some((range, step)) => (range, Some(step)),
        None => (spec, None),
    };
    let (lo, hi) = range.split_once("..")?;
    let lo = lo.trim().parse::<u64>().ok()?;
    let hi = hi.trim().parse::<u64>().ok()?;
    let step = match step {
        None => None,
        Some(s) => Some(s.trim().parse::<u64>().ok()?),
    };
    Some(((lo, hi), step))
}

impl SweepAxis {
    /// Parses one `name=spec` axis.
    pub fn parse(spec: &str) -> Result<SweepAxis, String> {
        let (name, values) = spec
            .split_once('=')
            .ok_or_else(|| format!("sweep '{spec}' must be name=spec (e.g. boards=1..32)"))?;
        match name.trim() {
            "boards" => Ok(SweepAxis::Boards(parse_values("boards", values)?)),
            "slots" => Ok(SweepAxis::Slots(parse_values("slots", values)?)),
            "reconfig-ms" => {
                let millis = values
                    .split(',')
                    .map(|v| {
                        let parsed: f64 = v
                            .trim()
                            .parse()
                            .map_err(|_| format!("reconfig-ms: invalid value '{v}'"))?;
                        if !(parsed.is_finite() && parsed >= 0.0) {
                            return Err(format!("reconfig-ms: '{v}' must be non-negative"));
                        }
                        Ok(SimDuration::from_secs_f64(parsed / 1_000.0))
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                Ok(SweepAxis::Reconfig(millis))
            }
            "policy" => {
                let policies = values
                    .split(',')
                    .map(|v| {
                        DispatchPolicy::parse(v.trim()).ok_or_else(|| {
                            format!(
                                "policy: unknown '{}' (expected one of {})",
                                v.trim(),
                                DispatchPolicy::ALL
                                    .iter()
                                    .map(|p| p.name())
                                    .collect::<Vec<_>>()
                                    .join(", ")
                            )
                        })
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                Ok(SweepAxis::Policy(policies))
            }
            other => Err(format!(
                "unknown sweep axis '{other}' (expected boards, slots, reconfig-ms, or policy)"
            )),
        }
    }
}

/// Expands the cross product of `axes` around `baseline`. Scenario order
/// is the lexicographic order of the axes as given, so reports are
/// deterministic.
pub fn expand_scenarios(
    baseline: &Scenario,
    axes: &[SweepAxis],
) -> Result<Vec<Scenario>, String> {
    let mut boards = vec![baseline.boards];
    let mut slots = vec![baseline.slots];
    let mut reconfigs = vec![baseline.reconfig];
    let mut policies = vec![baseline.policy];
    let mut seen = [false; 4];
    for axis in axes {
        let slot = match axis {
            SweepAxis::Boards(v) => {
                boards = v.clone();
                0
            }
            SweepAxis::Slots(v) => {
                slots = v.clone();
                1
            }
            SweepAxis::Reconfig(v) => {
                reconfigs = v.clone();
                2
            }
            SweepAxis::Policy(v) => {
                policies = v.clone();
                3
            }
        };
        if seen[slot] {
            return Err("each sweep axis may be given at most once".to_owned());
        }
        seen[slot] = true;
    }
    let total = boards.len() * slots.len() * reconfigs.len() * policies.len();
    if total > MAX_SCENARIOS {
        return Err(format!(
            "sweep expands to {total} scenarios (max {MAX_SCENARIOS}); narrow an axis"
        ));
    }
    let mut scenarios = Vec::with_capacity(total);
    for &policy in &policies {
        for &reconfig in &reconfigs {
            for &slot_count in &slots {
                for &board_count in &boards {
                    scenarios.push(Scenario {
                        boards: board_count,
                        slots: slot_count,
                        reconfig,
                        policy,
                    });
                }
            }
        }
    }
    Ok(scenarios)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Scenario {
        Scenario {
            boards: 4,
            slots: 3,
            reconfig: SimDuration::from_millis(80),
            policy: DispatchPolicy::CacheAware,
        }
    }

    #[test]
    fn ranges_lists_and_steps_parse() {
        assert_eq!(
            SweepAxis::parse("boards=1..4").unwrap(),
            SweepAxis::Boards(vec![1, 2, 3, 4])
        );
        assert_eq!(
            SweepAxis::parse("boards=2..10:4").unwrap(),
            SweepAxis::Boards(vec![2, 6, 10])
        );
        assert_eq!(
            SweepAxis::parse("slots=2,4,8").unwrap(),
            SweepAxis::Slots(vec![2, 4, 8])
        );
        assert_eq!(
            SweepAxis::parse("reconfig-ms=40,80").unwrap(),
            SweepAxis::Reconfig(vec![SimDuration::from_millis(40), SimDuration::from_millis(80)])
        );
        assert_eq!(
            SweepAxis::parse("policy=round-robin,cache-aware").unwrap(),
            SweepAxis::Policy(vec![DispatchPolicy::RoundRobin, DispatchPolicy::CacheAware])
        );
    }

    #[test]
    fn bad_specs_explain_themselves() {
        for (spec, needle) in [
            ("boards", "name=spec"),
            ("boards=4..1", "empty range"),
            ("boards=0..4", "positive"),
            ("boards=1..8:0", "step"),
            ("boards=x", "invalid value"),
            ("watts=1..4", "unknown sweep axis"),
            ("policy=warmest", "unknown"),
            ("reconfig-ms=fast", "invalid value"),
        ] {
            let error = SweepAxis::parse(spec).expect_err(spec);
            assert!(error.contains(needle), "{spec}: {error}");
        }
    }

    #[test]
    fn cross_product_pins_unswept_axes_to_the_baseline() {
        let axes = vec![
            SweepAxis::parse("boards=1..3").unwrap(),
            SweepAxis::parse("reconfig-ms=40,80").unwrap(),
        ];
        let scenarios = expand_scenarios(&base(), &axes).unwrap();
        assert_eq!(scenarios.len(), 6);
        assert!(scenarios.iter().all(|s| s.slots == 3));
        assert!(scenarios.iter().all(|s| s.policy == DispatchPolicy::CacheAware));
        assert_eq!(scenarios[0].boards, 1);
        assert_eq!(scenarios[0].reconfig, SimDuration::from_millis(40));
        assert_eq!(scenarios[5].boards, 3);
        assert_eq!(scenarios[5].reconfig, SimDuration::from_millis(80));
    }

    #[test]
    fn duplicate_axes_and_oversized_sweeps_are_rejected() {
        let duplicate = vec![
            SweepAxis::parse("boards=1..2").unwrap(),
            SweepAxis::parse("boards=3..4").unwrap(),
        ];
        assert!(expand_scenarios(&base(), &duplicate)
            .unwrap_err()
            .contains("at most once"));
        let huge = vec![
            SweepAxis::parse("boards=1..128").unwrap(),
            SweepAxis::parse("slots=1..8").unwrap(),
        ];
        assert!(expand_scenarios(&base(), &huge).unwrap_err().contains("max 512"));
    }
}
