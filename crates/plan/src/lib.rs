//! # nimblock-plan — trace-driven capacity planning
//!
//! Answers "what do I buy for Black Friday" from one recorded day of
//! traffic (ROADMAP item 5, DESIGN.md §18). The input is a compact
//! serving trace recorded by the front door
//! (`nimblock_obs::record`, written by `faas --record-out`); the output
//! is a what-if sweep over counterfactual fleets — ±boards, ±slots,
//! different CAP (reconfiguration) latency, different routing policy —
//! with per-class predicted SLO attainment, shed, and board-seconds cost
//! per scenario.
//!
//! Two engines, the same split as the berkeley-emulation-engine layout
//! (slow exact simulator vs fast planning estimator), one level up from
//! the `nimblock-ilp` exact/heuristic split:
//!
//! - **Exact replay** — the recorded offered sequence re-served through
//!   the real front door ([`nimblock_faas::FrontDoor::replay`]). On the
//!   unmodified configuration this reproduces the recorded run's report
//!   *byte-for-byte* (checked against the report embedded in the trace
//!   footer); on a counterfactual configuration it is ground truth, but
//!   pays the full dispatcher + digest cost.
//! - **Analytical estimator** ([`estimator`]) — a single-pass fluid
//!   approximation: the fleet collapses to one earliest-free-slot pool,
//!   bitstream warmth becomes a calibrated per-function probability
//!   (error-diffused, so runs are deterministic), and the real admission
//!   and shed guards run unchanged against the approximated queue wait.
//!   Calibration (warm rate, queue-wait scale) comes from the recorded
//!   attribution components, so the estimator is anchored to the
//!   recorded day, not to a priori service-time models.
//!
//! Every [`PlanReport`] carries its own measured error bound: a sampled
//! subset of scenarios is replayed exactly and the worst estimator
//! attainment error (percentage points) across those samples is
//! reported next to every prediction.
//!
//! # Example
//!
//! ```
//! use nimblock_faas::{FrontDoor, FrontDoorConfig, FunctionRegistry};
//! use nimblock_plan::{plan, PlanOptions};
//!
//! let mut config = FrontDoorConfig::new(7);
//! config.invocations = 2_000;
//! let door = FrontDoor::new(FunctionRegistry::benchmark_suite(), config);
//! let (_report, trace) = door.run_recorded(1.0);
//! let mut options = PlanOptions::default();
//! options.sweeps = vec!["boards=2..6".to_owned()];
//! let report = plan(&trace, &options).unwrap();
//! assert_eq!(report.scenarios.len(), 5);
//! assert_eq!(report.replay_check, "byte-identical");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod estimator;
pub mod report;
pub mod sweep;

use nimblock_faas::{verify_trace_functions, FrontDoor, FrontDoorConfig, FunctionRegistry};
use nimblock_obs::record::{TraceReader, KIND_ENGINE, KIND_SERVING};

pub use estimator::{Calibration, Estimator};
pub use report::{render_plan, Outcome, PlanFormat, PlanReport, ScenarioRow};
pub use sweep::{expand_scenarios, Scenario, SweepAxis};

use estimator::exact_outcome;

/// Planner knobs, all optional.
#[derive(Debug, Clone)]
pub struct PlanOptions {
    /// Sweep axis specs (`boards=1..32`, `slots=2..4`,
    /// `reconfig-ms=40,80,160`, `policy=cache-aware,round-robin`),
    /// combined as a cross product. Empty = `boards=1..8`.
    pub sweeps: Vec<String>,
    /// Offered-attainment target the recommendation must meet.
    pub slo_target: f64,
    /// Maximum scenarios validated by exact replay (the baseline
    /// byte-identity check runs regardless).
    pub replays: usize,
}

impl Default for PlanOptions {
    fn default() -> Self {
        PlanOptions { sweeps: Vec::new(), slo_target: 0.95, replays: 5 }
    }
}

/// Evenly spread `count` sample indices over `0..n`, endpoints first.
fn replay_indices(n: usize, count: usize) -> Vec<usize> {
    if n == 0 || count == 0 {
        return Vec::new();
    }
    if n <= count {
        return (0..n).collect();
    }
    let mut picks = Vec::with_capacity(count);
    for i in 0..count {
        // i/(count-1) of the way through the sweep, rounded to a slot.
        let index = if count == 1 { 0 } else { i * (n - 1) / (count - 1) };
        if !picks.contains(&index) {
            picks.push(index);
        }
    }
    picks
}

/// Runs the capacity planner over the raw bytes of a recorded serving
/// trace: calibrates the estimator, sweeps the requested scenarios,
/// validates a sampled subset by exact replay, and checks that replaying
/// the *unmodified* configuration reproduces the recorded report
/// byte-for-byte.
pub fn plan(trace: &[u8], options: &PlanOptions) -> Result<PlanReport, String> {
    let reader = TraceReader::parse(trace)?;
    let header = reader.header();
    match header.kind {
        KIND_SERVING => {}
        KIND_ENGINE => {
            return Err(
                "this is an engine stimulus trace; capacity planning needs a serving trace \
                 (record one with `faas --record-out`)"
                    .to_owned(),
            )
        }
        other => return Err(format!("unknown trace kind {other}")),
    }
    if !(options.slo_target.is_finite() && (0.0..=1.0).contains(&options.slo_target)) {
        return Err(format!("--slo must be a fraction in 0..=1, got {}", options.slo_target));
    }
    let registry = FunctionRegistry::benchmark_suite();
    verify_trace_functions(&registry, header)?;
    let baseline_config = FrontDoorConfig::from_trace_header(header)?;
    let baseline = Scenario::baseline(header);
    let sweeps = if options.sweeps.is_empty() {
        vec!["boards=1..8".to_owned()]
    } else {
        options.sweeps.clone()
    };
    let axes = sweeps
        .iter()
        .map(|spec| SweepAxis::parse(spec))
        .collect::<Result<Vec<_>, _>>()?;
    let scenarios = expand_scenarios(&baseline, &axes)?;

    // Decode once; the estimator and every replay iterate this slice.
    let records = reader
        .records()
        .collect::<Result<Vec<_>, _>>()
        .map_err(|e| format!("trace records: {e}"))?;
    for record in &records {
        if record.function as usize >= header.functions.len() {
            return Err(format!(
                "record references function {} outside the {}-entry table",
                record.function,
                header.functions.len()
            ));
        }
    }

    // Byte-identity check: the unmodified configuration replayed against
    // the report embedded at record time.
    let replay_check = match reader.report_json() {
        None => "report-missing".to_owned(),
        Some(embedded) => {
            let door = FrontDoor::new(registry.clone(), baseline_config);
            let replayed = door.replay(
                header.load_factor,
                records.iter().map(estimator::offered_from_record),
            );
            if nimblock_ser::to_string_pretty(&replayed) == embedded {
                "byte-identical".to_owned()
            } else {
                "MISMATCH".to_owned()
            }
        }
    };

    let calibration = Calibration::from_trace(header, &records, &registry)?;
    let estimator = Estimator::new(header, &registry, &calibration);

    let mut rows: Vec<ScenarioRow> = scenarios
        .iter()
        .map(|scenario| ScenarioRow {
            boards: scenario.boards,
            slots: scenario.slots,
            policy: scenario.policy.name().to_owned(),
            reconfig_ms: scenario.reconfig.as_micros() as f64 / 1_000.0,
            predicted: estimator.predict(scenario, &records),
            exact: None,
            error_pp: None,
        })
        .collect();

    // Sampled exact replays: ground truth plus the measured error bound.
    let picks = replay_indices(rows.len(), options.replays);
    let mut error_bound_pp = 0.0f64;
    for &index in &picks {
        let scenario = &scenarios[index];
        let exact = exact_outcome(header, &registry, &records, scenario)?;
        let row = &mut rows[index];
        let mut worst = (row.predicted.offered_attainment - exact.offered_attainment).abs();
        for (predicted, exact_class) in row
            .predicted
            .class_attainment
            .iter()
            .zip(&exact.class_attainment)
        {
            worst = worst.max((predicted - exact_class).abs());
        }
        // Round *up* to two decimals: the published bound must never
        // understate the raw error it was measured from.
        let error_pp = (worst * 100.0 * 100.0).ceil() / 100.0;
        error_bound_pp = error_bound_pp.max(error_pp);
        row.exact = Some(exact);
        row.error_pp = Some(error_pp);
    }

    // Cheapest scenario whose *prediction* meets the target.
    let recommendation = rows
        .iter()
        .filter(|row| row.predicted.offered_attainment >= options.slo_target)
        .min_by(|a, b| {
            (a.predicted.board_seconds, a.boards, a.slots)
                .partial_cmp(&(b.predicted.board_seconds, b.boards, b.slots))
                .expect("board-seconds are finite")
        })
        .map(|row| {
            format!(
                "{} board(s) x {} slot(s), {} routing, {:.1} ms reconfig ({:.1} board-s)",
                row.boards,
                row.slots,
                row.policy,
                row.reconfig_ms,
                row.predicted.board_seconds,
            )
        });

    Ok(PlanReport {
        seed: header.seed,
        records: reader.summary().records,
        process: header.process.clone(),
        load_factor: header.load_factor,
        functions: header.functions.len() as u64,
        tenants: header.tenants,
        baseline_boards: baseline.boards,
        baseline_slots: baseline.slots,
        baseline_policy: baseline.policy.name().to_owned(),
        baseline_reconfig_ms: baseline.reconfig.as_micros() as f64 / 1_000.0,
        slo_target: options.slo_target,
        warm_rate: calibration.warm_rate,
        queue_scale: calibration.queue_scale,
        replay_check,
        sampled_replays: picks.len() as u64,
        error_bound_pp,
        recommendation,
        scenarios: rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nimblock_faas::{FrontDoor, FrontDoorConfig, FunctionRegistry, TenantPolicy};
    use nimblock_sim::SimDuration;
    use nimblock_workload::ArrivalProcess;

    fn recorded_trace(seed: u64, invocations: u64) -> Vec<u8> {
        let mut config = FrontDoorConfig::new(seed);
        config.invocations = invocations;
        config.process = ArrivalProcess::parse("bursty:2000").expect("parses");
        config.shed_horizon = SimDuration::from_millis(200);
        config.tenant_policy = TenantPolicy { rate_per_sec: 300.0, burst: 32, quota: 64 };
        let door = FrontDoor::new(FunctionRegistry::benchmark_suite(), config);
        door.run_recorded(1.0).1
    }

    #[test]
    fn plan_sweeps_and_validates_the_baseline() {
        let trace = recorded_trace(11, 3_000);
        let mut options = PlanOptions::default();
        options.sweeps = vec!["boards=2..6".to_owned()];
        let report = plan(&trace, &options).expect("plans");
        assert_eq!(report.scenarios.len(), 5);
        assert_eq!(report.replay_check, "byte-identical");
        assert_eq!(report.sampled_replays, 5, "5 scenarios, 5 replay slots: all sampled");
        for row in &report.scenarios {
            let exact = row.exact.as_ref().expect("all sampled");
            assert_eq!(exact.offered, row.predicted.offered, "same traffic");
            let error = row.error_pp.expect("sampled rows carry an error");
            assert!(
                error <= report.error_bound_pp + 1e-9,
                "row error {error} exceeds the bound {}",
                report.error_bound_pp
            );
        }
        // The acceptance property: every estimator prediction sits within
        // the report's own measured error bound of its exact replay.
        let bound = report.error_bound_pp / 100.0 + 1e-12;
        for row in &report.scenarios {
            if let Some(exact) = &row.exact {
                assert!(
                    (row.predicted.offered_attainment - exact.offered_attainment).abs() <= bound
                );
            }
        }
    }

    #[test]
    fn more_boards_predict_no_worse_attainment() {
        let trace = recorded_trace(13, 3_000);
        let mut options = PlanOptions::default();
        options.sweeps = vec!["boards=1..12".to_owned()];
        options.replays = 3;
        let report = plan(&trace, &options).expect("plans");
        assert_eq!(report.scenarios.len(), 12);
        assert_eq!(report.sampled_replays, 3);
        let first = &report.scenarios[0].predicted;
        let last = &report.scenarios[11].predicted;
        assert!(
            last.offered_attainment >= first.offered_attainment,
            "12 boards ({}) must not predict worse than 1 ({})",
            last.offered_attainment,
            first.offered_attainment
        );
        assert!(last.board_seconds > first.board_seconds, "capacity costs board-seconds");
    }

    #[test]
    fn engine_traces_are_rejected_with_guidance() {
        let mut header = nimblock_obs::record::TraceHeader::serving(1);
        header.kind = nimblock_obs::record::KIND_ENGINE;
        let bytes = nimblock_obs::TraceWriter::new(&header).finish(None);
        let error = plan(&bytes, &PlanOptions::default()).expect_err("engine traces don't plan");
        assert!(error.contains("serving trace"), "{error}");
    }

    #[test]
    fn garbage_bytes_are_rejected() {
        assert!(plan(b"not a trace", &PlanOptions::default()).is_err());
    }

    #[test]
    fn replay_indices_cover_endpoints() {
        assert_eq!(replay_indices(32, 5), vec![0, 7, 15, 23, 31]);
        assert_eq!(replay_indices(3, 5), vec![0, 1, 2]);
        assert_eq!(replay_indices(10, 1), vec![0]);
        assert!(replay_indices(0, 5).is_empty());
        assert_eq!(replay_indices(2, 2), vec![0, 1]);
    }

    #[test]
    fn reports_round_trip_json() {
        let trace = recorded_trace(17, 1_000);
        let mut options = PlanOptions::default();
        options.sweeps = vec!["boards=3..5".to_owned(), "reconfig-ms=40,80".to_owned()];
        let report = plan(&trace, &options).expect("plans");
        assert_eq!(report.scenarios.len(), 6);
        let json = nimblock_ser::to_string_pretty(&report);
        let back: PlanReport = nimblock_ser::from_str(&json).expect("round-trips");
        assert_eq!(back, report);
    }
}
