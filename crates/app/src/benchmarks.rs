//! The six evaluated benchmark applications.
//!
//! The paper's application pool (§5.1) mixes three Rosetta benchmarks
//! (3D rendering, digit recognition, optical flow) with three custom
//! benchmarks (image compression, LeNet, AlexNet). Each is manually
//! partitioned into slot-sized tasks; Table 2 gives the resulting task and
//! edge counts, which this module reproduces exactly:
//!
//! | benchmark          | tasks | edges | shape                    |
//! |--------------------|------:|------:|--------------------------|
//! | LeNet              | 3     | 2     | chain                    |
//! | AlexNet            | 38    | 184   | layered (Figure 4)       |
//! | Image compression  | 6     | 5     | chain                    |
//! | Optical flow       | 9     | 8     | chain                    |
//! | 3D rendering       | 3     | 2     | chain                    |
//! | Digit recognition  | 3     | 2     | chain                    |
//!
//! # Latency calibration
//!
//! Per-task latencies are not published; we calibrate them so that the
//! **baseline no-sharing algorithm at batch size 5** reproduces the
//! execution times of Table 3 (LeNet 0.73 s, AlexNet 65.44 s, image
//! compression 0.56 s, optical flow 22.91 s, 3D rendering 1.55 s, digit
//! recognition 984.23 s) under the 80 ms reconfiguration model. For chains
//! whose per-task `5 × latency` exceeds the reconfiguration time, execution
//! time is ≈ `batch × Σ latency`, so each chain's latencies sum to one
//! fifth of its Table 3 execution time. AlexNet's per-layer latencies sum
//! to 13.088 s across its nine layers. The calibration is verified
//! end-to-end by the `table3_calibration` integration test.

use nimblock_sim::SimDuration;

use crate::{AppSpec, TaskGraphBuilder};

/// AlexNet layer widths: how many identical slot-sized tasks each layer is
/// split into (Figure 4 of the paper). The widths sum to 38 tasks and the
/// complete bipartite connections between consecutive layers give 184 edges,
/// matching Table 2.
pub const ALEXNET_LAYER_WIDTHS: [usize; 9] = [1, 4, 6, 6, 6, 6, 5, 3, 1];

/// Per-layer task latencies for AlexNet, in microseconds (calibrated).
const ALEXNET_LAYER_LATENCY_US: [u64; 9] = [
    2_000_000, 2_400_000, 1_900_000, 1_600_000, 1_300_000, 1_300_000, 1_100_000, 900_000, 588_000,
];

fn chain_app(name: &str, stage_names: &[&str], latencies_us: &[u64]) -> AppSpec {
    assert_eq!(stage_names.len(), latencies_us.len());
    let stages = stage_names
        .iter()
        .zip(latencies_us)
        .map(|(stage, &us)| (*stage, SimDuration::from_micros(us)));
    AppSpec::new(name, TaskGraphBuilder::chain(stages))
}

/// LeNet: six network layers grouped into three slot-sized tasks
/// (conv1+pool1, conv2+pool2, conv3+fc), as in the paper's §2.2 example.
pub fn lenet() -> AppSpec {
    chain_app(
        "LeNet",
        &["conv1_pool1", "conv2_pool2", "conv3_fc"],
        &[60_000, 50_000, 36_000],
    )
}

/// AlexNet: 38 tasks in nine layers, each layer split into identical
/// parallel tasks, consecutive layers fully connected (Figure 4).
pub fn alexnet() -> AppSpec {
    let latencies: Vec<SimDuration> = ALEXNET_LAYER_LATENCY_US
        .iter()
        .map(|&us| SimDuration::from_micros(us))
        .collect();
    AppSpec::new(
        "AlexNet",
        TaskGraphBuilder::layered(&ALEXNET_LAYER_WIDTHS, &latencies),
    )
}

/// Image compression: a six-stage chain (custom benchmark).
pub fn image_compression() -> AppSpec {
    chain_app(
        "ImageCompression",
        &["tile", "dct", "quantize", "zigzag", "rle", "entropy"],
        &[22_000, 20_000, 18_000, 18_000, 17_000, 17_000],
    )
}

/// Optical flow: a nine-stage chain (Rosetta).
pub fn optical_flow() -> AppSpec {
    chain_app(
        "OpticalFlow",
        &[
            "gradient_xy",
            "gradient_z",
            "gradient_weight",
            "outer_product",
            "tensor_weight_y",
            "tensor_weight_x",
            "flow_calc",
            "refine",
            "output",
        ],
        &[
            520_000, 515_000, 512_000, 510_000, 509_000, 508_000, 505_000, 502_000, 501_000,
        ],
    )
}

/// 3D rendering: a three-stage chain (Rosetta).
pub fn rendering_3d() -> AppSpec {
    chain_app(
        "3DRendering",
        &["projection", "rasterization", "zculling"],
        &[110_000, 105_000, 95_000],
    )
}

/// Digit recognition: a three-stage KNN chain (Rosetta). By far the
/// longest-running benchmark (Table 3: 984 s baseline execution).
pub fn digit_recognition() -> AppSpec {
    chain_app(
        "DigitRecognition",
        &["popcount", "knn_vote", "classify"],
        &[65_700_000, 65_600_000, 65_546_000],
    )
}

/// Returns all six benchmarks in the order of Table 2.
pub fn all() -> Vec<AppSpec> {
    vec![
        lenet(),
        alexnet(),
        image_compression(),
        optical_flow(),
        rendering_3d(),
        digit_recognition(),
    ]
}

/// Looks a benchmark up by the name its [`AppSpec`] reports.
pub fn by_name(name: &str) -> Option<AppSpec> {
    all().into_iter().find(|app| app.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_sizes_match() {
        let expected = [
            ("LeNet", 3, 2),
            ("AlexNet", 38, 184),
            ("ImageCompression", 6, 5),
            ("OpticalFlow", 9, 8),
            ("3DRendering", 3, 2),
            ("DigitRecognition", 3, 2),
        ];
        for (app, (name, tasks, edges)) in all().iter().zip(expected) {
            assert_eq!(app.name(), name);
            assert_eq!(app.graph().task_count(), tasks, "{name} task count");
            assert_eq!(app.graph().edge_count(), edges, "{name} edge count");
        }
    }

    #[test]
    fn alexnet_layer_structure() {
        let app = alexnet();
        assert_eq!(app.graph().depth() as usize, ALEXNET_LAYER_WIDTHS.len());
        assert_eq!(
            app.graph().level_widths(),
            ALEXNET_LAYER_WIDTHS.to_vec(),
            "level widths must equal the layer split"
        );
        assert_eq!(app.graph().max_width(), 6);
    }

    #[test]
    fn chains_are_chains() {
        for app in [lenet(), image_compression(), optical_flow(), rendering_3d(), digit_recognition()] {
            assert!(app.graph().is_chain(), "{} should be a chain", app.name());
        }
        assert!(!alexnet().graph().is_chain());
    }

    #[test]
    fn calibrated_chain_latencies_sum_to_table3_over_batch5() {
        // exec(batch 5) ≈ 5 × Σ latency for chains => Σ latency = exec / 5.
        let cases = [
            (lenet(), 146_000u64),
            (image_compression(), 112_000),
            (optical_flow(), 4_582_000),
            (rendering_3d(), 310_000),
            (digit_recognition(), 196_846_000),
        ];
        for (app, total_us) in cases {
            assert_eq!(
                app.graph().total_latency(),
                SimDuration::from_micros(total_us),
                "{} total latency",
                app.name()
            );
        }
    }

    #[test]
    fn alexnet_per_layer_latency_sums_to_calibration() {
        let total: u64 = ALEXNET_LAYER_LATENCY_US.iter().sum();
        assert_eq!(total, 13_088_000);
        // Critical path = one task per layer.
        assert_eq!(
            alexnet().graph().critical_path_latency(),
            SimDuration::from_micros(total)
        );
    }

    #[test]
    fn by_name_finds_all_and_rejects_unknown() {
        for app in all() {
            assert!(by_name(app.name()).is_some());
        }
        assert!(by_name("NotABenchmark").is_none());
    }

    #[test]
    fn task_runtimes_span_papers_observed_range() {
        // Paper §5.1: some task runtimes are as small as 20% of the 80 ms
        // reconfiguration time; long tasks run far beyond it.
        let shortest = image_compression()
            .graph()
            .tasks()
            .map(|(_, t)| t.latency())
            .min()
            .unwrap();
        assert!(shortest <= SimDuration::from_millis(80 / 4));
        let longest = digit_recognition()
            .graph()
            .tasks()
            .map(|(_, t)| t.latency())
            .max()
            .unwrap();
        assert!(longest >= SimDuration::from_millis(80 * 200));
    }
}
