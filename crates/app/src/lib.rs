//! Applications, task graphs, and the Nimblock benchmark suite.
//!
//! Before an application reaches the Nimblock hypervisor it is partitioned
//! into slot-sized *tasks* composed into a *task-graph* — a DAG whose nodes
//! are tasks (with HLS latency estimates and resource footprints) and whose
//! edges are data dependencies (paper §2.2). This crate models that
//! compilation product:
//!
//! * [`TaskSpec`] / [`TaskId`] — one slot-sized task,
//! * [`TaskGraph`] — a validated DAG with the analyses schedulers need
//!   (topological order, levels, critical path, width),
//! * [`AppSpec`] — a named application: graph + per-task bitstreams,
//! * [`Priority`] — the paper's three priority levels (1 / 3 / 9),
//! * [`benchmarks`] — the six evaluated applications with Table 2 topologies
//!   and latencies calibrated to Table 3.
//!
//! # Example
//!
//! ```
//! use nimblock_app::benchmarks;
//!
//! let alexnet = benchmarks::alexnet();
//! assert_eq!(alexnet.graph().task_count(), 38);
//! assert_eq!(alexnet.graph().edge_count(), 184);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod application;
pub mod benchmarks;
mod graph;
mod task;

pub use application::{AppSpec, Priority};
pub use graph::{GraphError, TaskGraph, TaskGraphBuilder};
pub use task::{TaskId, TaskSpec};
