//! Slot-sized tasks.

use std::fmt;

use nimblock_ser::{impl_json_newtype, impl_json_struct};

use nimblock_fpga::Resources;
use nimblock_sim::SimDuration;

/// Identifier of a task within one [`crate::TaskGraph`].
///
/// Task identifiers are dense indices assigned by the graph builder in
/// insertion order; they are meaningless across graphs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(u32);

impl_json_newtype!(TaskId);

impl TaskId {
    /// Creates a task identifier from its index in the graph.
    pub const fn new(index: u32) -> Self {
        TaskId(index)
    }

    /// Returns the task's index in its graph.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task#{}", self.0)
    }
}

/// One slot-sized task: a portion of an application with an input and an
/// output (paper §2.2).
///
/// The latency estimate is the per-batch-item run time reported by HLS; the
/// hypervisor uses it for token accumulation and the saturation analysis
/// uses it to pick goal numbers. The resource footprint must fit within a
/// slot.
///
/// # Example
///
/// ```
/// use nimblock_app::TaskSpec;
/// use nimblock_sim::SimDuration;
///
/// let task = TaskSpec::new("conv1", SimDuration::from_millis(48));
/// assert_eq!(task.name(), "conv1");
/// assert_eq!(task.latency().as_millis(), 48);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskSpec {
    name: String,
    latency: SimDuration,
    resources: Resources,
    output_bytes: u64,
}

impl_json_struct!(TaskSpec { name, latency, resources, output_bytes });

/// Default modelled size of a task's output buffer (1 MiB).
pub(crate) const DEFAULT_OUTPUT_BYTES: u64 = 1 << 20;

impl TaskSpec {
    /// Creates a task with the given name and per-batch-item latency
    /// estimate, a typical slot-sized resource footprint, and a 1 MiB output
    /// buffer.
    pub fn new(name: impl Into<String>, latency: SimDuration) -> Self {
        TaskSpec {
            name: name.into(),
            latency,
            resources: nimblock_fpga::zcu106::SLOT_MIN,
            output_bytes: DEFAULT_OUTPUT_BYTES,
        }
    }

    /// Sets the task's resource footprint.
    pub fn with_resources(mut self, resources: Resources) -> Self {
        self.resources = resources;
        self
    }

    /// Sets the size of the task's output buffer in bytes.
    pub fn with_output_bytes(mut self, output_bytes: u64) -> Self {
        self.output_bytes = output_bytes;
        self
    }

    /// Returns the task name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns the HLS per-batch-item latency estimate.
    pub fn latency(&self) -> SimDuration {
        self.latency
    }

    /// Returns the task's resource footprint.
    pub fn resources(&self) -> &Resources {
        &self.resources
    }

    /// Returns the size of the task's output buffer in bytes.
    pub fn output_bytes(&self) -> u64 {
        self.output_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_style_setters_apply() {
        let task = TaskSpec::new("t", SimDuration::from_millis(1))
            .with_resources(Resources { dsp: 7, ..Resources::ZERO })
            .with_output_bytes(42);
        assert_eq!(task.resources().dsp, 7);
        assert_eq!(task.output_bytes(), 42);
    }

    #[test]
    fn default_footprint_fits_every_slot() {
        let task = TaskSpec::new("t", SimDuration::ZERO);
        for i in 0..nimblock_fpga::zcu106::SLOT_COUNT {
            assert!(task
                .resources()
                .fits_within(&nimblock_fpga::zcu106::slot_resources(i)));
        }
    }

    #[test]
    fn task_id_roundtrips_index() {
        assert_eq!(TaskId::new(5).index(), 5);
        assert_eq!(TaskId::new(5).to_string(), "task#5");
    }
}
