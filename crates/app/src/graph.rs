//! Validated task-graph DAGs.

use std::error::Error;
use std::fmt;

use nimblock_ser::impl_json_struct;

use nimblock_sim::SimDuration;

use crate::{TaskId, TaskSpec};

/// An error raised while constructing a [`TaskGraph`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// The graph has no tasks.
    Empty,
    /// An edge endpoint refers to a task that was never added.
    InvalidEdge {
        /// Source of the offending edge.
        from: TaskId,
        /// Destination of the offending edge.
        to: TaskId,
    },
    /// An edge connects a task to itself.
    SelfLoop(TaskId),
    /// The same dependency was added twice.
    DuplicateEdge {
        /// Source of the offending edge.
        from: TaskId,
        /// Destination of the offending edge.
        to: TaskId,
    },
    /// The dependencies form a cycle, so no execution order exists.
    Cycle,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Empty => write!(f, "task graph has no tasks"),
            GraphError::InvalidEdge { from, to } => {
                write!(f, "edge {from} -> {to} references a task that was never added")
            }
            GraphError::SelfLoop(task) => write!(f, "{task} depends on itself"),
            GraphError::DuplicateEdge { from, to } => {
                write!(f, "edge {from} -> {to} was added twice")
            }
            GraphError::Cycle => write!(f, "task dependencies form a cycle"),
        }
    }
}

impl Error for GraphError {}

/// Incrementally builds a [`TaskGraph`].
///
/// # Example
///
/// ```
/// use nimblock_app::{TaskGraphBuilder, TaskSpec};
/// use nimblock_sim::SimDuration;
///
/// let mut builder = TaskGraphBuilder::new();
/// let a = builder.add_task(TaskSpec::new("a", SimDuration::from_millis(10)));
/// let b = builder.add_task(TaskSpec::new("b", SimDuration::from_millis(20)));
/// builder.add_edge(a, b)?;
/// let graph = builder.build()?;
/// assert_eq!(graph.task_count(), 2);
/// assert_eq!(graph.successors(a), &[b]);
/// # Ok::<(), nimblock_app::GraphError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct TaskGraphBuilder {
    tasks: Vec<TaskSpec>,
    edges: Vec<(TaskId, TaskId)>,
}

impl TaskGraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        TaskGraphBuilder::default()
    }

    /// Adds a task, returning its identifier.
    pub fn add_task(&mut self, task: TaskSpec) -> TaskId {
        let id = TaskId::new(self.tasks.len() as u32);
        self.tasks.push(task);
        id
    }

    /// Adds a dependency: `to` consumes the output of `from`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidEdge`], [`GraphError::SelfLoop`], or
    /// [`GraphError::DuplicateEdge`] for malformed edges. Cycles are
    /// detected in [`TaskGraphBuilder::build`].
    pub fn add_edge(&mut self, from: TaskId, to: TaskId) -> Result<(), GraphError> {
        if from.index() >= self.tasks.len() || to.index() >= self.tasks.len() {
            return Err(GraphError::InvalidEdge { from, to });
        }
        if from == to {
            return Err(GraphError::SelfLoop(from));
        }
        if self.edges.contains(&(from, to)) {
            return Err(GraphError::DuplicateEdge { from, to });
        }
        self.edges.push((from, to));
        Ok(())
    }

    /// Adds the chain of dependencies `ids[0] -> ids[1] -> ...`.
    ///
    /// # Errors
    ///
    /// Propagates the first edge error encountered.
    pub fn add_chain(&mut self, ids: &[TaskId]) -> Result<(), GraphError> {
        for pair in ids.windows(2) {
            self.add_edge(pair[0], pair[1])?;
        }
        Ok(())
    }

    /// Builds a chain graph directly from `(name, latency)` stages.
    ///
    /// # Panics
    ///
    /// Panics if `stages` is empty.
    ///
    /// # Example
    ///
    /// ```
    /// use nimblock_app::TaskGraphBuilder;
    /// use nimblock_sim::SimDuration;
    ///
    /// let graph = TaskGraphBuilder::chain([
    ///     ("load", SimDuration::from_millis(10)),
    ///     ("compute", SimDuration::from_millis(50)),
    /// ]);
    /// assert!(graph.is_chain());
    /// ```
    pub fn chain<N: Into<String>>(
        stages: impl IntoIterator<Item = (N, SimDuration)>,
    ) -> TaskGraph {
        let mut builder = TaskGraphBuilder::new();
        let ids: Vec<TaskId> = stages
            .into_iter()
            .map(|(name, latency)| builder.add_task(crate::TaskSpec::new(name, latency)))
            .collect();
        assert!(!ids.is_empty(), "a chain needs at least one stage");
        builder.add_chain(&ids).expect("fresh chain edges are valid");
        builder.build().expect("a non-empty chain is a valid DAG")
    }

    /// Builds a layered graph: layer `i` contains `widths[i]` identical
    /// tasks of latency `latencies[i]`, with consecutive layers fully
    /// connected (the AlexNet shape of the paper's Figure 4).
    ///
    /// # Panics
    ///
    /// Panics if the inputs are empty, have different lengths, or contain a
    /// zero width.
    pub fn layered(widths: &[usize], latencies: &[SimDuration]) -> TaskGraph {
        assert!(!widths.is_empty(), "a layered graph needs at least one layer");
        assert_eq!(widths.len(), latencies.len(), "one latency per layer");
        assert!(widths.iter().all(|&w| w > 0), "layer widths must be positive");
        let mut builder = TaskGraphBuilder::new();
        let mut previous: Vec<TaskId> = Vec::new();
        for (layer, (&width, &latency)) in widths.iter().zip(latencies).enumerate() {
            let ids: Vec<TaskId> = (0..width)
                .map(|part| {
                    builder.add_task(crate::TaskSpec::new(
                        format!("layer{layer}_{part}"),
                        latency,
                    ))
                })
                .collect();
            for &from in &previous {
                for &to in &ids {
                    builder.add_edge(from, to).expect("bipartite edges are valid");
                }
            }
            previous = ids;
        }
        builder.build().expect("layered graphs are valid DAGs")
    }

    /// Validates the accumulated tasks and edges into a [`TaskGraph`].
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Empty`] for a graph with no tasks or
    /// [`GraphError::Cycle`] if the dependencies admit no execution order.
    pub fn build(self) -> Result<TaskGraph, GraphError> {
        TaskGraph::from_parts(self.tasks, self.edges)
    }
}

/// A validated DAG of slot-sized tasks.
///
/// Construction (via [`TaskGraphBuilder`]) guarantees the graph is non-empty
/// and acyclic, so every analysis here is total. The precomputed analyses
/// are exactly what the schedulers and the saturation analysis consume:
/// topological order (preemption picks the topologically-latest running
/// task, paper Algorithm 2), per-task levels and widths (parallelism
/// available to slot allocation), and latency aggregates (token
/// accumulation, deadlines).
#[derive(Debug, Clone, PartialEq)]
pub struct TaskGraph {
    tasks: Vec<TaskSpec>,
    edges: Vec<(TaskId, TaskId)>,
    preds: Vec<Vec<TaskId>>,
    succs: Vec<Vec<TaskId>>,
    topo: Vec<TaskId>,
    levels: Vec<u32>,
}

impl_json_struct!(TaskGraph { tasks, edges, preds, succs, topo, levels });

impl TaskGraph {
    fn from_parts(
        tasks: Vec<TaskSpec>,
        edges: Vec<(TaskId, TaskId)>,
    ) -> Result<TaskGraph, GraphError> {
        if tasks.is_empty() {
            return Err(GraphError::Empty);
        }
        let n = tasks.len();
        let mut preds: Vec<Vec<TaskId>> = vec![Vec::new(); n];
        let mut succs: Vec<Vec<TaskId>> = vec![Vec::new(); n];
        for &(from, to) in &edges {
            succs[from.index()].push(to);
            preds[to.index()].push(from);
        }

        // Kahn's algorithm: topological order + cycle detection, with the
        // lowest-id-first tie break so the order is deterministic.
        let mut indegree: Vec<usize> = preds.iter().map(Vec::len).collect();
        let mut ready: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut topo = Vec::with_capacity(n);
        let mut levels = vec![0u32; n];
        while let Some(i) = ready.first().copied() {
            ready.remove(0);
            topo.push(TaskId::new(i as u32));
            for &succ in &succs[i] {
                let s = succ.index();
                levels[s] = levels[s].max(levels[i] + 1);
                indegree[s] -= 1;
                if indegree[s] == 0 {
                    // Insert keeping `ready` sorted for determinism.
                    let pos = ready.partition_point(|&r| r < s);
                    ready.insert(pos, s);
                }
            }
        }
        if topo.len() != n {
            return Err(GraphError::Cycle);
        }
        Ok(TaskGraph {
            tasks,
            edges,
            preds,
            succs,
            topo,
            levels,
        })
    }

    /// Returns the number of tasks.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Returns the number of dependency edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Returns the specification of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    pub fn task(&self, id: TaskId) -> &TaskSpec {
        &self.tasks[id.index()]
    }

    /// Returns an iterator over `(id, spec)` pairs in insertion order.
    pub fn tasks(&self) -> impl Iterator<Item = (TaskId, &TaskSpec)> {
        self.tasks
            .iter()
            .enumerate()
            .map(|(i, t)| (TaskId::new(i as u32), t))
    }

    /// Returns the identifiers of every task, in insertion order.
    pub fn task_ids(&self) -> impl Iterator<Item = TaskId> + '_ {
        (0..self.tasks.len()).map(|i| TaskId::new(i as u32))
    }

    /// Returns the dependency edges.
    pub fn edges(&self) -> &[(TaskId, TaskId)] {
        &self.edges
    }

    /// Returns the direct predecessors of `id`.
    pub fn predecessors(&self, id: TaskId) -> &[TaskId] {
        &self.preds[id.index()]
    }

    /// Returns the direct successors of `id`.
    pub fn successors(&self, id: TaskId) -> &[TaskId] {
        &self.succs[id.index()]
    }

    /// Returns a topological order of the tasks (deterministic: lowest
    /// identifier first among ready tasks).
    pub fn topological_order(&self) -> &[TaskId] {
        &self.topo
    }

    /// Returns the ASAP level of `id`: the length of the longest dependency
    /// chain ending at `id`.
    pub fn level(&self, id: TaskId) -> u32 {
        self.levels[id.index()]
    }

    /// Returns the number of levels (depth of the graph).
    pub fn depth(&self) -> u32 {
        self.levels.iter().copied().max().unwrap_or(0) + 1
    }

    /// Returns, for each level, how many tasks sit at that level.
    pub fn level_widths(&self) -> Vec<usize> {
        let mut widths = vec![0usize; self.depth() as usize];
        for &level in &self.levels {
            widths[level as usize] += 1;
        }
        widths
    }

    /// Returns the maximum number of tasks that share a level — the
    /// task-level parallelism available to slot allocation.
    ///
    /// Alloc-free on purpose: this sits on the scheduler's slot-allocation
    /// path (`usable_cap`) once per reconfiguration decision, and paper
    /// task graphs are small enough that the O(depth · tasks) scan beats
    /// materializing [`TaskGraph::level_widths`].
    pub fn max_width(&self) -> usize {
        let mut max = 1;
        for level in 0..self.depth() {
            let width = self.levels.iter().filter(|&&l| l == level).count();
            max = max.max(width);
        }
        max
    }

    /// Returns `true` if the graph is a simple chain.
    pub fn is_chain(&self) -> bool {
        self.max_width() == 1 && self.edge_count() + 1 == self.task_count()
    }

    /// Returns the tasks with no predecessors.
    pub fn sources(&self) -> Vec<TaskId> {
        self.task_ids()
            .filter(|&id| self.predecessors(id).is_empty())
            .collect()
    }

    /// Returns the tasks with no successors.
    pub fn sinks(&self) -> Vec<TaskId> {
        self.task_ids()
            .filter(|&id| self.successors(id).is_empty())
            .collect()
    }

    /// Returns the sum of all task latency estimates — the application
    /// latency estimate the hypervisor derives from HLS output (paper §4.1).
    pub fn total_latency(&self) -> SimDuration {
        self.tasks.iter().map(TaskSpec::latency).sum()
    }

    /// Returns the latency of the longest dependency path (per batch item).
    pub fn critical_path_latency(&self) -> SimDuration {
        let mut finish = vec![SimDuration::ZERO; self.tasks.len()];
        for &id in &self.topo {
            let start = self
                .predecessors(id)
                .iter()
                .map(|p| finish[p.index()])
                .max()
                .unwrap_or(SimDuration::ZERO);
            finish[id.index()] = start + self.task(id).latency();
        }
        finish.into_iter().max().unwrap_or(SimDuration::ZERO)
    }

    /// Returns every transitive ancestor of `id` (tasks whose output
    /// `id`'s computation depends on, directly or not).
    pub fn ancestors(&self, id: TaskId) -> Vec<TaskId> {
        let mut seen = vec![false; self.tasks.len()];
        let mut stack = vec![id];
        while let Some(t) = stack.pop() {
            for &p in self.predecessors(t) {
                if !seen[p.index()] {
                    seen[p.index()] = true;
                    stack.push(p);
                }
            }
        }
        self.task_ids().filter(|t| seen[t.index()]).collect()
    }

    /// Returns every transitive descendant of `id`.
    pub fn descendants(&self, id: TaskId) -> Vec<TaskId> {
        let mut seen = vec![false; self.tasks.len()];
        let mut stack = vec![id];
        while let Some(t) = stack.pop() {
            for &s in self.successors(t) {
                if !seen[s.index()] {
                    seen[s.index()] = true;
                    stack.push(s);
                }
            }
        }
        self.task_ids().filter(|t| seen[t.index()]).collect()
    }

    /// Renders the graph in Graphviz DOT format (for debugging and docs).
    pub fn to_dot(&self, name: &str) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{name}\" {{");
        for (id, task) in self.tasks() {
            let _ = writeln!(
                out,
                "  t{} [label=\"{} ({}ms)\"];",
                id.index(),
                task.name(),
                task.latency().as_millis()
            );
        }
        for &(from, to) in &self.edges {
            let _ = writeln!(out, "  t{} -> t{};", from.index(), to.index());
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(name: &str, ms: u64) -> TaskSpec {
        TaskSpec::new(name, SimDuration::from_millis(ms))
    }

    fn chain(n: usize) -> TaskGraph {
        let mut builder = TaskGraphBuilder::new();
        let ids: Vec<TaskId> = (0..n).map(|i| builder.add_task(spec(&format!("t{i}"), 10))).collect();
        builder.add_chain(&ids).unwrap();
        builder.build().unwrap()
    }

    /// A diamond: a -> {b, c} -> d.
    fn diamond() -> TaskGraph {
        let mut builder = TaskGraphBuilder::new();
        let a = builder.add_task(spec("a", 10));
        let b = builder.add_task(spec("b", 20));
        let c = builder.add_task(spec("c", 30));
        let d = builder.add_task(spec("d", 40));
        builder.add_edge(a, b).unwrap();
        builder.add_edge(a, c).unwrap();
        builder.add_edge(b, d).unwrap();
        builder.add_edge(c, d).unwrap();
        builder.build().unwrap()
    }

    #[test]
    fn empty_graph_is_rejected() {
        assert_eq!(TaskGraphBuilder::new().build().unwrap_err(), GraphError::Empty);
    }

    #[test]
    fn invalid_edges_are_rejected() {
        let mut builder = TaskGraphBuilder::new();
        let a = builder.add_task(spec("a", 1));
        let ghost = TaskId::new(9);
        assert!(matches!(
            builder.add_edge(a, ghost),
            Err(GraphError::InvalidEdge { .. })
        ));
        assert_eq!(builder.add_edge(a, a), Err(GraphError::SelfLoop(a)));
    }

    #[test]
    fn duplicate_edges_are_rejected() {
        let mut builder = TaskGraphBuilder::new();
        let a = builder.add_task(spec("a", 1));
        let b = builder.add_task(spec("b", 1));
        builder.add_edge(a, b).unwrap();
        assert!(matches!(
            builder.add_edge(a, b),
            Err(GraphError::DuplicateEdge { .. })
        ));
    }

    #[test]
    fn cycles_are_rejected_at_build() {
        let mut builder = TaskGraphBuilder::new();
        let a = builder.add_task(spec("a", 1));
        let b = builder.add_task(spec("b", 1));
        builder.add_edge(a, b).unwrap();
        builder.add_edge(b, a).unwrap();
        assert_eq!(builder.build().unwrap_err(), GraphError::Cycle);
    }

    #[test]
    fn topological_order_respects_edges() {
        let graph = diamond();
        let topo = graph.topological_order();
        let pos = |id: TaskId| topo.iter().position(|&t| t == id).unwrap();
        for &(from, to) in graph.edges() {
            assert!(pos(from) < pos(to), "{from} must precede {to}");
        }
    }

    #[test]
    fn levels_and_width_of_diamond() {
        let graph = diamond();
        assert_eq!(graph.depth(), 3);
        assert_eq!(graph.level_widths(), vec![1, 2, 1]);
        assert_eq!(graph.max_width(), 2);
        assert!(!graph.is_chain());
    }

    #[test]
    fn chain_analyses() {
        let graph = chain(5);
        assert!(graph.is_chain());
        assert_eq!(graph.max_width(), 1);
        assert_eq!(graph.depth(), 5);
        assert_eq!(graph.sources(), vec![TaskId::new(0)]);
        assert_eq!(graph.sinks(), vec![TaskId::new(4)]);
    }

    #[test]
    fn critical_path_of_diamond_takes_slow_branch() {
        // a(10) -> c(30) -> d(40) = 80 ms.
        assert_eq!(
            diamond().critical_path_latency(),
            SimDuration::from_millis(80)
        );
    }

    #[test]
    fn total_latency_sums_all_tasks() {
        assert_eq!(diamond().total_latency(), SimDuration::from_millis(100));
        assert_eq!(chain(3).total_latency(), SimDuration::from_millis(30));
    }

    #[test]
    fn dot_output_mentions_every_task_and_edge() {
        let dot = diamond().to_dot("diamond");
        assert!(dot.contains("digraph"));
        assert!(dot.contains("t0 -> t1"));
        assert!(dot.contains("t2 -> t3"));
    }

    #[test]
    fn chain_constructor_builds_chains() {
        let graph = TaskGraphBuilder::chain([
            ("a", SimDuration::from_millis(1)),
            ("b", SimDuration::from_millis(2)),
            ("c", SimDuration::from_millis(3)),
        ]);
        assert!(graph.is_chain());
        assert_eq!(graph.task_count(), 3);
        assert_eq!(graph.total_latency(), SimDuration::from_millis(6));
    }

    #[test]
    fn layered_constructor_matches_manual_structure() {
        let graph = TaskGraphBuilder::layered(
            &[1, 3, 2],
            &[
                SimDuration::from_millis(5),
                SimDuration::from_millis(7),
                SimDuration::from_millis(9),
            ],
        );
        assert_eq!(graph.task_count(), 6);
        assert_eq!(graph.edge_count(), 3 + 6); // 1x3 + 3x2 bipartite layers
        assert_eq!(graph.level_widths(), vec![1, 3, 2]);
    }

    #[test]
    #[should_panic(expected = "one latency per layer")]
    fn layered_rejects_mismatched_inputs() {
        TaskGraphBuilder::layered(&[1, 2], &[SimDuration::ZERO]);
    }

    #[test]
    fn ancestors_and_descendants_are_transitive() {
        let graph = diamond();
        let d = TaskId::new(3);
        let a = TaskId::new(0);
        let mut anc = graph.ancestors(d);
        anc.sort();
        assert_eq!(anc, vec![TaskId::new(0), TaskId::new(1), TaskId::new(2)]);
        let mut desc = graph.descendants(a);
        desc.sort();
        assert_eq!(desc, vec![TaskId::new(1), TaskId::new(2), TaskId::new(3)]);
        assert!(graph.ancestors(a).is_empty());
        assert!(graph.descendants(d).is_empty());
    }

    #[test]
    fn single_task_graph_is_valid() {
        let mut builder = TaskGraphBuilder::new();
        builder.add_task(spec("only", 5));
        let graph = builder.build().unwrap();
        assert_eq!(graph.depth(), 1);
        assert!(graph.is_chain());
        assert_eq!(graph.critical_path_latency(), SimDuration::from_millis(5));
    }
}
