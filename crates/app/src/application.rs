//! Applications and priority levels.

use std::fmt;
use std::sync::Arc;

use nimblock_ser::{impl_json_enum_units, impl_json_struct};

use nimblock_sim::SimDuration;

use crate::TaskGraph;

/// Application priority level.
///
/// Consistent with PREMA and the paper (§4.1), the system uses three
/// increasing levels whose numeric weights 1, 3, and 9 drive token
/// accumulation.
///
/// # Example
///
/// ```
/// use nimblock_app::Priority;
///
/// assert_eq!(Priority::High.weight(), 9);
/// assert!(Priority::Low < Priority::High);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Priority {
    /// Weight 1.
    #[default]
    Low,
    /// Weight 3.
    Medium,
    /// Weight 9.
    High,
}

impl_json_enum_units!(Priority { Low, Medium, High });

impl Priority {
    /// All levels, in increasing order.
    pub const ALL: [Priority; 3] = [Priority::Low, Priority::Medium, Priority::High];

    /// Returns the token-accumulation weight (1, 3, or 9).
    pub const fn weight(self) -> u32 {
        match self {
            Priority::Low => 1,
            Priority::Medium => 3,
            Priority::High => 9,
        }
    }

    /// Returns the largest priority weight that is `<= tokens`, i.e. the
    /// PREMA threshold rounding of a token count down to the nearest
    /// priority level (paper Algorithm 1, line 8). Token counts below the
    /// lowest weight floor to 0.
    pub fn floor_weight(tokens: f64) -> u32 {
        let mut floor = 0;
        for level in Priority::ALL {
            if f64::from(level.weight()) <= tokens {
                floor = level.weight();
            }
        }
        floor
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Priority::Low => "low",
            Priority::Medium => "medium",
            Priority::High => "high",
        };
        f.write_str(name)
    }
}

/// A named application: its task graph plus the per-task partial-bitstream
/// size used for reconfiguration-latency modelling.
///
/// `AppSpec` corresponds to the compilation product delivered to the
/// hypervisor in the paper (§2.2): partial bitstreams for every task plus a
/// header with interface information and HLS performance estimates. Batch
/// size and priority are *per-arrival* attributes and live on
/// `nimblock_workload::ArrivalEvent`, not here.
///
/// # Example
///
/// ```
/// use nimblock_app::benchmarks;
/// use nimblock_sim::SimDuration;
///
/// let lenet = benchmarks::lenet();
/// let single_slot = lenet.single_slot_latency(5, SimDuration::from_millis(80));
/// assert!(single_slot > lenet.graph().total_latency());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AppSpec {
    name: String,
    graph: Arc<TaskGraph>,
    bitstream_bytes: u64,
}

impl_json_struct!(AppSpec { name, graph, bitstream_bytes });

impl AppSpec {
    /// Creates an application from its name and task graph, with the
    /// default ZCU106 slot-sized bitstreams.
    pub fn new(name: impl Into<String>, graph: TaskGraph) -> Self {
        AppSpec {
            name: name.into(),
            graph: Arc::new(graph),
            bitstream_bytes: nimblock_fpga::zcu106::SLOT_BITSTREAM_BYTES,
        }
    }

    /// Sets the per-task partial-bitstream size in bytes.
    pub fn with_bitstream_bytes(mut self, bitstream_bytes: u64) -> Self {
        self.bitstream_bytes = bitstream_bytes;
        self
    }

    /// Returns the application name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns the task graph.
    pub fn graph(&self) -> &TaskGraph {
        &self.graph
    }

    /// Returns the task graph behind its shared handle.
    pub fn graph_arc(&self) -> Arc<TaskGraph> {
        Arc::clone(&self.graph)
    }

    /// Returns the per-task partial-bitstream size in bytes.
    pub fn bitstream_bytes(&self) -> u64 {
        self.bitstream_bytes
    }

    /// Returns the latency of running the whole application on a single
    /// slot with no resource contention: every task reconfigures once and
    /// then processes the full batch.
    ///
    /// This is the *single-slot latency* the paper scales by the deadline
    /// factor `D_s` to define deadlines (§5.4).
    pub fn single_slot_latency(&self, batch_size: u32, reconfig: SimDuration) -> SimDuration {
        let reconfigs = reconfig.saturating_mul(self.graph.task_count() as u64);
        let compute = self
            .graph
            .tasks()
            .map(|(_, t)| t.latency().saturating_mul(u64::from(batch_size)))
            .sum();
        reconfigs + compute
    }
}

impl fmt::Display for AppSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} tasks, {} edges)",
            self.name,
            self.graph.task_count(),
            self.graph.edge_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TaskGraphBuilder, TaskSpec};

    fn two_task_app() -> AppSpec {
        let mut builder = TaskGraphBuilder::new();
        let a = builder.add_task(TaskSpec::new("a", SimDuration::from_millis(100)));
        let b = builder.add_task(TaskSpec::new("b", SimDuration::from_millis(50)));
        builder.add_edge(a, b).unwrap();
        AppSpec::new("two", builder.build().unwrap())
    }

    #[test]
    fn priority_weights_match_paper() {
        assert_eq!(Priority::Low.weight(), 1);
        assert_eq!(Priority::Medium.weight(), 3);
        assert_eq!(Priority::High.weight(), 9);
    }

    #[test]
    fn floor_weight_rounds_down_to_priority_level() {
        assert_eq!(Priority::floor_weight(0.5), 0);
        assert_eq!(Priority::floor_weight(1.0), 1);
        assert_eq!(Priority::floor_weight(2.9), 1);
        assert_eq!(Priority::floor_weight(3.0), 3);
        assert_eq!(Priority::floor_weight(8.9), 3);
        assert_eq!(Priority::floor_weight(100.0), 9);
    }

    #[test]
    fn single_slot_latency_charges_every_reconfig() {
        let app = two_task_app();
        let latency = app.single_slot_latency(10, SimDuration::from_millis(80));
        // 2 reconfigs (160 ms) + 10 * (100 + 50) ms = 1660 ms.
        assert_eq!(latency, SimDuration::from_millis(1_660));
    }

    #[test]
    fn single_slot_latency_zero_batch_is_reconfig_only() {
        let app = two_task_app();
        assert_eq!(
            app.single_slot_latency(0, SimDuration::from_millis(80)),
            SimDuration::from_millis(160)
        );
    }

    #[test]
    fn display_includes_topology() {
        assert_eq!(two_task_app().to_string(), "two (2 tasks, 1 edges)");
    }
}
