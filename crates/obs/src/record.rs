//! Compact record/replay traces: a streaming, seekable binary format
//! for production-scale runs (DESIGN.md §18).
//!
//! Where `--timeseries-out` and the JSON reports aggregate, a recorded
//! trace keeps every *offered invocation* — arrival instant, function,
//! batch items, tenant, admission verdict, dispatch decision, and the
//! priced queue/reconfig/compute components — so a later `analyze plan`
//! can replay the exact same traffic against counterfactual fleets.
//! JSON would cost hundreds of bytes per invocation; this format costs a
//! handful: arrivals are delta-encoded LEB128 varints and everything
//! else is a varint or a packed flag byte, so a million-invocation day
//! fits in a few megabytes.
//!
//! # Wire layout
//!
//! ```text
//! [magic "NBTRACE1"] [header] [record]* [footer] [footer_off u64 LE] [fnv64 u64 LE]
//! ```
//!
//! - **Header** — run configuration: seed, load factor, arrival-process
//!   spec, tenant policy, fleet shape (boards × slots), routing policy,
//!   reconfiguration latency, shed horizon, and the function table
//!   (name + SLO-class code per function). Everything a replay needs to
//!   rebuild the run without the generator.
//! - **Records** — one per offered invocation, tagged `0x01`, arrival
//!   delta-encoded against the previous record (arrivals are monotone).
//!   The verdict and warm/cold flag pack into one byte; admitted records
//!   carry the routed board and the priced queue-wait/work components,
//!   shed records carry the attribution components of the shed
//!   explanation instead.
//! - **Footer** — tagged `0x02`: record count, outcome summary, a sparse
//!   seek index (every [`INDEX_STRIDE`] records: byte offset + absolute
//!   arrival), and optionally the full JSON report of the recorded run so
//!   the trace is self-validating (`analyze plan` replays the unmodified
//!   config and requires byte-identity against it).
//! - **Trailer** — the footer's byte offset (so readers can jump straight
//!   to the summary without scanning records) and an FNV-1a checksum of
//!   every preceding byte.
//!
//! # Example
//!
//! ```
//! use nimblock_obs::record::{TraceHeader, TraceReader, TraceRecord, TraceWriter, TraceVerdict};
//!
//! let mut header = TraceHeader::serving(7);
//! header.boards = 2;
//! let mut writer = TraceWriter::new(&header);
//! writer.push(&TraceRecord { arrival_micros: 125, ..TraceRecord::default() });
//! let bytes = writer.finish(None);
//! let reader = TraceReader::parse(&bytes).unwrap();
//! assert_eq!(reader.summary().records, 1);
//! assert_eq!(reader.records().next().unwrap().unwrap().arrival_micros, 125);
//! ```

/// Magic bytes opening every recorded trace.
pub const MAGIC: [u8; 8] = *b"NBTRACE1";
/// Format version written by this crate.
pub const VERSION: u64 = 1;
/// A trace of the serving front door: offered invocations with verdicts.
pub const KIND_SERVING: u8 = 1;
/// A trace of an engine (`run`/`cluster`) stimulus: arrivals with board
/// placements, no admission control.
pub const KIND_ENGINE: u8 = 2;
/// One seek-index entry is emitted every this many records.
pub const INDEX_STRIDE: u64 = 4096;

const TAG_RECORD: u8 = 0x01;
const TAG_FOOTER: u8 = 0x02;
/// Low three bits of the outcome byte hold the verdict code.
const VERDICT_MASK: u8 = 0x07;
/// Bit 3 of the outcome byte is the warm-route flag.
const WARM_BIT: u8 = 0x08;

// ---------------------------------------------------------------------------
// Varint primitives
// ---------------------------------------------------------------------------

/// Appends `value` as an LEB128 varint (7 bits per byte, little-endian).
pub fn put_varint(buf: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Decodes an LEB128 varint from `data` at `*pos`, advancing `*pos`.
pub fn get_varint(data: &[u8], pos: &mut usize) -> Result<u64, String> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *data
            .get(*pos)
            .ok_or_else(|| format!("trace truncated inside varint at byte {}", *pos))?;
        *pos += 1;
        if shift >= 63 && byte > 1 {
            return Err(format!("varint overflows u64 at byte {}", *pos - 1));
        }
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

fn put_f64(buf: &mut Vec<u8>, value: f64) {
    buf.extend_from_slice(&value.to_bits().to_le_bytes());
}

fn get_f64(data: &[u8], pos: &mut usize) -> Result<f64, String> {
    let bytes = data
        .get(*pos..*pos + 8)
        .ok_or_else(|| format!("trace truncated inside f64 at byte {}", *pos))?;
    *pos += 8;
    Ok(f64::from_bits(u64::from_le_bytes(bytes.try_into().expect("8-byte slice"))))
}

fn put_str(buf: &mut Vec<u8>, value: &str) {
    put_varint(buf, value.len() as u64);
    buf.extend_from_slice(value.as_bytes());
}

fn get_str(data: &[u8], pos: &mut usize) -> Result<String, String> {
    let len = get_varint(data, pos)? as usize;
    let bytes = data
        .get(*pos..*pos + len)
        .ok_or_else(|| format!("trace truncated inside string at byte {}", *pos))?;
    *pos += len;
    String::from_utf8(bytes.to_vec()).map_err(|_| format!("invalid UTF-8 at byte {}", *pos - len))
}

/// FNV-1a over `data` — the trailer checksum.
fn fnv64(data: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &byte in data {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

// ---------------------------------------------------------------------------
// Header / record / summary models
// ---------------------------------------------------------------------------

/// One deployed function in the trace's function table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceFunction {
    /// Function (application) name, as deployed in the registry.
    pub name: String,
    /// SLO-class code, strictest first (0 = latency, 1 = standard,
    /// 2 = batch) — the index into `SloClass::ALL`.
    pub class: u8,
}

/// The recorded run's configuration: everything a replay needs to rebuild
/// the serving pipeline without the original generator.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceHeader {
    /// [`KIND_SERVING`] or [`KIND_ENGINE`].
    pub kind: u8,
    /// Seed the recorded run was driven by.
    pub seed: u64,
    /// Load multiplier that was applied to the arrival process.
    pub load_factor: f64,
    /// Invocations the run offered.
    pub invocations: u64,
    /// Arrival-process spec (`kind:rate`), re-parseable by the workload
    /// crate; `"engine"` for engine-kind traces.
    pub process: String,
    /// Number of tenants sharing the cluster.
    pub tenants: u64,
    /// Tenant token-bucket refill rate, per virtual second.
    pub tenant_rate_per_sec: f64,
    /// Tenant token-bucket burst size.
    pub tenant_burst: u64,
    /// Tenant in-flight quota.
    pub tenant_quota: u64,
    /// Boards in the fleet.
    pub boards: u64,
    /// Reconfigurable slots per board.
    pub slots_per_board: u64,
    /// Worker threads of the recorded run (reports are thread-invariant;
    /// kept for provenance only).
    pub threads: u64,
    /// Board-selection policy name (`DispatchPolicy::parse` format).
    pub policy: String,
    /// Nominal partial-reconfiguration latency, microseconds.
    pub reconfig_micros: u64,
    /// Batch items per invocation were drawn from `1..=max_items`.
    pub max_items: u64,
    /// Base backlog shed horizon, microseconds.
    pub shed_horizon_micros: u64,
    /// Serving chunk size (the ingest memory bound).
    pub chunk: u64,
    /// The function table; record `function` fields index into it.
    pub functions: Vec<TraceFunction>,
}

impl TraceHeader {
    /// A serving-kind header with every knob zeroed except the seed —
    /// callers fill in the fleet shape and function table.
    pub fn serving(seed: u64) -> Self {
        TraceHeader {
            kind: KIND_SERVING,
            seed,
            load_factor: 1.0,
            invocations: 0,
            process: String::new(),
            tenants: 0,
            tenant_rate_per_sec: 0.0,
            tenant_burst: 0,
            tenant_quota: 0,
            boards: 1,
            slots_per_board: 1,
            threads: 1,
            policy: String::new(),
            reconfig_micros: 0,
            max_items: 1,
            shed_horizon_micros: 0,
            chunk: 1,
            functions: Vec::new(),
        }
    }

    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(self.kind);
        put_varint(buf, self.seed);
        put_f64(buf, self.load_factor);
        put_varint(buf, self.invocations);
        put_str(buf, &self.process);
        put_varint(buf, self.tenants);
        put_f64(buf, self.tenant_rate_per_sec);
        put_varint(buf, self.tenant_burst);
        put_varint(buf, self.tenant_quota);
        put_varint(buf, self.boards);
        put_varint(buf, self.slots_per_board);
        put_varint(buf, self.threads);
        put_str(buf, &self.policy);
        put_varint(buf, self.reconfig_micros);
        put_varint(buf, self.max_items);
        put_varint(buf, self.shed_horizon_micros);
        put_varint(buf, self.chunk);
        put_varint(buf, self.functions.len() as u64);
        for function in &self.functions {
            put_str(buf, &function.name);
            buf.push(function.class);
        }
    }

    fn decode(data: &[u8], pos: &mut usize) -> Result<Self, String> {
        let kind = *data
            .get(*pos)
            .ok_or_else(|| "trace truncated inside header".to_owned())?;
        *pos += 1;
        if kind != KIND_SERVING && kind != KIND_ENGINE {
            return Err(format!("unknown trace kind {kind}"));
        }
        let seed = get_varint(data, pos)?;
        let load_factor = get_f64(data, pos)?;
        let invocations = get_varint(data, pos)?;
        let process = get_str(data, pos)?;
        let tenants = get_varint(data, pos)?;
        let tenant_rate_per_sec = get_f64(data, pos)?;
        let tenant_burst = get_varint(data, pos)?;
        let tenant_quota = get_varint(data, pos)?;
        let boards = get_varint(data, pos)?;
        let slots_per_board = get_varint(data, pos)?;
        let threads = get_varint(data, pos)?;
        let policy = get_str(data, pos)?;
        let reconfig_micros = get_varint(data, pos)?;
        let max_items = get_varint(data, pos)?;
        let shed_horizon_micros = get_varint(data, pos)?;
        let chunk = get_varint(data, pos)?;
        let count = get_varint(data, pos)? as usize;
        let mut functions = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            let name = get_str(data, pos)?;
            let class = *data
                .get(*pos)
                .ok_or_else(|| "trace truncated inside function table".to_owned())?;
            *pos += 1;
            functions.push(TraceFunction { name, class });
        }
        Ok(TraceHeader {
            kind,
            seed,
            load_factor,
            invocations,
            process,
            tenants,
            tenant_rate_per_sec,
            tenant_burst,
            tenant_quota,
            boards,
            slots_per_board,
            threads,
            policy,
            reconfig_micros,
            max_items,
            shed_horizon_micros,
            chunk,
            functions,
        })
    }
}

/// Admission outcome of one offered invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceVerdict {
    /// Admitted, routed, and served.
    #[default]
    Admit,
    /// Rejected by the tenant's token-bucket rate limit.
    RejectRate,
    /// Rejected by the tenant's in-flight quota.
    RejectQuota,
    /// Shed by the class-weighted backlog horizon.
    ShedBacklog,
    /// Shed by deadline infeasibility.
    ShedDeadline,
}

impl TraceVerdict {
    /// Wire code of the verdict (low bits of the outcome byte).
    pub fn code(self) -> u8 {
        match self {
            TraceVerdict::Admit => 0,
            TraceVerdict::RejectRate => 1,
            TraceVerdict::RejectQuota => 2,
            TraceVerdict::ShedBacklog => 3,
            TraceVerdict::ShedDeadline => 4,
        }
    }

    /// Decodes a wire code.
    pub fn from_code(code: u8) -> Result<Self, String> {
        match code {
            0 => Ok(TraceVerdict::Admit),
            1 => Ok(TraceVerdict::RejectRate),
            2 => Ok(TraceVerdict::RejectQuota),
            3 => Ok(TraceVerdict::ShedBacklog),
            4 => Ok(TraceVerdict::ShedDeadline),
            other => Err(format!("unknown verdict code {other}")),
        }
    }

    /// `true` iff the invocation reached the router — admitted or shed
    /// after a dispatch decision. Routed records carry meaningful
    /// warm/queue-wait/work attribution components; rejections do not.
    pub fn routed(self) -> bool {
        !matches!(self, TraceVerdict::RejectRate | TraceVerdict::RejectQuota)
    }
}

/// One offered invocation. Fields that the verdict renders meaningless
/// (e.g. `board` for a rejection) are zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceRecord {
    /// Absolute arrival instant, microseconds of virtual time.
    pub arrival_micros: u64,
    /// Index into the header's function table.
    pub function: u32,
    /// Batch items of the invocation.
    pub items: u32,
    /// Offering tenant.
    pub tenant: u32,
    /// Admission outcome.
    pub verdict: TraceVerdict,
    /// Whether routing found the bitstream warm on the chosen board.
    pub warm: bool,
    /// Routed board (admitted records only).
    pub board: u32,
    /// Predicted queue wait at decision time, microseconds.
    pub queue_wait_micros: u64,
    /// Priced service cost (warm/cold as routed), microseconds.
    pub work_micros: u64,
    /// Reconfiguration share of `work_micros` (shed records carry the
    /// attribution split; admitted cold routes re-derive it from the app
    /// model).
    pub reconfig_micros: u64,
}

/// Footer totals: the integrity cross-check a replay must reproduce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceSummary {
    /// Records in the trace (== offered invocations).
    pub records: u64,
    /// Admitted records.
    pub admitted: u64,
    /// Backlog-horizon sheds.
    pub shed_backlog: u64,
    /// Deadline sheds.
    pub shed_deadline: u64,
    /// Rate-limit rejections.
    pub rejected_rate: u64,
    /// Quota rejections.
    pub rejected_quota: u64,
    /// Arrival instant of the last record, microseconds.
    pub last_arrival_micros: u64,
}

/// One sparse seek-index entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct IndexEntry {
    /// Record ordinal the entry points at.
    record: u64,
    /// Byte offset of that record's tag within the trace.
    offset: u64,
    /// Absolute arrival of the *previous* record (the delta base).
    prev_arrival: u64,
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Streaming trace writer: append records, then [`TraceWriter::finish`].
///
/// The writer keeps O(records / [`INDEX_STRIDE`]) index state plus the
/// output buffer itself; per-record cost is a few varint appends.
#[derive(Debug, Clone)]
pub struct TraceWriter {
    buf: Vec<u8>,
    prev_arrival: u64,
    summary: TraceSummary,
    index: Vec<IndexEntry>,
}

impl TraceWriter {
    /// Opens a trace with `header`.
    pub fn new(header: &TraceHeader) -> Self {
        let mut buf = Vec::with_capacity(4096);
        buf.extend_from_slice(&MAGIC);
        put_varint(&mut buf, VERSION);
        header.encode(&mut buf);
        TraceWriter {
            buf,
            prev_arrival: 0,
            summary: TraceSummary::default(),
            index: Vec::new(),
        }
    }

    /// Appends one offered invocation. Arrivals must be monotone
    /// non-decreasing (virtual time never runs backwards).
    ///
    /// # Panics
    ///
    /// Panics if `record.arrival_micros` precedes the previous record's.
    pub fn push(&mut self, record: &TraceRecord) {
        assert!(
            record.arrival_micros >= self.prev_arrival,
            "arrivals must be monotone ({} after {})",
            record.arrival_micros,
            self.prev_arrival,
        );
        if self.summary.records % INDEX_STRIDE == 0 {
            self.index.push(IndexEntry {
                record: self.summary.records,
                offset: self.buf.len() as u64,
                prev_arrival: self.prev_arrival,
            });
        }
        self.buf.push(TAG_RECORD);
        put_varint(&mut self.buf, record.arrival_micros - self.prev_arrival);
        put_varint(&mut self.buf, u64::from(record.function));
        put_varint(&mut self.buf, u64::from(record.items));
        put_varint(&mut self.buf, u64::from(record.tenant));
        let outcome = record.verdict.code() | if record.warm { WARM_BIT } else { 0 };
        self.buf.push(outcome);
        match record.verdict {
            TraceVerdict::Admit => {
                put_varint(&mut self.buf, u64::from(record.board));
                put_varint(&mut self.buf, record.queue_wait_micros);
                put_varint(&mut self.buf, record.work_micros);
                self.summary.admitted += 1;
            }
            TraceVerdict::ShedBacklog | TraceVerdict::ShedDeadline => {
                put_varint(&mut self.buf, record.queue_wait_micros);
                put_varint(&mut self.buf, record.work_micros);
                put_varint(&mut self.buf, record.reconfig_micros);
                if record.verdict == TraceVerdict::ShedBacklog {
                    self.summary.shed_backlog += 1;
                } else {
                    self.summary.shed_deadline += 1;
                }
            }
            TraceVerdict::RejectRate => self.summary.rejected_rate += 1,
            TraceVerdict::RejectQuota => self.summary.rejected_quota += 1,
        }
        self.prev_arrival = record.arrival_micros;
        self.summary.records += 1;
        self.summary.last_arrival_micros = record.arrival_micros;
    }

    /// Number of records pushed so far.
    pub fn records(&self) -> u64 {
        self.summary.records
    }

    /// Closes the trace: writes the footer (summary, seek index, and the
    /// optional embedded `report_json` of the recorded run), the footer
    /// offset, and the checksum, returning the finished bytes.
    pub fn finish(mut self, report_json: Option<&str>) -> Vec<u8> {
        let footer_offset = self.buf.len() as u64;
        self.buf.push(TAG_FOOTER);
        let summary = self.summary;
        put_varint(&mut self.buf, summary.records);
        put_varint(&mut self.buf, summary.admitted);
        put_varint(&mut self.buf, summary.shed_backlog);
        put_varint(&mut self.buf, summary.shed_deadline);
        put_varint(&mut self.buf, summary.rejected_rate);
        put_varint(&mut self.buf, summary.rejected_quota);
        put_varint(&mut self.buf, summary.last_arrival_micros);
        put_varint(&mut self.buf, self.index.len() as u64);
        let (mut rec, mut off, mut arr) = (0u64, 0u64, 0u64);
        for entry in &self.index {
            put_varint(&mut self.buf, entry.record - rec);
            put_varint(&mut self.buf, entry.offset - off);
            put_varint(&mut self.buf, entry.prev_arrival - arr);
            (rec, off, arr) = (entry.record, entry.offset, entry.prev_arrival);
        }
        put_str(&mut self.buf, report_json.unwrap_or(""));
        self.buf.extend_from_slice(&footer_offset.to_le_bytes());
        let checksum = fnv64(&self.buf);
        self.buf.extend_from_slice(&checksum.to_le_bytes());
        self.buf
    }
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// Zero-copy trace reader: borrows the trace bytes, decodes the header
/// and footer eagerly (the footer offset in the trailer makes that a
/// jump, not a scan), and iterates records lazily.
#[derive(Debug, Clone)]
pub struct TraceReader<'a> {
    data: &'a [u8],
    header: TraceHeader,
    summary: TraceSummary,
    index: Vec<IndexEntry>,
    report_json: Option<&'a str>,
    records_start: usize,
    footer_offset: usize,
}

impl<'a> TraceReader<'a> {
    /// Parses the trace envelope: magic, version, header, checksum, and
    /// footer. Record bytes are validated lazily during iteration.
    pub fn parse(data: &'a [u8]) -> Result<Self, String> {
        if data.len() < MAGIC.len() + 16 {
            return Err(format!("trace too short ({} bytes)", data.len()));
        }
        if data[..MAGIC.len()] != MAGIC {
            return Err("not a recorded trace (bad magic)".to_owned());
        }
        let body_end = data.len() - 8;
        let stored = u64::from_le_bytes(data[body_end..].try_into().expect("8 bytes"));
        let actual = fnv64(&data[..body_end]);
        if stored != actual {
            return Err(format!(
                "trace checksum mismatch (stored {stored:#018x}, computed {actual:#018x})"
            ));
        }
        let footer_offset =
            u64::from_le_bytes(data[body_end - 8..body_end].try_into().expect("8 bytes")) as usize;
        let mut pos = MAGIC.len();
        let version = get_varint(data, &mut pos)?;
        if version != VERSION {
            return Err(format!("unsupported trace version {version} (expected {VERSION})"));
        }
        let header = TraceHeader::decode(data, &mut pos)?;
        let records_start = pos;
        if footer_offset < records_start || footer_offset >= body_end - 8 {
            return Err(format!("footer offset {footer_offset} out of bounds"));
        }
        let mut pos = footer_offset;
        let tag = data[pos];
        pos += 1;
        if tag != TAG_FOOTER {
            return Err(format!("expected footer tag at byte {footer_offset}, found {tag:#04x}"));
        }
        let summary = TraceSummary {
            records: get_varint(data, &mut pos)?,
            admitted: get_varint(data, &mut pos)?,
            shed_backlog: get_varint(data, &mut pos)?,
            shed_deadline: get_varint(data, &mut pos)?,
            rejected_rate: get_varint(data, &mut pos)?,
            rejected_quota: get_varint(data, &mut pos)?,
            last_arrival_micros: get_varint(data, &mut pos)?,
        };
        let entries = get_varint(data, &mut pos)? as usize;
        let mut index = Vec::with_capacity(entries.min(1 << 20));
        let (mut rec, mut off, mut arr) = (0u64, 0u64, 0u64);
        for _ in 0..entries {
            rec += get_varint(data, &mut pos)?;
            off += get_varint(data, &mut pos)?;
            arr += get_varint(data, &mut pos)?;
            index.push(IndexEntry { record: rec, offset: off, prev_arrival: arr });
        }
        let report_len = get_varint(data, &mut pos)? as usize;
        let report_bytes = data
            .get(pos..pos + report_len)
            .ok_or_else(|| "trace truncated inside embedded report".to_owned())?;
        let report_json = if report_len == 0 {
            None
        } else {
            Some(
                std::str::from_utf8(report_bytes)
                    .map_err(|_| "embedded report is not UTF-8".to_owned())?,
            )
        };
        Ok(TraceReader {
            data,
            header,
            summary,
            index,
            report_json,
            records_start,
            footer_offset,
        })
    }

    /// The recorded run's configuration.
    pub fn header(&self) -> &TraceHeader {
        &self.header
    }

    /// The footer totals.
    pub fn summary(&self) -> TraceSummary {
        self.summary
    }

    /// The full JSON report embedded by the recorder, if any.
    pub fn report_json(&self) -> Option<&'a str> {
        self.report_json
    }

    /// Iterates every record from the start.
    pub fn records(&self) -> RecordIter<'a> {
        RecordIter {
            data: self.data,
            pos: self.records_start,
            end: self.footer_offset,
            prev_arrival: 0,
            remaining: self.summary.records,
        }
    }

    /// Seeks to record ordinal `start` via the sparse index: decoding
    /// resumes at the nearest indexed record at or before `start` and
    /// skips forward, so a seek costs at most [`INDEX_STRIDE`] record
    /// decodes instead of a scan from the beginning.
    pub fn seek(&self, start: u64) -> RecordIter<'a> {
        let entry = self
            .index
            .iter()
            .rev()
            .find(|entry| entry.record <= start)
            .copied()
            .unwrap_or(IndexEntry { record: 0, offset: self.records_start as u64, prev_arrival: 0 });
        let mut iter = RecordIter {
            data: self.data,
            pos: entry.offset as usize,
            end: self.footer_offset,
            prev_arrival: entry.prev_arrival,
            remaining: self.summary.records.saturating_sub(entry.record),
        };
        for _ in entry.record..start.min(self.summary.records) {
            if iter.next().is_none() {
                break;
            }
        }
        iter
    }
}

/// Lazy record iterator over a trace's record section.
#[derive(Debug, Clone)]
pub struct RecordIter<'a> {
    data: &'a [u8],
    pos: usize,
    end: usize,
    prev_arrival: u64,
    remaining: u64,
}

impl RecordIter<'_> {
    fn decode(&mut self) -> Result<TraceRecord, String> {
        let data = self.data;
        let pos = &mut self.pos;
        let tag = *data
            .get(*pos)
            .ok_or_else(|| "trace truncated before record tag".to_owned())?;
        *pos += 1;
        if tag != TAG_RECORD {
            return Err(format!("expected record tag, found {tag:#04x} at byte {}", *pos - 1));
        }
        let arrival_micros = self.prev_arrival + get_varint(data, pos)?;
        let function = get_varint(data, pos)? as u32;
        let items = get_varint(data, pos)? as u32;
        let tenant = get_varint(data, pos)? as u32;
        let outcome = *data
            .get(*pos)
            .ok_or_else(|| "trace truncated inside record".to_owned())?;
        *pos += 1;
        let verdict = TraceVerdict::from_code(outcome & VERDICT_MASK)?;
        let warm = outcome & WARM_BIT != 0;
        let mut record = TraceRecord {
            arrival_micros,
            function,
            items,
            tenant,
            verdict,
            warm,
            ..TraceRecord::default()
        };
        match verdict {
            TraceVerdict::Admit => {
                record.board = get_varint(data, pos)? as u32;
                record.queue_wait_micros = get_varint(data, pos)?;
                record.work_micros = get_varint(data, pos)?;
            }
            TraceVerdict::ShedBacklog | TraceVerdict::ShedDeadline => {
                record.queue_wait_micros = get_varint(data, pos)?;
                record.work_micros = get_varint(data, pos)?;
                record.reconfig_micros = get_varint(data, pos)?;
            }
            TraceVerdict::RejectRate | TraceVerdict::RejectQuota => {}
        }
        self.prev_arrival = arrival_micros;
        Ok(record)
    }
}

impl Iterator for RecordIter<'_> {
    type Item = Result<TraceRecord, String>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.remaining == 0 || self.pos >= self.end {
            return None;
        }
        self.remaining -= 1;
        match self.decode() {
            Ok(record) => Some(Ok(record)),
            Err(error) => {
                // Poison the iterator: a decode error is not recoverable
                // mid-stream.
                self.remaining = 0;
                Some(Err(error))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_header() -> TraceHeader {
        let mut header = TraceHeader::serving(11);
        header.load_factor = 1.5;
        header.invocations = 3;
        header.process = "bursty:2000".to_owned();
        header.tenants = 4;
        header.tenant_rate_per_sec = 300.0;
        header.tenant_burst = 32;
        header.tenant_quota = 64;
        header.boards = 4;
        header.slots_per_board = 3;
        header.policy = "cache-aware".to_owned();
        header.reconfig_micros = 80_000;
        header.max_items = 4;
        header.shed_horizon_micros = 200_000;
        header.chunk = 65_536;
        header.functions = vec![
            TraceFunction { name: "alexnet".to_owned(), class: 1 },
            TraceFunction { name: "lenet".to_owned(), class: 0 },
        ];
        header
    }

    fn sample_records() -> Vec<TraceRecord> {
        vec![
            TraceRecord {
                arrival_micros: 100,
                function: 1,
                items: 2,
                tenant: 3,
                verdict: TraceVerdict::Admit,
                warm: true,
                board: 2,
                queue_wait_micros: 50,
                work_micros: 400_000,
                ..TraceRecord::default()
            },
            TraceRecord {
                arrival_micros: 250,
                function: 0,
                items: 4,
                tenant: 0,
                verdict: TraceVerdict::ShedBacklog,
                queue_wait_micros: 900_000,
                work_micros: 480_000,
                reconfig_micros: 80_000,
                ..TraceRecord::default()
            },
            TraceRecord {
                arrival_micros: 250,
                function: 0,
                items: 1,
                tenant: 1,
                verdict: TraceVerdict::RejectRate,
                ..TraceRecord::default()
            },
        ]
    }

    fn sample_trace(report: Option<&str>) -> Vec<u8> {
        let mut writer = TraceWriter::new(&sample_header());
        for record in sample_records() {
            writer.push(&record);
        }
        writer.finish(report)
    }

    #[test]
    fn round_trips_header_records_and_summary() {
        let bytes = sample_trace(Some("{\"ok\":true}"));
        let reader = TraceReader::parse(&bytes).expect("parses");
        assert_eq!(reader.header(), &sample_header());
        assert_eq!(reader.report_json(), Some("{\"ok\":true}"));
        let summary = reader.summary();
        assert_eq!(summary.records, 3);
        assert_eq!(summary.admitted, 1);
        assert_eq!(summary.shed_backlog, 1);
        assert_eq!(summary.rejected_rate, 1);
        assert_eq!(summary.last_arrival_micros, 250);
        let decoded: Vec<TraceRecord> =
            reader.records().collect::<Result<_, _>>().expect("decodes");
        assert_eq!(decoded, sample_records());
    }

    #[test]
    fn compactness_beats_json_by_an_order_of_magnitude() {
        let mut writer = TraceWriter::new(&sample_header());
        let mut arrival = 0;
        for i in 0..10_000u64 {
            arrival += 1_000 + i % 97;
            writer.push(&TraceRecord {
                arrival_micros: arrival,
                function: (i % 6) as u32,
                items: (i % 4 + 1) as u32,
                tenant: (i % 4) as u32,
                verdict: TraceVerdict::Admit,
                warm: i % 3 == 0,
                board: (i % 4) as u32,
                queue_wait_micros: i * 13 % 100_000,
                work_micros: 400_000 + i % 7_000,
                ..TraceRecord::default()
            });
        }
        let bytes = writer.finish(None);
        let per_record = bytes.len() as f64 / 10_000.0;
        assert!(
            per_record < 16.0,
            "expected < 16 bytes/record, got {per_record:.1}"
        );
    }

    #[test]
    fn corruption_is_detected() {
        let mut bytes = sample_trace(None);
        let middle = bytes.len() / 2;
        bytes[middle] ^= 0xff;
        let error = TraceReader::parse(&bytes).expect_err("corruption must fail");
        assert!(error.contains("checksum"), "{error}");
    }

    #[test]
    fn truncation_and_bad_magic_are_rejected() {
        let bytes = sample_trace(None);
        assert!(TraceReader::parse(&bytes[..10]).is_err());
        let mut bad = bytes.clone();
        bad[0] = b'X';
        let error = TraceReader::parse(&bad).expect_err("bad magic must fail");
        assert!(error.contains("magic"), "{error}");
    }

    #[test]
    fn seek_lands_on_the_requested_record() {
        let mut writer = TraceWriter::new(&sample_header());
        let total = 3 * INDEX_STRIDE + 17;
        for i in 0..total {
            writer.push(&TraceRecord {
                arrival_micros: i * 10,
                function: (i % 2) as u32,
                verdict: TraceVerdict::RejectRate,
                ..TraceRecord::default()
            });
        }
        let bytes = writer.finish(None);
        let reader = TraceReader::parse(&bytes).expect("parses");
        for start in [0, 1, INDEX_STRIDE - 1, INDEX_STRIDE, 2 * INDEX_STRIDE + 5, total - 1] {
            let record = reader
                .seek(start)
                .next()
                .expect("in range")
                .expect("decodes");
            assert_eq!(record.arrival_micros, start * 10, "seek({start})");
        }
        assert!(reader.seek(total).next().is_none(), "past-the-end seek is empty");
        // A full iteration from a seek point sees exactly the tail.
        let tail: Vec<_> = reader.seek(total - 3).collect();
        assert_eq!(tail.len(), 3);
    }

    #[test]
    fn monotonicity_is_enforced() {
        let mut writer = TraceWriter::new(&sample_header());
        writer.push(&TraceRecord { arrival_micros: 100, ..TraceRecord::default() });
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            writer.push(&TraceRecord { arrival_micros: 99, ..TraceRecord::default() });
        }));
        assert!(result.is_err(), "backwards arrival must panic");
    }

    #[test]
    fn empty_trace_round_trips() {
        let bytes = TraceWriter::new(&sample_header()).finish(None);
        let reader = TraceReader::parse(&bytes).expect("parses");
        assert_eq!(reader.summary().records, 0);
        assert!(reader.records().next().is_none());
        assert!(reader.report_json().is_none());
    }
}
