//! Continuous observability: virtual-time time-series, a flight
//! recorder, and an SLO rules engine.
//!
//! Everything else in this crate reports end-of-run aggregates; this
//! module watches a run *as it advances*. Three pieces:
//!
//! - **[`MonitorState`]** — a fixed-memory tumbling-window aggregator.
//!   Virtual time is cut into windows of [`MonitorConfig::window_micros`]
//!   (default 10 ms of simulated time); each [`Window`] accumulates slot
//!   busy time, queue-depth / waiting / running peaks, arrival / retire /
//!   preemption / reconfiguration counts, bitstream-cache hits, and
//!   per-priority response and slowdown [`SparseSketch`]es. Windows are
//!   keyed by virtual time only — never the wall clock — so the series is
//!   a pure function of the schedule and merges across cluster boards
//!   byte-identically for any thread count.
//! - **[`FlightRecorder`]** — a capacity-bounded ring of the last N
//!   hypervisor events and scheduler decisions (drop-counting, like
//!   [`crate::SpanBuffer`]), dumped into a post-mortem [`MonitorDoc`]
//!   when an invariant fails or the run panics.
//! - **[`SloEngine`]** — declarative per-window rules ([`SloRule`]):
//!   response-time ceilings per priority class, a utilization floor, a
//!   queue-depth ceiling, and multi-window burn rates. Rules are
//!   evaluated as windows close, emitting bounded structured [`Alert`]
//!   records and `slo`-target log lines.
//!
//! Quantiles reuse the exact bucketing of [`QuantileDigest`]
//! ([`QuantileDigest::bucket_index`]), stored sparsely per window, so
//! per-window sketches merge exactly — the same guarantee the registry's
//! full digests give — in a few dozen bytes per window instead of
//! ~15 KiB.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, PoisonError};

use nimblock_ser::impl_json_struct;

use crate::registry::QuantileDigest;
use crate::{nb_debug, nb_warn};

/// Default tumbling-window length: 10 ms of simulated time.
pub const DEFAULT_WINDOW_MICROS: u64 = 10_000;
/// Default maximum number of windows kept per run.
pub const DEFAULT_WINDOW_CAPACITY: usize = 8_192;
/// Default flight-recorder ring capacity.
pub const DEFAULT_RING_CAPACITY: usize = 256;
/// Default maximum number of stored alerts.
pub const DEFAULT_ALERT_CAPACITY: usize = 1_024;

// ---------------------------------------------------------------------------
// SparseSketch
// ---------------------------------------------------------------------------

/// A sparse per-window quantile sketch sharing [`QuantileDigest`]'s
/// fixed bucketing scheme.
///
/// A full digest is a ~15 KiB dense array — far too heavy to store per
/// window — so this sketch keeps only the occupied `(bucket, count)`
/// pairs, sorted by bucket index. Because the bucket boundaries are
/// *identical* to the digest's, [`SparseSketch::merge_from`] is exact
/// bucket-wise addition: per-board window sketches merge into precisely
/// the sketch the single-threaded oracle records.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SparseSketch {
    /// Occupied `(bucket index, count)` pairs, ascending by bucket.
    buckets: Vec<(u64, u64)>,
    count: u64,
    sum: u64,
}

impl_json_struct!(SparseSketch { buckets, count, sum });

impl SparseSketch {
    /// Creates an empty sketch.
    pub fn new() -> Self {
        SparseSketch::default()
    }

    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        let bucket = QuantileDigest::bucket_index(value) as u64;
        match self.buckets.binary_search_by_key(&bucket, |&(b, _)| b) {
            Ok(i) => self.buckets[i].1 += 1,
            Err(i) => self.buckets.insert(i, (bucket, 1)),
        }
        self.count += 1;
        self.sum += value;
    }

    /// Returns the number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Returns the sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Returns `true` if nothing was observed.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Returns the value at quantile `permille`/1000 — the bucket upper
    /// bound of the observation of rank `ceil(permille * count / 1000)`,
    /// exactly as [`QuantileDigest::quantile`] reports it, but computed
    /// in integer arithmetic so merged series render byte-identically.
    /// Returns 0 for an empty sketch.
    pub fn quantile_permille(&self, permille: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (permille.saturating_mul(self.count)).div_ceil(1000).clamp(1, self.count);
        let mut running = 0u64;
        for &(bucket, n) in &self.buckets {
            running += n;
            if running >= rank {
                return QuantileDigest::bucket_upper_bound(bucket as usize);
            }
        }
        self.buckets
            .last()
            .map(|&(b, _)| QuantileDigest::bucket_upper_bound(b as usize))
            .unwrap_or(0)
    }

    /// Adds `other`'s buckets, count, and sum into this sketch. Exact,
    /// because both sides share the digest's fixed bucket boundaries.
    pub fn merge_from(&mut self, other: &SparseSketch) {
        for &(bucket, n) in &other.buckets {
            match self.buckets.binary_search_by_key(&bucket, |&(b, _)| b) {
                Ok(i) => self.buckets[i].1 += n,
                Err(i) => self.buckets.insert(i, (bucket, n)),
            }
        }
        self.count += other.count;
        self.sum += other.sum;
    }
}

// ---------------------------------------------------------------------------
// Window
// ---------------------------------------------------------------------------

/// One closed tumbling window of the time-series.
///
/// The window's position in [`MonitorState::windows`] is its index:
/// window `w` covers simulated time `[w·W, (w+1)·W)` for window length
/// `W`. Counters count events whose timestamp falls inside the window;
/// `busy_micros` sums slot-busy time (reconfiguration streams plus item
/// execution) clipped to the window; the `*_peak` gauges record the
/// maximum sampled value inside the window.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Window {
    /// Slot-busy microseconds inside this window (≤ slots × window).
    pub busy_micros: u64,
    /// Peak number of unplaced tasks across live apps (work backlog).
    pub queue_depth_peak: u64,
    /// Peak number of live apps holding no slot at all.
    pub waiting_peak: u64,
    /// Peak number of live apps holding at least one slot.
    pub running_peak: u64,
    /// Applications admitted in this window.
    pub arrivals: u64,
    /// Applications retired in this window.
    pub retires: u64,
    /// Preemptions enacted in this window.
    pub preemptions: u64,
    /// Reconfiguration streams started in this window.
    pub reconfigurations: u64,
    /// Bitstream-cache hits during admissions in this window.
    pub cache_hits: u64,
    /// Bitstream-cache misses during admissions in this window.
    pub cache_misses: u64,
    /// Response times (µs) of low-priority (weight 1) retirees.
    pub resp_low: SparseSketch,
    /// Response times (µs) of medium-priority (weight 3) retirees.
    pub resp_med: SparseSketch,
    /// Response times (µs) of high-priority (weight 9) retirees.
    pub resp_high: SparseSketch,
    /// Slowdown (×1000) of low-priority retirees.
    pub slow_low: SparseSketch,
    /// Slowdown (×1000) of medium-priority retirees.
    pub slow_med: SparseSketch,
    /// Slowdown (×1000) of high-priority retirees.
    pub slow_high: SparseSketch,
}

impl_json_struct!(Window {
    busy_micros,
    queue_depth_peak,
    waiting_peak,
    running_peak,
    arrivals,
    retires,
    preemptions,
    reconfigurations,
    cache_hits,
    cache_misses,
    resp_low,
    resp_med,
    resp_high,
    slow_low,
    slow_med,
    slow_high
});

impl Window {
    /// Slot utilization in permille: busy time over `slots` slots of
    /// `window_micros` capacity. Returns 0 when capacity is zero.
    pub fn utilization_permille(&self, slots: u64, window_micros: u64) -> u64 {
        let capacity_micros = slots.saturating_mul(window_micros);
        if capacity_micros == 0 {
            return 0;
        }
        self.busy_micros.saturating_mul(1000) / capacity_micros
    }

    /// Returns the response sketch of the priority class with `weight`
    /// (1 = low, 3 = medium, anything else high — weights are 1/3/9).
    pub fn response_sketch(&self, weight: u64) -> &SparseSketch {
        match weight {
            1 => &self.resp_low,
            3 => &self.resp_med,
            _ => &self.resp_high,
        }
    }

    /// Folds `other` (the same window index on another cluster board)
    /// into this window: counters and busy time add, sketches merge
    /// exactly, and the sampled peaks *sum* — each board peaks at its own
    /// instant, so the sum is an upper bound on the cluster-wide
    /// simultaneous depth (documented in DESIGN.md §15).
    pub fn merge_from(&mut self, other: &Window) {
        self.busy_micros += other.busy_micros;
        self.queue_depth_peak += other.queue_depth_peak;
        self.waiting_peak += other.waiting_peak;
        self.running_peak += other.running_peak;
        self.arrivals += other.arrivals;
        self.retires += other.retires;
        self.preemptions += other.preemptions;
        self.reconfigurations += other.reconfigurations;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.resp_low.merge_from(&other.resp_low);
        self.resp_med.merge_from(&other.resp_med);
        self.resp_high.merge_from(&other.resp_high);
        self.slow_low.merge_from(&other.slow_low);
        self.slow_med.merge_from(&other.slow_med);
        self.slow_high.merge_from(&other.slow_high);
    }
}

// ---------------------------------------------------------------------------
// SLO rules
// ---------------------------------------------------------------------------

/// One parsed SLO rule, evaluated per closed window by [`SloEngine`].
///
/// Grammar (see DESIGN.md §15):
///
/// ```text
/// resp:<low|med|high>:<p50|p95|p99><=<duration>        response ceiling
/// util>=<percent>%                                     utilization floor
/// queue<=<n>                                           queue-depth ceiling
/// burn:<low|med|high>:<p50|p95|p99><=<duration>@<n>/<m>  burn rate
/// ```
///
/// Durations take a `us`, `ms`, or `s` suffix. A burn rule alerts when
/// at least `n` of the trailing `m` windows breach the inner response
/// ceiling — the multi-window "error budget burn" form of the response
/// rule, robust to a single noisy window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SloRule {
    source: String,
    kind: RuleKind,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum RuleKind {
    /// Class response quantile must stay at or below `ceiling_us`.
    Response { weight: u64, permille: u64, ceiling_us: u64 },
    /// Window utilization must stay at or above `permille`.
    UtilizationFloor { permille: u64 },
    /// Peak queue depth must stay at or below `max`.
    QueueCeiling { max: u64 },
    /// At least `needed` of the trailing `span` windows breached the
    /// inner response ceiling.
    Burn { weight: u64, permille: u64, ceiling_us: u64, needed: u64, span: u64 },
}

fn parse_class(text: &str) -> Result<u64, String> {
    match text {
        "low" => Ok(1),
        "med" => Ok(3),
        "high" => Ok(9),
        other => Err(format!("unknown priority class `{other}` (expected low|med|high)")),
    }
}

fn parse_quantile(text: &str) -> Result<u64, String> {
    match text {
        "p50" => Ok(500),
        "p95" => Ok(950),
        "p99" => Ok(990),
        other => Err(format!("unknown quantile `{other}` (expected p50|p95|p99)")),
    }
}

fn parse_duration_us(text: &str) -> Result<u64, String> {
    let (digits, scale) = if let Some(d) = text.strip_suffix("us") {
        (d, 1)
    } else if let Some(d) = text.strip_suffix("ms") {
        (d, 1_000)
    } else if let Some(d) = text.strip_suffix('s') {
        (d, 1_000_000)
    } else {
        return Err(format!("duration `{text}` needs a us|ms|s suffix"));
    };
    let value: u64 = digits
        .parse()
        .map_err(|_| format!("duration `{text}` is not a whole number"))?;
    Ok(value * scale)
}

impl SloRule {
    /// Parses one rule from its textual form.
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed part of the spec.
    pub fn parse(spec: &str) -> Result<SloRule, String> {
        let spec = spec.trim();
        let kind = if let Some(rest) = spec.strip_prefix("resp:") {
            let (class, rest) = rest
                .split_once(':')
                .ok_or_else(|| format!("`{spec}`: expected resp:<class>:<quantile><=<dur>"))?;
            let (quant, ceiling) = rest
                .split_once("<=")
                .ok_or_else(|| format!("`{spec}`: expected <quantile><=<duration>"))?;
            RuleKind::Response {
                weight: parse_class(class)?,
                permille: parse_quantile(quant)?,
                ceiling_us: parse_duration_us(ceiling)?,
            }
        } else if let Some(rest) = spec.strip_prefix("burn:") {
            let (class, rest) = rest
                .split_once(':')
                .ok_or_else(|| format!("`{spec}`: expected burn:<class>:<quantile><=<dur>@<n>/<m>"))?;
            let (quant, rest) = rest
                .split_once("<=")
                .ok_or_else(|| format!("`{spec}`: expected <quantile><=<duration>@<n>/<m>"))?;
            let (ceiling, rate) = rest
                .split_once('@')
                .ok_or_else(|| format!("`{spec}`: burn rule needs a trailing @<n>/<m>"))?;
            let (needed, span) = rate
                .split_once('/')
                .ok_or_else(|| format!("`{spec}`: burn rate must be <n>/<m> windows"))?;
            let needed: u64 = needed
                .parse()
                .map_err(|_| format!("`{spec}`: breach count `{needed}` is not a number"))?;
            let span: u64 = span
                .parse()
                .map_err(|_| format!("`{spec}`: window span `{span}` is not a number"))?;
            if span == 0 || needed == 0 || needed > span {
                return Err(format!("`{spec}`: burn rate needs 0 < n <= m"));
            }
            RuleKind::Burn {
                weight: parse_class(class)?,
                permille: parse_quantile(quant)?,
                ceiling_us: parse_duration_us(ceiling)?,
                needed,
                span,
            }
        } else if let Some(rest) = spec.strip_prefix("util>=") {
            let pct = rest
                .strip_suffix('%')
                .ok_or_else(|| format!("`{spec}`: utilization floor needs a % suffix"))?;
            let pct: u64 = pct
                .parse()
                .map_err(|_| format!("`{spec}`: percentage `{pct}` is not a whole number"))?;
            if pct > 100 {
                return Err(format!("`{spec}`: utilization floor above 100%"));
            }
            RuleKind::UtilizationFloor { permille: pct * 10 }
        } else if let Some(rest) = spec.strip_prefix("queue<=") {
            let max: u64 = rest
                .parse()
                .map_err(|_| format!("`{spec}`: queue ceiling `{rest}` is not a number"))?;
            RuleKind::QueueCeiling { max }
        } else {
            return Err(format!(
                "unknown rule `{spec}` (expected resp:…, burn:…, util>=…%, or queue<=…)"
            ));
        };
        Ok(SloRule { source: spec.to_owned(), kind })
    }

    /// The rule's textual form, exactly as parsed.
    pub fn source(&self) -> &str {
        &self.source
    }
}

impl std::fmt::Display for SloRule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.source)
    }
}

/// Parses a list of rule specs, stopping at the first malformed one.
///
/// # Errors
///
/// Returns the parse error of the first malformed spec.
pub fn parse_rules(specs: &[String]) -> Result<Vec<SloRule>, String> {
    specs.iter().map(|s| SloRule::parse(s)).collect()
}

/// One fired SLO alert: which rule, which window, observed vs limit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alert {
    /// Source text of the violated rule.
    pub rule: String,
    /// Index of the breaching window.
    pub window: u64,
    /// Simulated microseconds at the window's end (when it became final).
    pub at_us: u64,
    /// The observed value (µs, permille, or depth, per the rule).
    pub value: u64,
    /// The rule's limit in the same unit.
    pub limit: u64,
    /// Human-readable description.
    pub message: String,
}

impl_json_struct!(Alert { rule, window, at_us, value, limit, message });

/// Evaluates [`SloRule`]s window by window, accumulating bounded
/// [`Alert`] records.
///
/// Feeding the same window sequence always produces the same alerts, so
/// the live single-board path (windows fed as they close) and the
/// cluster path (windows fed after the deterministic board merge) agree
/// whenever their series agree.
#[derive(Debug, Clone)]
pub struct SloEngine {
    rules: Vec<SloRule>,
    /// Per-rule trailing breach flags (burn rules only use theirs).
    trailing: Vec<VecDeque<bool>>,
    alerts: Vec<Alert>,
    capacity: usize,
    dropped: u64,
}

impl SloEngine {
    /// Creates an engine over `rules` storing at most
    /// [`DEFAULT_ALERT_CAPACITY`] alerts.
    pub fn new(rules: Vec<SloRule>) -> Self {
        let trailing = rules.iter().map(|_| VecDeque::new()).collect();
        SloEngine {
            rules,
            trailing,
            alerts: Vec::new(),
            capacity: DEFAULT_ALERT_CAPACITY,
            dropped: 0,
        }
    }

    /// The rules this engine evaluates.
    pub fn rules(&self) -> &[SloRule] {
        &self.rules
    }

    /// Alerts fired so far, in window order.
    pub fn alerts(&self) -> &[Alert] {
        &self.alerts
    }

    /// Alerts discarded because the store was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Stores one alert, building its strings only if the store has
    /// room — past capacity a breach costs one counter bump, not an
    /// allocation (alerting runs on the simulation hot path).
    fn fire(
        &mut self,
        source: &str,
        window: u64,
        at_us: u64,
        value: u64,
        limit: u64,
        message: impl FnOnce() -> String,
    ) {
        nb_warn!(
            "slo",
            "msg=\"alert\" rule=\"{source}\" window={window} value={value} limit={limit}",
        );
        if self.alerts.len() < self.capacity {
            self.alerts.push(Alert {
                rule: source.to_owned(),
                window,
                at_us,
                value,
                limit,
                message: message(),
            });
        } else {
            self.dropped += 1;
        }
    }

    /// Evaluates every rule against one newly closed window.
    pub fn on_window(&mut self, index: u64, window: &Window, slots: u64, window_micros: u64) {
        let at_us = (index + 1).saturating_mul(window_micros);
        // Borrow dance: the rules move out for the loop (an O(1) Vec
        // swap) so `fire` can take `&mut self` without cloning a rule
        // per window.
        let rules = std::mem::take(&mut self.rules);
        for (r, rule) in rules.iter().enumerate() {
            match rule.kind {
                RuleKind::Response { weight, permille, ceiling_us } => {
                    let sketch = window.response_sketch(weight);
                    if sketch.is_empty() {
                        continue;
                    }
                    let q = sketch.quantile_permille(permille);
                    if q > ceiling_us {
                        self.fire(&rule.source, index, at_us, q, ceiling_us, || {
                            format!(
                                "response p{permille}‰ {q}us exceeds {ceiling_us}us in window {index}"
                            )
                        });
                    }
                }
                RuleKind::UtilizationFloor { permille } => {
                    let util = window.utilization_permille(slots, window_micros);
                    if util < permille {
                        self.fire(&rule.source, index, at_us, util, permille, || {
                            format!(
                                "utilization {util}‰ below floor {permille}‰ in window {index}"
                            )
                        });
                    }
                }
                RuleKind::QueueCeiling { max } => {
                    let peak = window.queue_depth_peak;
                    if peak > max {
                        self.fire(&rule.source, index, at_us, peak, max, || {
                            format!(
                                "queue depth peaked at {peak} over ceiling {max} in window {index}"
                            )
                        });
                    }
                }
                RuleKind::Burn { weight, permille, ceiling_us, needed, span } => {
                    let sketch = window.response_sketch(weight);
                    let breached =
                        !sketch.is_empty() && sketch.quantile_permille(permille) > ceiling_us;
                    let trail = &mut self.trailing[r];
                    trail.push_back(breached);
                    while trail.len() as u64 > span {
                        trail.pop_front();
                    }
                    let burned = trail.iter().filter(|&&b| b).count() as u64;
                    if burned >= needed {
                        self.fire(&rule.source, index, at_us, burned, needed, || {
                            format!(
                                "{burned} of the trailing {span} windows breached \
                                 p{permille}‰ <= {ceiling_us}us (budget {needed})"
                            )
                        });
                    }
                }
            }
        }
        self.rules = rules;
    }
}

// ---------------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------------

/// One flight-recorder entry: a hypervisor event or scheduler decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecorderEntry {
    /// Simulated microseconds.
    pub at_us: u64,
    /// Cluster board index (0 for single-board runs).
    pub board: u64,
    /// Entry kind: `arrival`, `reconfig`, `preempt`, `item`, `retire`.
    pub kind: String,
    /// Free-form detail (app, task, slot, timings).
    pub detail: String,
}

impl_json_struct!(RecorderEntry { at_us, board, kind, detail });

/// A capacity-bounded ring of the most recent [`RecorderEntry`]s.
///
/// Unlike [`crate::SpanBuffer`] (which keeps the *first* N and drops the
/// rest), a flight recorder keeps the *last* N: when full, the oldest
/// entry is evicted and counted in [`FlightRecorder::dropped`]. Both
/// shapes are hard-capacity recording buffers, enforced by the
/// `no-unbounded-span-buffer` lint.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FlightRecorder {
    entries: VecDeque<RecorderEntry>,
    capacity: usize,
    dropped: u64,
}

impl FlightRecorder {
    /// Creates a recorder keeping at most `capacity` entries.
    pub fn with_capacity(capacity: usize) -> Self {
        FlightRecorder { entries: VecDeque::new(), capacity, dropped: 0 }
    }

    /// Appends `entry`, evicting (and drop-counting) the oldest entry
    /// when the ring is full.
    pub fn push(&mut self, entry: RecorderEntry) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
            self.dropped += 1;
        }
        self.entries.push_back(entry);
    }

    /// Like [`FlightRecorder::push`], but the entry strings are built
    /// only if the ring retains entries at all — a sink-less
    /// (zero-capacity) recorder costs one counter bump per event, no
    /// allocation.
    pub fn push_with(
        &mut self,
        at_us: u64,
        board: u64,
        kind: &str,
        detail: impl FnOnce() -> String,
    ) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        // Copies the short static kind label into the bounded ring only
        // when monitoring is enabled. nimblock: allow(hot-path-no-alloc)
        self.push(RecorderEntry { at_us, board, kind: kind.to_owned(), detail: detail() });
    }

    /// Retained entries, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &RecorderEntry> {
        self.entries.iter()
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The ring's capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of entries evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

// ---------------------------------------------------------------------------
// Monitor
// ---------------------------------------------------------------------------

/// Configuration of a [`MonitorState`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MonitorConfig {
    /// Tumbling-window length in simulated microseconds.
    pub window_micros: u64,
    /// Maximum number of windows retained (fixed-memory guarantee).
    pub window_capacity: usize,
    /// Flight-recorder ring capacity.
    pub ring_capacity: usize,
    /// SLO rules to evaluate as windows close.
    pub rules: Vec<SloRule>,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            window_micros: DEFAULT_WINDOW_MICROS,
            window_capacity: DEFAULT_WINDOW_CAPACITY,
            ring_capacity: DEFAULT_RING_CAPACITY,
            rules: Vec::new(),
        }
    }
}

impl MonitorConfig {
    /// A config with `window_micros`-long windows and defaults elsewhere.
    pub fn with_window_micros(window_micros: u64) -> Self {
        MonitorConfig { window_micros, ..MonitorConfig::default() }
    }

    /// Returns this config with `rules` replacing the current rule set.
    pub fn rules(mut self, rules: Vec<SloRule>) -> Self {
        self.rules = rules;
        self
    }

    /// Returns this config with the rule set cleared — cluster boards
    /// aggregate windows only; rules run once, on the merged series.
    pub fn without_rules(mut self) -> Self {
        self.rules = Vec::new();
        self
    }
}

/// The continuous-observability aggregator of one run (or one cluster
/// board): tumbling windows, flight recorder, and SLO engine.
///
/// All timestamps are simulated microseconds; the state never reads the
/// wall clock. Events arrive in non-decreasing time, so a window is
/// *final* once `now` passes its end — [`MonitorState::advance`] then
/// feeds it to the SLO engine exactly once.
#[derive(Debug, Clone)]
pub struct MonitorState {
    config: MonitorConfig,
    slots: u64,
    board: u64,
    windows: Vec<Window>,
    /// Observations discarded because they fell past `window_capacity`.
    dropped: u64,
    /// Number of leading windows already fed to the SLO engine.
    evaluated: u64,
    /// Per-slot planned end of the in-flight item (µs; 0 = none), so a
    /// fine-grained abort can subtract the un-executed remainder.
    open_until: Vec<u64>,
    /// The last sampled occupancy (queue depth, waiting, running) and
    /// the window it landed in. Emitters only sample when the
    /// scheduling state *changes*, so windows an unchanged state spans
    /// entirely are seeded from here — they saw exactly those values.
    last_sample: (u64, u64, u64),
    last_sample_window: u64,
    recorder: FlightRecorder,
    engine: SloEngine,
}

impl MonitorState {
    /// Creates a monitor for a device with `slots` slots.
    pub fn new(config: MonitorConfig, slots: usize) -> Self {
        let engine = SloEngine::new(config.rules.clone());
        let recorder = FlightRecorder::with_capacity(config.ring_capacity);
        MonitorState {
            config,
            slots: slots as u64,
            board: 0,
            windows: Vec::new(),
            dropped: 0,
            evaluated: 0,
            open_until: vec![0; slots],
            last_sample: (0, 0, 0),
            last_sample_window: 0,
            recorder,
            engine,
        }
    }

    /// Tags subsequent flight-recorder entries with a board index.
    pub fn set_board(&mut self, board: u64) {
        self.board = board;
    }

    /// (Re)binds the monitor to a device with `slots` slots. The
    /// hypervisor calls this on attach so the utilization denominator
    /// and per-slot abort tracking always match the actual device.
    pub fn set_slots(&mut self, slots: usize) {
        self.slots = slots as u64;
        self.open_until.resize(slots, 0);
    }

    /// The slot count behind the utilization denominator (summed across
    /// boards after a cluster merge).
    pub fn slots(&self) -> u64 {
        self.slots
    }

    /// The monitor's configuration.
    pub fn config(&self) -> &MonitorConfig {
        &self.config
    }

    /// The closed and in-progress windows so far, window 0 first.
    pub fn windows(&self) -> &[Window] {
        &self.windows
    }

    /// Alerts fired so far.
    pub fn alerts(&self) -> &[Alert] {
        self.engine.alerts()
    }

    /// The flight recorder.
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// Observations discarded past the window capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    fn window_mut(&mut self, index: u64) -> Option<&mut Window> {
        if index >= self.config.window_capacity as u64 {
            self.dropped += 1;
            return None;
        }
        let index = index as usize;
        while self.windows.len() <= index && self.windows.len() < self.config.window_capacity {
            self.windows.push(Window::default());
        }
        self.windows.get_mut(index)
    }

    fn index_of(&self, at_us: u64) -> u64 {
        at_us / self.config.window_micros.max(1)
    }

    /// The first instant past the last window the capacity can hold;
    /// busy intervals are clipped here so a long run does not walk
    /// window-by-window through time the series cannot record anyway.
    fn horizon_us(&self) -> u64 {
        (self.config.window_capacity as u64).saturating_mul(self.config.window_micros.max(1))
    }

    /// Distributes busy microseconds over `[start, until)`, clipped at
    /// window boundaries. The portion past the capacity horizon is one
    /// dropped observation, not one per spanned window.
    fn add_busy(&mut self, start: u64, until: u64) {
        let horizon = self.horizon_us();
        if until > horizon {
            self.dropped += 1;
        }
        let until = until.min(horizon);
        let w = self.config.window_micros.max(1);
        let mut t = start;
        while t < until {
            let index = t / w;
            let window_end = (index + 1).saturating_mul(w);
            let chunk = until.min(window_end) - t;
            if let Some(window) = self.window_mut(index) {
                window.busy_micros += chunk;
            }
            t = window_end;
        }
    }

    /// Removes busy microseconds over `[start, until)` — the un-executed
    /// remainder of an aborted (fine-grained preempted) item. Clipped at
    /// the capacity horizon exactly like `add_busy`, so an abort undoes
    /// precisely what the launch recorded (without a second drop: the
    /// clipped launch already counted).
    fn sub_busy(&mut self, start: u64, until: u64) {
        let horizon = self.horizon_us();
        let until = until.min(horizon);
        let w = self.config.window_micros.max(1);
        let mut t = start;
        while t < until {
            let index = t / w;
            let window_end = (index + 1).saturating_mul(w);
            let chunk = until.min(window_end) - t;
            if let Some(window) = self.window_mut(index) {
                window.busy_micros = window.busy_micros.saturating_sub(chunk);
            }
            t = window_end;
        }
    }

    /// An application was admitted at `now`.
    pub fn on_arrival(&mut self, now: u64) {
        let index = self.index_of(now);
        if let Some(window) = self.window_mut(index) {
            window.arrivals += 1;
        }
    }

    /// One bitstream-cache lookup during admission.
    pub fn on_cache(&mut self, now: u64, hit: bool) {
        let index = self.index_of(now);
        if let Some(window) = self.window_mut(index) {
            if hit {
                window.cache_hits += 1;
            } else {
                window.cache_misses += 1;
            }
        }
    }

    /// A preemption was enacted at `now`.
    pub fn on_preempt(&mut self, now: u64) {
        let index = self.index_of(now);
        if let Some(window) = self.window_mut(index) {
            window.preemptions += 1;
        }
    }

    /// A reconfiguration stream occupies its slot over `[start, until)`.
    pub fn on_reconfig(&mut self, start: u64, until: u64) {
        let index = self.index_of(start);
        if let Some(window) = self.window_mut(index) {
            window.reconfigurations += 1;
        }
        self.add_busy(start, until);
    }

    /// An item was launched on `slot`, planned to run `[at, until)`.
    /// Busy time is accounted at launch so a window is final the moment
    /// `now` passes its end; an abort subtracts the remainder.
    pub fn on_item_launch(&mut self, slot: usize, at: u64, until: u64) {
        self.add_busy(at, until);
        if let Some(open) = self.open_until.get_mut(slot) {
            *open = until;
        }
    }

    /// The item on `slot` completed as planned.
    pub fn on_item_done(&mut self, slot: usize) {
        if let Some(open) = self.open_until.get_mut(slot) {
            *open = 0;
        }
    }

    /// The item on `slot` was aborted at `now` by a fine-grained
    /// preemption: its un-executed remainder leaves the busy series.
    pub fn on_item_abort(&mut self, slot: usize, now: u64) {
        let Some(open) = self.open_until.get_mut(slot) else { return };
        let until = std::mem::take(open);
        if until > now {
            self.sub_busy(now, until);
        }
    }

    /// An application with priority `weight` (1/3/9) retired at `now`
    /// with the given response time and slowdown (×1000).
    pub fn on_retire(&mut self, now: u64, weight: u64, response_us: u64, slowdown_milli: u64) {
        let index = self.index_of(now);
        if let Some(window) = self.window_mut(index) {
            window.retires += 1;
            match weight {
                1 => {
                    window.resp_low.observe(response_us);
                    window.slow_low.observe(slowdown_milli);
                }
                3 => {
                    window.resp_med.observe(response_us);
                    window.slow_med.observe(slowdown_milli);
                }
                _ => {
                    window.resp_high.observe(response_us);
                    window.slow_high.observe(slowdown_milli);
                }
            }
        }
    }

    /// Samples the scheduling state after an event: `queue_depth`
    /// unplaced tasks, `waiting` slotless apps, `running` apps holding a
    /// slot. Each window keeps the peak of every sample inside it.
    ///
    /// Emitters need only call this when the state *changes*: the
    /// previous sample is carried through every window up to and
    /// including this one first, since the unchanged state is what
    /// those windows observed. (Carried seeds into windows past the
    /// capacity bound are silently clipped — they are re-statements of
    /// an already-recorded observation, not new ones, so they do not
    /// count as drops.)
    pub fn sample(&mut self, now: u64, queue_depth: u64, waiting: u64, running: u64) {
        self.advance(now);
        let index = self.index_of(now);
        let (q, w, r) = self.last_sample;
        let capacity = self.config.window_capacity as u64;
        let mut fill = self.last_sample_window + 1;
        while fill <= index.min(capacity.saturating_sub(1)) {
            if let Some(window) = self.window_mut(fill) {
                window.queue_depth_peak = window.queue_depth_peak.max(q);
                window.waiting_peak = window.waiting_peak.max(w);
                window.running_peak = window.running_peak.max(r);
            }
            fill += 1;
        }
        if let Some(window) = self.window_mut(index) {
            window.queue_depth_peak = window.queue_depth_peak.max(queue_depth);
            window.waiting_peak = window.waiting_peak.max(waiting);
            window.running_peak = window.running_peak.max(running);
        }
        self.last_sample = (queue_depth, waiting, running);
        self.last_sample_window = index;
    }

    /// Records one flight-recorder entry (the board tag is stamped here).
    pub fn record(&mut self, at_us: u64, kind: &str, detail: impl FnOnce() -> String) {
        let board = self.board;
        self.recorder.push_with(at_us, board, kind, detail);
    }

    /// Feeds every window that ended at or before `now` to the SLO
    /// engine (each exactly once). Windows between samples that saw no
    /// event still count — an all-idle window legitimately breaches a
    /// utilization floor.
    pub fn advance(&mut self, now: u64) {
        let final_count = self.index_of(now);
        if final_count == 0 || final_count <= self.evaluated {
            return;
        }
        // Materialize idle windows up to the last final one.
        let _ = self.window_mut(final_count - 1);
        let last = final_count.min(self.windows.len() as u64);
        let MonitorState { windows, engine, config, slots, .. } = self;
        for index in self.evaluated..last {
            engine.on_window(index, &windows[index as usize], *slots, config.window_micros);
        }
        self.evaluated = last.max(self.evaluated);
    }

    /// Closes out the run at `end_us`: every remaining window (up to the
    /// one containing the last instant before `end_us`) is evaluated. An
    /// `end_us` on an exact boundary does not open the next window.
    pub fn finalize(&mut self, end_us: u64) {
        if end_us > 0 {
            let _ = self.window_mut(self.index_of(end_us - 1));
        }
        let MonitorState { windows, engine, config, slots, evaluated, .. } = self;
        for index in *evaluated..windows.len() as u64 {
            engine.on_window(index, &windows[index as usize], *slots, config.window_micros);
        }
        *evaluated = windows.len() as u64;
        nb_debug!(
            "slo",
            "msg=\"finalized\" windows={} alerts={} end_us={end_us}",
            windows.len(),
            engine.alerts().len(),
        );
    }

    /// Folds another board's monitor into this one, window-index-wise.
    /// Call in strictly ascending board order so the flight-recorder
    /// concatenation (and therefore the merged doc) is deterministic.
    /// The other board's alerts are discarded: rules are re-evaluated on
    /// the merged series via [`MonitorState::evaluate_merged`].
    pub fn merge_from(&mut self, other: &MonitorState) {
        for (index, window) in other.windows.iter().enumerate() {
            if let Some(mine) = self.window_mut(index as u64) {
                mine.merge_from(window);
            }
        }
        self.slots += other.slots;
        self.dropped += other.dropped;
        for entry in other.recorder.entries() {
            self.recorder.push(entry.clone());
        }
    }

    /// Re-evaluates the rule set from scratch over the (merged) window
    /// series. A pure function of the windows, so any board merge order
    /// producing the same series produces the same alerts.
    pub fn evaluate_merged(&mut self) {
        self.engine = SloEngine::new(self.config.rules.clone());
        self.evaluated = 0;
        let MonitorState { windows, engine, config, slots, .. } = self;
        for (index, window) in windows.iter().enumerate() {
            engine.on_window(index as u64, window, *slots, config.window_micros);
        }
        self.evaluated = windows.len() as u64;
    }

    /// Snapshots this monitor into its serializable document form.
    pub fn to_doc(&self) -> MonitorDoc {
        MonitorDoc {
            window_micros: self.config.window_micros,
            slots: self.slots,
            windows: self.windows.clone(),
            dropped: self.dropped,
            rules: self.config.rules.iter().map(|r| r.source().to_owned()).collect(),
            alerts: self.engine.alerts().to_vec(),
            dropped_alerts: self.engine.dropped(),
            recorder: self.recorder.entries().cloned().collect(),
            recorder_dropped: self.recorder.dropped(),
            trigger: None,
            span_tree: None,
            span_dropped: 0,
        }
    }
}

/// A shared, cloneable handle to a [`MonitorState`].
///
/// The hypervisor holds one (optionally) and the run driver holds a
/// clone, so a post-mortem can be dumped even when the run itself
/// panicked — the state survives in the `Arc`. Detached runs hold no
/// handle at all; the hot path then pays a single `Option` branch.
#[derive(Debug, Clone, Default)]
pub struct MonitorHandle(Arc<Mutex<MonitorState>>);

impl Default for MonitorState {
    fn default() -> Self {
        MonitorState::new(MonitorConfig::default(), 0)
    }
}

impl MonitorHandle {
    /// Creates a monitor for a device with `slots` slots.
    pub fn new(config: MonitorConfig, slots: usize) -> Self {
        MonitorHandle(Arc::new(Mutex::new(MonitorState::new(config, slots))))
    }

    /// Runs `f` on the locked state. Lock poisoning (a panic while a
    /// previous caller held the lock) is ignored on purpose: the state
    /// is exactly what a post-mortem dump wants to see.
    pub fn with<R>(&self, f: impl FnOnce(&mut MonitorState) -> R) -> R {
        let mut state = self.0.lock().unwrap_or_else(PoisonError::into_inner);
        f(&mut state)
    }

    /// Snapshots the current state as a serializable document.
    pub fn to_doc(&self) -> MonitorDoc {
        self.with(|state| state.to_doc())
    }
}

// ---------------------------------------------------------------------------
// MonitorDoc
// ---------------------------------------------------------------------------

/// The serializable monitoring document: windowed series, rules, alerts,
/// and (for post-mortems) the flight-recorder dump, the trigger, and the
/// failing app's rendered span tree.
///
/// Written by `--timeseries-out` and by post-mortem dumps; read back by
/// `analyze monitor`. Window `w` covers `[w·window_micros,
/// (w+1)·window_micros)` of simulated time.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MonitorDoc {
    /// Tumbling-window length in simulated microseconds.
    pub window_micros: u64,
    /// Device slot count (summed across boards for cluster series).
    pub slots: u64,
    /// The windowed series, window 0 first.
    pub windows: Vec<Window>,
    /// Observations discarded past the window capacity.
    pub dropped: u64,
    /// Textual forms of the evaluated SLO rules.
    pub rules: Vec<String>,
    /// Alerts fired, in window order.
    pub alerts: Vec<Alert>,
    /// Alerts discarded because the alert store was full.
    pub dropped_alerts: u64,
    /// Flight-recorder entries, oldest first.
    pub recorder: Vec<RecorderEntry>,
    /// Entries evicted from the flight recorder.
    pub recorder_dropped: u64,
    /// What triggered a post-mortem dump (`None` for plain exports).
    pub trigger: Option<String>,
    /// Rendered span tree of the app implicated by the trigger.
    pub span_tree: Option<String>,
    /// Candidate span trees a post-mortem discarded because its bounded
    /// [`crate::SpanBuffer`] was full (0 for plain exports).
    pub span_dropped: u64,
}

impl_json_struct!(MonitorDoc {
    window_micros,
    slots,
    windows,
    dropped,
    rules,
    alerts,
    dropped_alerts,
    recorder,
    recorder_dropped,
    trigger,
    span_tree,
    span_dropped
});

#[cfg(test)]
mod tests {
    use super::*;

    fn config(window_micros: u64) -> MonitorConfig {
        MonitorConfig::with_window_micros(window_micros)
    }

    #[test]
    fn sparse_sketch_matches_the_dense_digest() {
        let digest = QuantileDigest::detached();
        let mut sketch = SparseSketch::new();
        for v in [0, 1, 31, 32, 33, 100, 999, 40_000, 1 << 40] {
            digest.observe(v);
            sketch.observe(v);
        }
        assert_eq!(sketch.count(), digest.count());
        assert_eq!(sketch.sum(), digest.sum());
        for (q, permille) in [(0.5, 500), (0.95, 950), (0.99, 990)] {
            assert_eq!(sketch.quantile_permille(permille), digest.quantile(q), "q={q}");
        }
    }

    #[test]
    fn sparse_sketch_merge_is_exact() {
        let mut a = SparseSketch::new();
        let mut b = SparseSketch::new();
        let mut whole = SparseSketch::new();
        for v in 0..500u64 {
            if v % 2 == 0 { a.observe(v * 7) } else { b.observe(v * 7) }
            whole.observe(v * 7);
        }
        a.merge_from(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn busy_time_clips_at_window_boundaries() {
        let mut state = MonitorState::new(config(1_000), 2);
        state.on_item_launch(0, 500, 2_500);
        assert_eq!(state.windows()[0].busy_micros, 500);
        assert_eq!(state.windows()[1].busy_micros, 1_000);
        assert_eq!(state.windows()[2].busy_micros, 500);
        // The whole span utilizes 2000/2000 µs of one of two slots.
        assert_eq!(state.windows()[1].utilization_permille(2, 1_000), 500);
    }

    #[test]
    fn aborting_an_item_returns_the_unexecuted_remainder() {
        let mut state = MonitorState::new(config(1_000), 1);
        state.on_item_launch(0, 0, 2_000);
        state.on_item_abort(0, 500);
        assert_eq!(state.windows()[0].busy_micros, 500);
        assert_eq!(state.windows()[1].busy_micros, 0);
        // A second abort is a no-op: the open span was consumed.
        state.on_item_abort(0, 100);
        assert_eq!(state.windows()[0].busy_micros, 500);
    }

    #[test]
    fn windows_are_capacity_bounded_with_counted_drops() {
        let mut cfg = config(1_000);
        cfg.window_capacity = 2;
        let mut state = MonitorState::new(cfg, 1);
        state.on_arrival(100);
        state.on_arrival(5_500);
        assert_eq!(state.windows().len(), 1);
        assert_eq!(state.dropped(), 1);
        assert_eq!(state.windows()[0].arrivals, 1);
    }

    #[test]
    fn sample_peaks_and_counters_land_in_their_windows() {
        let mut state = MonitorState::new(config(1_000), 2);
        state.sample(100, 3, 2, 1);
        state.sample(200, 5, 1, 2);
        state.on_preempt(150);
        state.on_cache(150, true);
        state.on_cache(150, false);
        state.sample(1_200, 1, 1, 1);
        let w0 = &state.windows()[0];
        assert_eq!(w0.queue_depth_peak, 5);
        assert_eq!(w0.waiting_peak, 2);
        assert_eq!(w0.running_peak, 2);
        assert_eq!(w0.preemptions, 1);
        assert_eq!((w0.cache_hits, w0.cache_misses), (1, 1));
        // The (5, 1, 2) state held until the 1 200 µs sample, so window 1
        // observed it too: samples carry forward across window edges.
        assert_eq!(state.windows()[1].queue_depth_peak, 5);
        assert_eq!(state.windows()[1].running_peak, 2);
    }

    #[test]
    fn samples_carry_through_windows_between_state_changes() {
        // Emitters sample only on state changes; the windows an
        // unchanged state spans entirely still record its peaks.
        let mut state = MonitorState::new(config(1_000), 2);
        state.sample(100, 4, 2, 1);
        state.sample(3_500, 0, 0, 0);
        assert_eq!(state.windows().len(), 4);
        for index in 0..=3 {
            assert_eq!(
                state.windows()[index].queue_depth_peak,
                4,
                "window {index} saw the carried backlog"
            );
            assert_eq!(state.windows()[index].waiting_peak, 2);
        }
    }

    #[test]
    fn retire_observations_land_in_their_class_sketch() {
        let mut state = MonitorState::new(config(1_000), 1);
        state.on_retire(100, 1, 500, 1_000);
        state.on_retire(100, 3, 700, 2_000);
        state.on_retire(100, 9, 900, 3_000);
        let w = &state.windows()[0];
        assert_eq!(w.retires, 3);
        assert_eq!(w.resp_low.count(), 1);
        assert_eq!(w.resp_med.count(), 1);
        assert_eq!(w.resp_high.count(), 1);
        let dense = QuantileDigest::detached();
        dense.observe(3_000);
        assert_eq!(w.slow_high.quantile_permille(500), dense.quantile(0.5));
    }

    #[test]
    fn rule_grammar_round_trips() {
        for spec in ["resp:high:p99<=250ms", "util>=55%", "queue<=4", "burn:med:p95<=1s@3/5"] {
            let rule = SloRule::parse(spec).expect(spec);
            assert_eq!(rule.source(), spec);
            assert_eq!(rule.to_string(), spec);
        }
        for bad in [
            "resp:urgent:p99<=1ms",
            "resp:high:p42<=1ms",
            "resp:high:p99<=1d",
            "util>=155%",
            "util>=50",
            "queue<=many",
            "burn:low:p50<=1ms@0/5",
            "burn:low:p50<=1ms@6/5",
            "latency<10ms",
        ] {
            assert!(SloRule::parse(bad).is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn response_rule_fires_only_on_breaching_windows() {
        let rules = vec![SloRule::parse("resp:high:p99<=1ms").unwrap()];
        let mut cfg = config(1_000);
        cfg.rules = rules;
        let mut state = MonitorState::new(cfg, 1);
        state.on_retire(100, 9, 500, 1_000); // within budget
        state.on_retire(1_100, 9, 5_000, 1_000); // breach
        state.finalize(2_000);
        let alerts = state.alerts();
        assert_eq!(alerts.len(), 1, "{alerts:?}");
        assert_eq!(alerts[0].window, 1);
        assert!(alerts[0].value > 1_000);
        assert_eq!(alerts[0].limit, 1_000);
    }

    #[test]
    fn burn_rule_needs_enough_breaching_windows() {
        let mut cfg = config(1_000);
        cfg.rules = vec![SloRule::parse("burn:low:p50<=1ms@2/3").unwrap()];
        let mut state = MonitorState::new(cfg, 1);
        state.on_retire(100, 1, 5_000, 1_000); // window 0 breach
        state.on_retire(1_100, 1, 100, 1_000); // window 1 ok
        state.on_retire(2_100, 1, 5_000, 1_000); // window 2 breach -> 2/3
        state.on_retire(3_100, 1, 5_000, 1_000); // window 3 breach -> 2/3 still
        state.finalize(4_000);
        let fired: Vec<u64> = state.alerts().iter().map(|a| a.window).collect();
        assert_eq!(fired, vec![2, 3], "{:?}", state.alerts());
    }

    #[test]
    fn utilization_floor_counts_idle_gap_windows() {
        let mut cfg = config(1_000);
        cfg.rules = vec![SloRule::parse("util>=50%").unwrap()];
        let mut state = MonitorState::new(cfg, 1);
        state.on_item_launch(0, 0, 1_000); // window 0 fully busy
        // Nothing in window 1; activity resumes in window 2.
        state.sample(2_500, 0, 0, 0);
        state.finalize(2_500);
        let fired: Vec<u64> = state.alerts().iter().map(|a| a.window).collect();
        assert_eq!(fired, vec![1, 2], "idle windows breach the floor: {fired:?}");
    }

    #[test]
    fn advance_evaluates_each_window_exactly_once() {
        let mut cfg = config(1_000);
        cfg.rules = vec![SloRule::parse("queue<=0").unwrap()];
        let mut state = MonitorState::new(cfg, 1);
        state.sample(100, 3, 1, 0);
        state.sample(1_100, 0, 0, 0); // closes window 0
        state.sample(1_200, 0, 0, 0); // window 0 must not re-fire
        state.finalize(1_500);
        // Window 0 breaches directly; window 1 breaches via the carried
        // backlog (queue 3 held until the 1 100 µs sample). Each fires
        // exactly once despite the extra sample and the finalize.
        let fired: Vec<u64> = state.alerts().iter().map(|a| a.window).collect();
        assert_eq!(fired, vec![0, 1]);
    }

    #[test]
    fn flight_recorder_keeps_the_last_n() {
        let mut ring = FlightRecorder::with_capacity(2);
        for i in 0..5u64 {
            ring.push(RecorderEntry {
                at_us: i,
                board: 0,
                kind: "arrival".into(),
                detail: format!("app{i}"),
            });
        }
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.dropped(), 3);
        let kept: Vec<u64> = ring.entries().map(|e| e.at_us).collect();
        assert_eq!(kept, vec![3, 4]);
    }

    #[test]
    fn board_merge_then_evaluate_matches_a_single_state() {
        let mut cfg = config(1_000);
        cfg.rules = vec![SloRule::parse("queue<=1").unwrap()];
        // One state seeing everything...
        let mut whole = MonitorState::new(cfg.clone(), 4);
        whole.sample(100, 2, 1, 1);
        whole.on_retire(1_100, 9, 300, 1_000);
        whole.on_item_launch(0, 0, 1_500);
        whole.finalize(2_000);
        // ...versus two boards, each seeing half, merged in board order.
        let mut a = MonitorState::new(cfg.clone().without_rules(), 2);
        a.sample(100, 2, 1, 1);
        a.on_item_launch(0, 0, 1_500);
        a.finalize(2_000);
        let mut b = MonitorState::new(cfg.clone().without_rules(), 2);
        b.on_retire(1_100, 9, 300, 1_000);
        b.finalize(2_000);
        let mut merged = MonitorState::new(cfg, 0);
        merged.merge_from(&a);
        merged.merge_from(&b);
        merged.evaluate_merged();
        assert_eq!(merged.slots(), whole.slots());
        assert_eq!(merged.windows(), whole.windows());
        assert_eq!(merged.alerts(), whole.alerts());
    }

    #[test]
    fn doc_round_trips_through_json() {
        let mut cfg = config(1_000);
        cfg.rules = vec![SloRule::parse("util>=99%").unwrap()];
        let mut state = MonitorState::new(cfg, 2);
        state.on_arrival(100);
        state.on_item_launch(0, 100, 900);
        state.on_retire(900, 3, 800, 4_000);
        state.record(100, "arrival", || "app0 lenet".into());
        state.finalize(1_000);
        let mut doc = state.to_doc();
        doc.trigger = Some("test trigger".into());
        doc.span_tree = Some("* app app0 [0 .. 900] 900us\n".into());
        let text = nimblock_ser::to_string_pretty(&doc);
        let back: MonitorDoc = nimblock_ser::from_str(&text).expect("doc parses");
        assert_eq!(back, doc);
        assert_eq!(back.windows.len(), 1);
        assert_eq!(back.alerts.len(), 1);
        assert_eq!(back.recorder.len(), 1);
    }

    #[test]
    fn handle_survives_poisoning_for_post_mortems() {
        let handle = MonitorHandle::new(config(1_000), 1);
        let inner = handle.clone();
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            inner.with(|state| {
                state.on_arrival(100);
                panic!("mid-update");
            })
        }));
        // The poisoned lock still yields the state for the dump.
        let doc = handle.to_doc();
        assert_eq!(doc.windows[0].arrivals, 1);
    }
}
