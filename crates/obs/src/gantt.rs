//! Generic ASCII Gantt renderer.
//!
//! Renders labelled rows of time spans into a fixed-width terminal
//! chart. `nimblock-core`'s `Trace::gantt` delegates here; the renderer
//! itself knows nothing about slots or apps, just rows, spans, and an
//! axis.
//!
//! ```text
//! slot#0 |000000111   222|
//! slot#1 |   11111       |
//! CAP    |RR R    RR     |
//! 0                1.500s
//! ```

/// One half-open span `[start, end)` drawn with a single mark character.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GanttSpan {
    /// Span start, in the caller's time unit.
    pub start: u64,
    /// Span end (exclusive), in the caller's time unit.
    pub end: u64,
    /// Character repeated across the span's cells.
    pub mark: char,
}

/// One chart row: a label and its spans.
#[derive(Debug, Clone)]
pub struct GanttRow {
    /// Row label, left-aligned in the gutter (e.g. `slot#0`, `CAP`).
    pub label: String,
    /// Spans drawn in order; later spans overwrite earlier cells.
    pub spans: Vec<GanttSpan>,
}

impl GanttRow {
    /// A row with no spans yet.
    pub fn new(label: impl Into<String>) -> GanttRow {
        GanttRow { label: label.into(), spans: Vec::new() }
    }

    /// Adds one span to the row.
    pub fn span(&mut self, start: u64, end: u64, mark: char) {
        self.spans.push(GanttSpan { start, end, mark });
    }
}

/// Renders `rows` into a `width`-cell chart covering `[0, end)`, with an
/// axis line underneath labelled `0` on the left and `end_label` on the
/// right.
///
/// Each cell covers `end / width` time units (rounded up); a span marks
/// every cell it overlaps, so even sub-cell spans stay visible. Labels
/// are padded to the longest label so the `|` gutters align.
pub fn render_gantt(rows: &[GanttRow], width: usize, end: u64, end_label: &str) -> String {
    let width = width.max(1);
    let label_width = rows.iter().map(|r| r.label.chars().count()).max().unwrap_or(0);
    // Ceil division so the final span always lands inside the chart.
    let cell = if end == 0 { 1 } else { end.div_ceil(width as u64).max(1) };

    let mut out = String::new();
    for row in rows {
        let mut cells = vec![' '; width];
        for span in &row.spans {
            if span.end <= span.start {
                continue;
            }
            let first = (span.start / cell) as usize;
            // Inclusive last cell the half-open span touches.
            let last = ((span.end - 1) / cell) as usize;
            for c in cells.iter_mut().take(width.min(last + 1)).skip(first.min(width)) {
                *c = span.mark;
            }
        }
        let line: String = cells.into_iter().collect();
        out.push_str(&format!("{:<label_width$} |{line}|\n", row.label));
    }
    // Axis: `0` under the left gutter edge, the end label right-aligned
    // under the right edge.
    out.push_str(&format!(
        "{:<label_width$} 0{:>width$}\n",
        "",
        end_label,
        width = width.saturating_sub(0),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_rows_with_aligned_gutters() {
        let mut slot0 = GanttRow::new("slot#0");
        slot0.span(0, 500, '0');
        slot0.span(500, 1000, '1');
        let mut cap = GanttRow::new("CAP");
        cap.span(0, 100, 'R');
        let chart = render_gantt(&[slot0, cap], 10, 1000, "1.000s");
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "slot#0 |0000011111|");
        assert_eq!(lines[1], "CAP    |R         |");
        assert!(lines[2].starts_with("       0"));
        assert!(lines[2].ends_with("1.000s"));
    }

    #[test]
    fn sub_cell_spans_still_mark_a_cell() {
        let mut row = GanttRow::new("s");
        row.span(999, 1000, 'x'); // last microsecond only
        let chart = render_gantt(&[row], 10, 1000, "1s");
        assert!(chart.lines().next().unwrap().ends_with("x|"), "{chart}");
    }

    #[test]
    fn empty_and_degenerate_inputs_do_not_panic() {
        assert!(render_gantt(&[], 10, 0, "0s").contains('0'));
        let mut row = GanttRow::new("s");
        row.span(5, 5, 'x'); // empty span ignored
        let chart = render_gantt(&[row], 1, 0, "0s");
        assert!(chart.contains("s | |"), "{chart}");
    }

    #[test]
    fn spans_past_the_end_are_clipped() {
        let mut row = GanttRow::new("s");
        row.span(0, 10_000, 'x');
        let chart = render_gantt(&[row], 5, 1000, "1s");
        assert_eq!(chart.lines().next().unwrap(), "s |xxxxx|");
    }
}
