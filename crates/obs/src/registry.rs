//! The metrics registry: counters, gauges, and log-scale histograms.
//!
//! Instruments are cheap cloneable handles around atomics, so the
//! instrumented hot path pays one relaxed atomic operation per update and
//! never takes a lock. A [`Registry`] names instruments and renders them
//! in Prometheus exposition text or as JSON (via `nimblock-ser`).
//!
//! Handles also work *detached* (not registered anywhere): the hypervisor
//! always counts into detached handles so the cost of instrumentation is
//! identical whether or not a registry is attached, and per-instance
//! counts (e.g. one report per cluster board) stay correct.

use std::fmt;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use nimblock_ser::{Json, ToJson};

/// Number of finite log2 histogram buckets (upper bounds 2^0 .. 2^47);
/// one overflow (+Inf) bucket follows. 2^47 µs ≈ 4.5 simulated years, far
/// beyond any run this testbed produces.
pub const HISTOGRAM_FINITE_BUCKETS: usize = 48;

/// Sub-buckets per power-of-two octave in a [`QuantileDigest`]. With 32
/// sub-buckets the worst-case relative error of any reported quantile is
/// `1/32 = 3.125%`; values below 32 are stored exactly.
pub const DIGEST_SUB_BUCKETS: usize = 32;

/// Total fixed bucket count of a [`QuantileDigest`]: 32 exact small-value
/// buckets plus 32 sub-buckets for each of the 59 octaves `2^5 .. 2^63`.
pub const DIGEST_BUCKETS: usize = DIGEST_SUB_BUCKETS + (64 - 5) * DIGEST_SUB_BUCKETS;

/// A monotonically increasing counter.
///
/// # Example
///
/// ```
/// use nimblock_obs::Counter;
/// let c = Counter::detached();
/// c.inc();
/// c.add(4);
/// assert_eq!(c.get(), 5);
/// ```
#[derive(Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Creates a counter not attached to any registry.
    pub fn detached() -> Self {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Returns the current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Adds `other`'s current value into this counter (shard merge).
    pub fn merge_from(&self, other: &Counter) {
        self.add(other.get());
    }
}

impl fmt::Debug for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Counter({})", self.get())
    }
}

/// A gauge: a signed value that can go up and down.
#[derive(Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Creates a gauge not attached to any registry.
    pub fn detached() -> Self {
        Gauge::default()
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, value: i64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Returns the current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Raises this gauge to `other`'s value if that is higher (shard
    /// merge). Gauges in this workspace are high-water marks (queue
    /// depths), so the cluster-wide value is the maximum over shards.
    pub fn merge_max(&self, other: &Gauge) {
        self.0.fetch_max(other.get(), Ordering::Relaxed);
    }
}

impl fmt::Debug for Gauge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Gauge({})", self.get())
    }
}

struct HistogramInner {
    /// `HISTOGRAM_FINITE_BUCKETS` finite buckets plus a trailing +Inf one.
    buckets: [AtomicU64; HISTOGRAM_FINITE_BUCKETS + 1],
    sum: AtomicU64,
    count: AtomicU64,
}

impl Default for HistogramInner {
    fn default() -> Self {
        HistogramInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

/// A histogram over non-negative integer observations (typically
/// microseconds of simulated time or nanoseconds of wall time) with fixed
/// log-scale (power-of-two) buckets.
///
/// Bucket `i` (upper bound `2^i`) counts observations `v` with
/// `prev < v <= 2^i`; zero and one land in bucket 0; anything above
/// `2^(N-1)` lands in the overflow bucket. Fixed buckets keep rendering
/// deterministic and the observe path allocation-free.
///
/// # Example
///
/// ```
/// use nimblock_obs::Histogram;
/// let h = Histogram::detached();
/// h.observe(1);
/// h.observe(3);
/// h.observe(80_000);
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.sum(), 80_004);
/// ```
#[derive(Clone, Default)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    /// Creates a histogram not attached to any registry.
    pub fn detached() -> Self {
        Histogram::default()
    }

    /// Returns the bucket index for `value`.
    #[inline]
    fn bucket_index(value: u64) -> usize {
        if value <= 1 {
            0
        } else {
            // Smallest i with value <= 2^i, i.e. ceil(log2(value)).
            let i = (64 - (value - 1).leading_zeros()) as usize;
            i.min(HISTOGRAM_FINITE_BUCKETS)
        }
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&self, value: u64) {
        self.0.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(value, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Returns the number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Returns the sum of all observations.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Returns the non-cumulative per-bucket counts (finite buckets first,
    /// the overflow bucket last).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.0
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Adds `other`'s buckets, sum, and count into this histogram (shard
    /// merge). Exact because both sides share the same fixed log2 buckets.
    pub fn merge_from(&self, other: &Histogram) {
        for (mine, theirs) in self.0.buckets.iter().zip(other.0.buckets.iter()) {
            mine.fetch_add(theirs.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.0.sum.fetch_add(other.sum(), Ordering::Relaxed);
        self.0.count.fetch_add(other.count(), Ordering::Relaxed);
    }

    /// Returns `(upper_bound, cumulative_count)` pairs; the overflow
    /// bucket's bound is `None` (rendered `+Inf`).
    pub fn cumulative(&self) -> Vec<(Option<u64>, u64)> {
        let mut running = 0;
        self.bucket_counts()
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                running += c;
                let bound = (i < HISTOGRAM_FINITE_BUCKETS).then(|| 1u64 << i);
                (bound, running)
            })
            .collect()
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Histogram(count={}, sum={})", self.count(), self.sum())
    }
}

struct DigestInner {
    /// `DIGEST_BUCKETS` fixed sub-logarithmic buckets; see
    /// [`QuantileDigest::bucket_index`].
    buckets: Box<[AtomicU64]>,
    sum: AtomicU64,
    count: AtomicU64,
}

impl Default for DigestInner {
    fn default() -> Self {
        DigestInner {
            buckets: (0..DIGEST_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

/// A fixed-memory streaming quantile sketch (HDR-histogram style) over
/// non-negative integer observations.
///
/// Values below [`DIGEST_SUB_BUCKETS`] are counted exactly; larger values
/// fall into one of 32 sub-buckets per power-of-two octave, bounding the
/// relative error of any reported quantile by `1/32 = 3.125%`. Memory is a
/// fixed [`DIGEST_BUCKETS`]-entry array (~15 KiB), independent of the
/// number of observations, and [`QuantileDigest::merge_from`] is exact
/// bucket-wise addition — so digests recorded on independent cluster
/// shards merge into the same sketch the single-threaded oracle produces.
///
/// Reported quantiles are always a bucket *upper bound*, making the output
/// deterministic: the same multiset of observations yields byte-identical
/// renderings regardless of arrival order or shard assignment.
///
/// # Example
///
/// ```
/// use nimblock_obs::QuantileDigest;
/// let d = QuantileDigest::detached();
/// for v in 1..=100 {
///     d.observe(v);
/// }
/// assert_eq!(d.quantile(0.5), 50);
/// assert_eq!(d.count(), 100);
/// ```
#[derive(Clone, Default)]
pub struct QuantileDigest(Arc<DigestInner>);

impl QuantileDigest {
    /// Creates a digest not attached to any registry.
    pub fn detached() -> Self {
        QuantileDigest::default()
    }

    /// Returns the bucket index for `value` in the digest's fixed
    /// bucketing scheme. Public so sparse per-window sketches (the
    /// time-series aggregator) can share the exact same buckets and
    /// therefore merge exactly with full digests.
    #[inline]
    pub fn bucket_index(value: u64) -> usize {
        if value < DIGEST_SUB_BUCKETS as u64 {
            value as usize
        } else {
            // Leading bit position (floor log2); >= 5 here.
            let exp = 63 - value.leading_zeros() as usize;
            // Top 5 bits below the leading bit select the sub-bucket.
            let sub = ((value >> (exp - 5)) as usize) & (DIGEST_SUB_BUCKETS - 1);
            DIGEST_SUB_BUCKETS + (exp - 5) * DIGEST_SUB_BUCKETS + sub
        }
    }

    /// Returns the largest value mapping to bucket `index` (the value the
    /// sketch reports for any quantile landing in that bucket).
    pub fn bucket_upper_bound(index: usize) -> u64 {
        if index < DIGEST_SUB_BUCKETS {
            index as u64
        } else {
            let exp = (index - DIGEST_SUB_BUCKETS) / DIGEST_SUB_BUCKETS + 5;
            let sub = ((index - DIGEST_SUB_BUCKETS) % DIGEST_SUB_BUCKETS) as u64;
            let step = 1u64 << (exp - 5);
            // Saturating keeps the topmost bucket (`2^64 - 1`) exact
            // without overflowing the intermediate.
            ((1u64 << exp) - 1).saturating_add((sub + 1) * step)
        }
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&self, value: u64) {
        self.0.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(value, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Returns the number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Returns the sum of all observations.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Returns the value at quantile `q` in `[0, 1]` — the upper bound of
    /// the bucket containing the observation of rank `ceil(q * count)`.
    /// Returns 0 for an empty digest. Within 3.125% of the true quantile.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut running = 0u64;
        for (i, bucket) in self.0.buckets.iter().enumerate() {
            running += bucket.load(Ordering::Relaxed);
            if running >= rank {
                return Self::bucket_upper_bound(i);
            }
        }
        Self::bucket_upper_bound(DIGEST_BUCKETS - 1)
    }

    /// Adds `other`'s buckets, sum, and count into this digest (shard
    /// merge). Exact because both sides share the same fixed buckets.
    pub fn merge_from(&self, other: &QuantileDigest) {
        for (mine, theirs) in self.0.buckets.iter().zip(other.0.buckets.iter()) {
            mine.fetch_add(theirs.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.0.sum.fetch_add(other.sum(), Ordering::Relaxed);
        self.0.count.fetch_add(other.count(), Ordering::Relaxed);
    }
}

impl fmt::Debug for QuantileDigest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "QuantileDigest(count={}, p50={}, p99={})",
            self.count(),
            self.quantile(0.5),
            self.quantile(0.99)
        )
    }
}

#[derive(Debug, Clone)]
enum Handle {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
    Digest(QuantileDigest),
}

impl Handle {
    fn kind(&self) -> &'static str {
        match self {
            Handle::Counter(_) => "counter",
            Handle::Gauge(_) => "gauge",
            Handle::Histogram(_) => "histogram",
            Handle::Digest(_) => "summary",
        }
    }
}

#[derive(Debug)]
struct Instrument {
    name: String,
    help: String,
    handle: Handle,
}

/// A named collection of instruments, renderable as Prometheus exposition
/// text or JSON.
///
/// Registries are cheap to clone (instruments are shared), so one registry
/// can be threaded through the hypervisor, scheduler, simulator, and CLI.
/// Registering the same name twice returns the *same* underlying
/// instrument, which is how independently instrumented components
/// aggregate into one time series.
///
/// # Example
///
/// ```
/// use nimblock_obs::Registry;
/// let registry = Registry::new();
/// let arrivals = registry.counter("hv_arrivals_total", "Applications admitted");
/// arrivals.add(3);
/// let text = registry.render_prometheus();
/// assert!(text.contains("hv_arrivals_total 3"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Registry {
    instruments: Arc<Mutex<Vec<Instrument>>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn register(&self, name: &str, help: &str, make: impl FnOnce() -> Handle) -> Handle {
        assert!(
            !name.is_empty()
                && name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
                && !name.starts_with(|c: char| c.is_ascii_digit()),
            "invalid metric name '{name}'"
        );
        let mut instruments = self.instruments.lock().expect("registry poisoned");
        if let Some(existing) = instruments.iter().find(|i| i.name == name) {
            let handle = existing.handle.clone();
            let made = make();
            assert_eq!(
                handle.kind(),
                made.kind(),
                "metric '{name}' registered as both {} and {}",
                handle.kind(),
                made.kind()
            );
            return handle;
        }
        let handle = make();
        instruments.push(Instrument {
            name: name.to_owned(),
            help: help.to_owned(),
            handle: handle.clone(),
        });
        handle
    }

    /// Registers (or retrieves) a counter. By Prometheus convention the
    /// name should end in `_total`.
    ///
    /// # Panics
    ///
    /// Panics on an invalid metric name or if `name` is already registered
    /// as a different instrument kind.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        match self.register(name, help, || Handle::Counter(Counter::detached())) {
            Handle::Counter(c) => c,
            _ => unreachable!("kind checked in register"),
        }
    }

    /// Registers (or retrieves) a gauge.
    ///
    /// # Panics
    ///
    /// Panics on an invalid metric name or a kind conflict.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        match self.register(name, help, || Handle::Gauge(Gauge::detached())) {
            Handle::Gauge(g) => g,
            _ => unreachable!("kind checked in register"),
        }
    }

    /// Registers (or retrieves) a histogram.
    ///
    /// # Panics
    ///
    /// Panics on an invalid metric name or a kind conflict.
    pub fn histogram(&self, name: &str, help: &str) -> Histogram {
        match self.register(name, help, || Handle::Histogram(Histogram::detached())) {
            Handle::Histogram(h) => h,
            _ => unreachable!("kind checked in register"),
        }
    }

    /// Registers (or retrieves) a [`QuantileDigest`], rendered as a
    /// Prometheus `summary` (P50/P95/P99 plus `_sum`/`_count`).
    ///
    /// # Panics
    ///
    /// Panics on an invalid metric name or a kind conflict.
    pub fn digest(&self, name: &str, help: &str) -> QuantileDigest {
        match self.register(name, help, || Handle::Digest(QuantileDigest::detached())) {
            Handle::Digest(d) => d,
            _ => unreachable!("kind checked in register"),
        }
    }

    /// Merges every instrument of `shard` into this registry, in `shard`'s
    /// registration order: counters add, histograms add bucket-wise, gauges
    /// take the maximum (high-water semantics). Instruments missing here
    /// are registered first with the shard's help text, so merging shards
    /// in a fixed order yields a fixed registration order — the basis of
    /// the cluster's deterministic metrics export.
    ///
    /// # Panics
    ///
    /// Panics if a shard instrument's name is already registered here as a
    /// different kind.
    pub fn merge_from(&self, shard: &Registry) {
        // Snapshot the shard first so merging a registry into itself (or
        // two clones of the same Arc) cannot deadlock.
        let shard_instruments: Vec<(String, String, Handle)> = {
            let instruments = shard.instruments.lock().expect("registry poisoned");
            instruments
                .iter()
                .map(|i| (i.name.clone(), i.help.clone(), i.handle.clone()))
                .collect()
        };
        for (name, help, handle) in shard_instruments {
            match handle {
                Handle::Counter(theirs) => self.counter(&name, &help).merge_from(&theirs),
                Handle::Gauge(theirs) => self.gauge(&name, &help).merge_max(&theirs),
                Handle::Histogram(theirs) => self.histogram(&name, &help).merge_from(&theirs),
                Handle::Digest(theirs) => self.digest(&name, &help).merge_from(&theirs),
            }
        }
    }

    /// Returns the number of registered instruments.
    pub fn len(&self) -> usize {
        self.instruments.lock().expect("registry poisoned").len()
    }

    /// Returns `true` if nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Renders every instrument in Prometheus exposition text format
    /// (`# HELP` / `# TYPE` comments, `_bucket`/`_sum`/`_count` series for
    /// histograms), in registration order. Empty histogram buckets are
    /// elided (except the mandatory `+Inf`) to keep the page readable.
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let instruments = self.instruments.lock().expect("registry poisoned");
        let mut out = String::new();
        for inst in instruments.iter() {
            let _ = writeln!(out, "# HELP {} {}", inst.name, inst.help);
            let _ = writeln!(out, "# TYPE {} {}", inst.name, inst.handle.kind());
            match &inst.handle {
                Handle::Counter(c) => {
                    let _ = writeln!(out, "{} {}", inst.name, c.get());
                }
                Handle::Gauge(g) => {
                    let _ = writeln!(out, "{} {}", inst.name, g.get());
                }
                Handle::Histogram(h) => {
                    let mut previous = 0;
                    for (bound, cumulative) in h.cumulative() {
                        match bound {
                            Some(le) => {
                                // Elide runs of empty buckets: emit a bucket
                                // when its cumulative count changed.
                                if cumulative != previous {
                                    let _ = writeln!(
                                        out,
                                        "{}_bucket{{le=\"{le}\"}} {cumulative}",
                                        inst.name
                                    );
                                }
                            }
                            None => {
                                let _ = writeln!(
                                    out,
                                    "{}_bucket{{le=\"+Inf\"}} {cumulative}",
                                    inst.name
                                );
                            }
                        }
                        previous = cumulative;
                    }
                    let _ = writeln!(out, "{}_sum {}", inst.name, h.sum());
                    let _ = writeln!(out, "{}_count {}", inst.name, h.count());
                }
                Handle::Digest(d) => {
                    for (label, q) in [("0.5", 0.5), ("0.95", 0.95), ("0.99", 0.99)] {
                        let _ = writeln!(
                            out,
                            "{}{{quantile=\"{label}\"}} {}",
                            inst.name,
                            d.quantile(q)
                        );
                    }
                    let _ = writeln!(out, "{}_sum {}", inst.name, d.sum());
                    let _ = writeln!(out, "{}_count {}", inst.name, d.count());
                }
            }
        }
        out
    }
}

impl ToJson for Registry {
    /// Snapshots every instrument as
    /// `[{"name", "help", "kind", ...value fields}]`, in registration
    /// order. Histograms carry `count`, `sum`, and non-empty
    /// `[le, count]` bucket pairs (`le` is `null` for +Inf).
    fn to_json(&self) -> Json {
        let instruments = self.instruments.lock().expect("registry poisoned");
        Json::Array(
            instruments
                .iter()
                .map(|inst| {
                    let mut pairs = vec![
                        ("name".to_owned(), Json::Str(inst.name.clone())),
                        ("help".to_owned(), Json::Str(inst.help.clone())),
                        ("kind".to_owned(), Json::Str(inst.handle.kind().to_owned())),
                    ];
                    match &inst.handle {
                        Handle::Counter(c) => pairs.push(("value".to_owned(), Json::U64(c.get()))),
                        Handle::Gauge(g) => {
                            let v = g.get();
                            pairs.push((
                                "value".to_owned(),
                                if v >= 0 { Json::U64(v as u64) } else { Json::I64(v) },
                            ));
                        }
                        Handle::Histogram(h) => {
                            pairs.push(("count".to_owned(), Json::U64(h.count())));
                            pairs.push(("sum".to_owned(), Json::U64(h.sum())));
                            let buckets: Vec<Json> = h
                                .bucket_counts()
                                .iter()
                                .enumerate()
                                .filter(|&(_, &c)| c > 0)
                                .map(|(i, &c)| {
                                    let le = if i < HISTOGRAM_FINITE_BUCKETS {
                                        Json::U64(1u64 << i)
                                    } else {
                                        Json::Null
                                    };
                                    Json::Array(vec![le, Json::U64(c)])
                                })
                                .collect();
                            pairs.push(("buckets".to_owned(), Json::Array(buckets)));
                        }
                        Handle::Digest(d) => {
                            pairs.push(("count".to_owned(), Json::U64(d.count())));
                            pairs.push(("sum".to_owned(), Json::U64(d.sum())));
                            pairs.push(("p50".to_owned(), Json::U64(d.quantile(0.5))));
                            pairs.push(("p95".to_owned(), Json::U64(d.quantile(0.95))));
                            pairs.push(("p99".to_owned(), Json::U64(d.quantile(0.99))));
                        }
                    }
                    Json::Object(pairs)
                })
                .collect(),
        )
    }
}

/// Validates a Prometheus exposition page: every non-comment line must be
/// `name[{labels}] value`, every `# TYPE` must precede its samples, and
/// histogram `_count` must equal the `+Inf` bucket. Used by the smoke
/// tests; returns the number of sample lines.
///
/// # Errors
///
/// Returns a description of the first malformed line.
pub fn validate_prometheus(text: &str) -> Result<usize, String> {
    let mut samples = 0;
    let mut inf_buckets: Vec<(String, u64)> = Vec::new();
    let mut counts: Vec<(String, u64)> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: no value in '{line}'", lineno + 1))?;
        let name = series.split('{').next().unwrap_or(series);
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        {
            return Err(format!("line {}: bad metric name '{name}'", lineno + 1));
        }
        let parsed: f64 = value
            .parse()
            .map_err(|_| format!("line {}: bad value '{value}'", lineno + 1))?;
        if let Some(base) = name.strip_suffix("_bucket") {
            if series.contains("le=\"+Inf\"") {
                inf_buckets.push((base.to_owned(), parsed as u64));
            }
        } else if let Some(base) = name.strip_suffix("_count") {
            counts.push((base.to_owned(), parsed as u64));
        }
        samples += 1;
    }
    for (base, count) in &counts {
        if let Some((_, inf)) = inf_buckets.iter().find(|(b, _)| b == base) {
            if inf != count {
                return Err(format!(
                    "histogram {base}: +Inf bucket {inf} != count {count}"
                ));
            }
        }
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_register_and_render() {
        let registry = Registry::new();
        let c = registry.counter("x_total", "xs seen");
        let g = registry.gauge("depth", "queue depth");
        c.add(2);
        g.set(-3);
        let text = registry.render_prometheus();
        assert!(text.contains("# TYPE x_total counter"), "{text}");
        assert!(text.contains("x_total 2"), "{text}");
        assert!(text.contains("depth -3"), "{text}");
        assert_eq!(validate_prometheus(&text).unwrap(), 2);
    }

    #[test]
    fn same_name_returns_same_instrument() {
        let registry = Registry::new();
        let a = registry.counter("shared_total", "a");
        let b = registry.counter("shared_total", "b");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        assert_eq!(registry.len(), 1);
    }

    #[test]
    #[should_panic(expected = "registered as both")]
    fn kind_conflict_panics() {
        let registry = Registry::new();
        let _ = registry.counter("dual", "a");
        let _ = registry.gauge("dual", "b");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn bad_name_panics() {
        let _ = Registry::new().counter("has space", "x");
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let h = Histogram::detached();
        for v in [0, 1, 2, 3, 4, 5, 1024, u64::MAX] {
            h.observe(v);
        }
        let buckets = h.bucket_counts();
        assert_eq!(buckets[0], 2); // 0, 1
        assert_eq!(buckets[1], 1); // 2
        assert_eq!(buckets[2], 2); // 3, 4
        assert_eq!(buckets[3], 1); // 5
        assert_eq!(buckets[10], 1); // 1024
        assert_eq!(buckets[HISTOGRAM_FINITE_BUCKETS], 1); // overflow
        assert_eq!(h.count(), 8);
    }

    #[test]
    fn histogram_renders_cumulative_and_validates() {
        let registry = Registry::new();
        let h = registry.histogram("lat_micros", "latencies");
        h.observe(1);
        h.observe(3);
        h.observe(3);
        let text = registry.render_prometheus();
        assert!(text.contains("lat_micros_bucket{le=\"1\"} 1"), "{text}");
        assert!(text.contains("lat_micros_bucket{le=\"4\"} 3"), "{text}");
        assert!(text.contains("lat_micros_bucket{le=\"+Inf\"} 3"), "{text}");
        assert!(text.contains("lat_micros_sum 7"), "{text}");
        assert!(text.contains("lat_micros_count 3"), "{text}");
        validate_prometheus(&text).unwrap();
    }

    #[test]
    fn validator_rejects_garbage() {
        assert!(validate_prometheus("no value here\n").is_err());
        assert!(validate_prometheus("name notanumber\n").is_err());
        assert!(validate_prometheus("ok 1\n").is_ok());
    }

    #[test]
    fn merge_adds_counters_and_histograms_and_maxes_gauges() {
        let target = Registry::new();
        target.counter("events_total", "events").add(5);
        target.gauge("depth_max", "high water").set(7);
        let shard = Registry::new();
        shard.counter("events_total", "events").add(3);
        shard.gauge("depth_max", "high water").set(4);
        let h = shard.histogram("lat_micros", "latency");
        h.observe(2);
        h.observe(100);
        target.merge_from(&shard);
        assert_eq!(target.counter("events_total", "").get(), 8);
        assert_eq!(target.gauge("depth_max", "").get(), 7, "max, not sum");
        let merged = target.histogram("lat_micros", "");
        assert_eq!(merged.count(), 2);
        assert_eq!(merged.sum(), 102);
        // A second shard with a higher gauge raises the high-water mark.
        let later = Registry::new();
        later.gauge("depth_max", "high water").set(11);
        target.merge_from(&later);
        assert_eq!(target.gauge("depth_max", "").get(), 11);
    }

    #[test]
    fn merge_order_fixes_registration_order() {
        let build_shard = |c: u64| {
            let shard = Registry::new();
            shard.counter("a_total", "a").add(c);
            shard.histogram("b_micros", "b").observe(c);
            shard.gauge("c_depth", "c").set(c as i64);
            shard
        };
        let merge = |shards: &[Registry]| {
            let target = Registry::new();
            for shard in shards {
                target.merge_from(shard);
            }
            target.render_prometheus()
        };
        // Byte-identical render no matter how shard *contents* were
        // produced, because merges happen in a fixed order.
        let a = merge(&[build_shard(1), build_shard(2)]);
        let b = merge(&[build_shard(1), build_shard(2)]);
        assert_eq!(a, b);
    }

    #[test]
    fn histogram_merge_is_bucket_exact() {
        let a = Histogram::detached();
        let b = Histogram::detached();
        let whole = Histogram::detached();
        for v in [0u64, 1, 3, 900, 70_000] {
            a.observe(v);
            whole.observe(v);
        }
        for v in [2u64, 5, 4096, u64::MAX] {
            b.observe(v);
            whole.observe(v);
        }
        let merged = Histogram::detached();
        merged.merge_from(&a);
        merged.merge_from(&b);
        assert_eq!(merged.bucket_counts(), whole.bucket_counts());
        assert_eq!(merged.sum(), whole.sum());
        assert_eq!(merged.count(), whole.count());
    }

    #[test]
    fn digest_is_exact_for_small_values() {
        let d = QuantileDigest::detached();
        for v in 0..32u64 {
            d.observe(v);
        }
        assert_eq!(d.quantile(0.0), 0);
        assert_eq!(d.quantile(0.5), 15);
        assert_eq!(d.quantile(1.0), 31);
        assert_eq!(d.sum(), (0..32).sum::<u64>());
    }

    #[test]
    fn digest_relative_error_is_bounded() {
        let d = QuantileDigest::detached();
        for v in 1..=100_000u64 {
            d.observe(v);
        }
        for q in [0.5f64, 0.9, 0.95, 0.99, 0.999] {
            let exact = (q * 100_000.0).ceil() as u64;
            let got = d.quantile(q);
            assert!(
                got >= exact,
                "q={q}: reported {got} below exact {exact} (upper bound broken)"
            );
            let err = (got - exact) as f64 / exact as f64;
            assert!(err <= 1.0 / 32.0, "q={q}: relative error {err} > 1/32");
        }
    }

    #[test]
    fn digest_merge_matches_whole() {
        let a = QuantileDigest::detached();
        let b = QuantileDigest::detached();
        let whole = QuantileDigest::detached();
        for v in [0u64, 7, 31, 32, 1_000, 80_000, u64::MAX] {
            a.observe(v);
            whole.observe(v);
        }
        for v in [5u64, 64, 12_345, 1 << 40] {
            b.observe(v);
            whole.observe(v);
        }
        let merged = QuantileDigest::detached();
        merged.merge_from(&a);
        merged.merge_from(&b);
        assert_eq!(merged.count(), whole.count());
        assert_eq!(merged.sum(), whole.sum());
        for q in [0.1, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(merged.quantile(q), whole.quantile(q), "q={q}");
        }
    }

    #[test]
    fn digest_renders_summary_and_validates() {
        let registry = Registry::new();
        let d = registry.digest("resp_micros", "response times");
        for v in 1..=1000u64 {
            d.observe(v);
        }
        let text = registry.render_prometheus();
        assert!(text.contains("# TYPE resp_micros summary"), "{text}");
        assert!(text.contains("resp_micros{quantile=\"0.5\"}"), "{text}");
        assert!(text.contains("resp_micros{quantile=\"0.99\"}"), "{text}");
        assert!(text.contains("resp_micros_count 1000"), "{text}");
        validate_prometheus(&text).unwrap();
        // Merge into a fresh registry reproduces the page byte-for-byte.
        let target = Registry::new();
        target.merge_from(&registry);
        assert_eq!(target.render_prometheus(), text);
    }

    #[test]
    fn json_snapshot_has_every_instrument() {
        let registry = Registry::new();
        registry.counter("a_total", "").add(1);
        registry.gauge("b", "").set(2);
        registry.histogram("c", "").observe(9);
        let json = registry.to_json();
        let items = json.as_array().unwrap();
        assert_eq!(items.len(), 3);
        assert_eq!(items[0].get("value").unwrap().as_u64(), Some(1));
        assert_eq!(items[2].get("count").unwrap().as_u64(), Some(1));
        // Encodes without panicking and parses back.
        let text = nimblock_ser::to_string_pretty(&registry);
        nimblock_ser::parse(&text).unwrap();
    }
}
