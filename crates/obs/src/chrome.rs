//! Chrome trace-event JSON builder.
//!
//! Produces the "JSON Array Format with metadata" flavour of the Trace
//! Event Format — the object with a `traceEvents` array — which loads
//! directly in Perfetto (<https://ui.perfetto.dev>) and the legacy
//! `chrome://tracing` viewer.
//!
//! Only the event phases the schedule export needs are modelled:
//!
//! - `ph:"X"` *complete* events (a named span with `ts` + `dur`),
//! - `ph:"i"` *instant* events (a point marker),
//! - `ph:"M"` *metadata* events (used for `thread_name`, so slot tracks
//!   render as `slot#0`, `slot#1`, … and the reconfiguration port as
//!   `CAP`),
//! - `ph:"s"` / `ph:"f"` *flow* events (an arrow between two slices on
//!   different tracks — used to tie each CAP reconfiguration to the
//!   task execution it enables; the finish end binds to the enclosing
//!   slice via `bp:"e"`),
//! - `ph:"C"` *counter* events (a sampled numeric series — Perfetto
//!   renders each as a stepped area chart; used for the per-window
//!   queue-depth and slot-utilization lanes next to the slot tracks).
//!
//! All timestamps and durations are microseconds, matching the format's
//! native unit and the simulator's `SimTime` resolution, so conversion
//! is lossless.

use nimblock_ser::{Json, ToJson};

/// One trace event, pre-sorted into the builder's emission order.
#[derive(Debug, Clone)]
struct Event {
    name: String,
    cat: String,
    phase: char,
    tid: u64,
    ts: u64,
    dur: Option<u64>,
    /// Flow id tying a `ph:"s"` start to its `ph:"f"` finish.
    id: Option<u64>,
    args: Vec<(String, Json)>,
}

impl Event {
    fn to_json(&self) -> Json {
        let mut fields: Vec<(String, Json)> = vec![
            ("name".into(), Json::Str(self.name.clone())),
            ("cat".into(), Json::Str(self.cat.clone())),
            ("ph".into(), Json::Str(self.phase.to_string())),
            ("pid".into(), Json::U64(1)),
            ("tid".into(), Json::U64(self.tid)),
            ("ts".into(), Json::U64(self.ts)),
        ];
        if let Some(dur) = self.dur {
            fields.push(("dur".into(), Json::U64(dur)));
        }
        if let Some(id) = self.id {
            fields.push(("id".into(), Json::U64(id)));
        }
        if self.phase == 'i' {
            // Instant scope: thread-scoped, so the marker renders on its
            // own track instead of a full-height line.
            fields.push(("s".into(), Json::Str("t".into())));
        }
        if self.phase == 'f' {
            // Bind the arrow head to the slice *enclosing* the finish
            // timestamp (the enabled task's slice), not the next slice.
            fields.push(("bp".into(), Json::Str("e".into())));
        }
        if !self.args.is_empty() {
            fields.push(("args".into(), Json::Object(self.args.clone())));
        }
        Json::Object(fields)
    }

    /// Same-timestamp ordering rank: slices and markers first, then flow
    /// starts (which bind to the slice already emitted), then flow
    /// finishes. Keeps the export deterministic and viewers happy.
    fn phase_rank(&self) -> u8 {
        match self.phase {
            's' => 1,
            'f' => 2,
            _ => 0,
        }
    }
}

/// Builder for a Chrome trace-event file.
///
/// ```
/// use nimblock_obs::ChromeTrace;
/// let mut t = ChromeTrace::new();
/// t.thread_name(0, "slot#0");
/// t.complete("app#1", "run", 0, 1_000, 5_000);
/// t.instant("preempt app#1", "preempt", 0, 6_000);
/// let json = t.render();
/// assert!(json.contains("\"traceEvents\""));
/// ```
#[derive(Debug, Clone, Default)]
pub struct ChromeTrace {
    metadata: Vec<Event>,
    events: Vec<Event>,
}

impl ChromeTrace {
    /// An empty trace.
    pub fn new() -> ChromeTrace {
        ChromeTrace::default()
    }

    /// Names track `tid` (a `ph:"M"` `thread_name` metadata event).
    /// Also sets `thread_sort_index` so viewers keep tracks in `tid`
    /// order rather than first-event order.
    pub fn thread_name(&mut self, tid: u64, name: &str) {
        self.metadata.push(Event {
            name: "thread_name".into(),
            cat: "__metadata".into(),
            phase: 'M',
            tid,
            ts: 0,
            dur: None,
            id: None,
            args: vec![("name".into(), Json::Str(name.into()))],
        });
        self.metadata.push(Event {
            name: "thread_sort_index".into(),
            cat: "__metadata".into(),
            phase: 'M',
            tid,
            ts: 0,
            dur: None,
            id: None,
            args: vec![("sort_index".into(), Json::U64(tid))],
        });
    }

    /// Adds a complete (`ph:"X"`) span on track `tid`, `[ts_us, ts_us+dur_us)`.
    pub fn complete(&mut self, name: &str, cat: &str, tid: u64, ts_us: u64, dur_us: u64) {
        self.complete_with_args(name, cat, tid, ts_us, dur_us, Vec::new());
    }

    /// [`ChromeTrace::complete`] with extra `args` key/value detail shown
    /// in the viewer's selection panel.
    pub fn complete_with_args(
        &mut self,
        name: &str,
        cat: &str,
        tid: u64,
        ts_us: u64,
        dur_us: u64,
        args: Vec<(String, Json)>,
    ) {
        // The Chrome trace buffer is the artifact of an opt-in tracing
        // run; exporters need it complete, and growth is amortized.
        // nimblock: allow(hot-path-no-alloc)
        self.events.push(Event {
            name: name.into(),
            cat: cat.into(),
            phase: 'X',
            tid,
            ts: ts_us,
            // chrome://tracing drops zero-duration complete events;
            // clamp to 1 µs so instantaneous spans stay visible.
            dur: Some(dur_us.max(1)),
            id: None,
            args,
        });
    }

    /// Adds a thread-scoped instant (`ph:"i"`) marker on track `tid`.
    pub fn instant(&mut self, name: &str, cat: &str, tid: u64, ts_us: u64) {
        self.events.push(Event {
            name: name.into(),
            cat: cat.into(),
            phase: 'i',
            tid,
            ts: ts_us,
            dur: None,
            id: None,
            args: Vec::new(),
        });
    }

    /// Starts a flow (`ph:"s"`) with identifier `id` on track `tid`. The
    /// arrow tail binds to the slice enclosing `ts_us` on that track.
    pub fn flow_start(&mut self, name: &str, cat: &str, tid: u64, ts_us: u64, id: u64) {
        self.events.push(Event {
            name: name.into(),
            cat: cat.into(),
            phase: 's',
            tid,
            ts: ts_us,
            dur: None,
            id: Some(id),
            args: Vec::new(),
        });
    }

    /// Finishes flow `id` (`ph:"f"`, `bp:"e"`) on track `tid`: the arrow
    /// head binds to the slice enclosing `ts_us`.
    pub fn flow_finish(&mut self, name: &str, cat: &str, tid: u64, ts_us: u64, id: u64) {
        self.events.push(Event {
            name: name.into(),
            cat: cat.into(),
            phase: 'f',
            tid,
            ts: ts_us,
            dur: None,
            id: Some(id),
            args: Vec::new(),
        });
    }

    /// Samples counter series `name` at `ts_us` (`ph:"C"`). Each key in
    /// `series` becomes one stacked series of the counter track; viewers
    /// step-interpolate between samples, so emit one sample per tumbling
    /// window to draw the windowed time-series as lanes.
    pub fn counter(&mut self, name: &str, cat: &str, tid: u64, ts_us: u64, series: &[(&str, u64)]) {
        self.events.push(Event {
            name: name.into(),
            cat: cat.into(),
            phase: 'C',
            tid,
            ts: ts_us,
            dur: None,
            id: None,
            args: series.iter().map(|&(k, v)| (k.to_owned(), Json::U64(v))).collect(),
        });
    }

    /// Number of non-metadata events recorded so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no non-metadata events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    fn to_json_value(&self) -> Json {
        // Metadata first, then events sorted (ts, phase rank, tid) so
        // output is deterministic, viewers never see out-of-order
        // timestamps, and a flow start follows the slice it binds to.
        let mut sorted: Vec<&Event> = self.events.iter().collect();
        sorted.sort_by_key(|e| (e.ts, e.phase_rank(), e.tid));
        let all: Vec<Json> = self
            .metadata
            .iter()
            .chain(sorted.into_iter())
            .map(Event::to_json)
            .collect();
        Json::Object(vec![
            ("traceEvents".into(), Json::Array(all)),
            ("displayTimeUnit".into(), Json::Str("ms".into())),
        ])
    }

    /// Renders the pretty-printed trace file contents.
    pub fn render(&self) -> String {
        nimblock_ser::to_string_pretty(&self.to_json_value())
    }
}

impl ToJson for ChromeTrace {
    fn to_json(&self) -> Json {
        self.to_json_value()
    }
}

/// Structural validation for a rendered Chrome trace: parses the JSON,
/// checks the `traceEvents` envelope, and verifies every event carries
/// the mandatory `name`/`ph`/`pid`/`tid`/`ts` fields (plus `dur` for
/// `ph:"X"`). Returns the number of events on success.
pub fn validate_chrome_trace(text: &str) -> Result<usize, String> {
    let json = nimblock_ser::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let Json::Object(fields) = &json else {
        return Err("top level is not an object".into());
    };
    let events = fields
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .map(|(_, v)| v)
        .ok_or("missing traceEvents key")?;
    let Json::Array(events) = events else {
        return Err("traceEvents is not an array".into());
    };
    for (i, ev) in events.iter().enumerate() {
        let Json::Object(f) = ev else {
            return Err(format!("event {i} is not an object"));
        };
        let get = |key: &str| f.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        for key in ["name", "ph", "pid", "tid", "ts"] {
            if get(key).is_none() {
                return Err(format!("event {i} missing {key:?}"));
            }
        }
        let Some(Json::Str(ph)) = get("ph") else {
            return Err(format!("event {i}: ph is not a string"));
        };
        match ph.as_str() {
            "X" => {
                if get("dur").is_none() {
                    return Err(format!("event {i}: complete event missing dur"));
                }
            }
            "s" | "f" => {
                if get("id").is_none() {
                    return Err(format!("event {i}: flow event missing id"));
                }
            }
            "C" => {
                if get("args").is_none() {
                    return Err(format!("event {i}: counter event missing args"));
                }
            }
            "i" | "M" => {}
            other => return Err(format!("event {i}: unexpected phase {other:?}")),
        }
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_emits_valid_trace() {
        let mut t = ChromeTrace::new();
        t.thread_name(0, "slot#0");
        t.thread_name(100, "CAP");
        t.complete("app#1", "run", 0, 1_000, 5_000);
        t.complete_with_args(
            "reconfig slot#0 -> app#1",
            "reconfig",
            100,
            0,
            1_000,
            vec![("slot".into(), Json::Str("slot#0".into()))],
        );
        t.instant("preempt app#1", "preempt", 0, 6_000);
        assert_eq!(t.len(), 3);
        let text = t.render();
        // 3 events + 4 metadata (name + sort_index per track).
        assert_eq!(validate_chrome_trace(&text).unwrap(), 7);
        assert!(text.contains("\"displayTimeUnit\": \"ms\""));
        assert!(text.contains("\"slot#0\""));
        assert!(text.contains("\"CAP\""));
    }

    #[test]
    fn events_are_sorted_by_timestamp() {
        let mut t = ChromeTrace::new();
        t.complete("late", "run", 0, 9_000, 100);
        t.complete("early", "run", 0, 1_000, 100);
        let text = t.render();
        let late = text.find("\"late\"").unwrap();
        let early = text.find("\"early\"").unwrap();
        assert!(early < late, "events must be emitted in ts order");
    }

    #[test]
    fn zero_duration_spans_are_clamped_visible() {
        let mut t = ChromeTrace::new();
        t.complete("blink", "run", 0, 0, 0);
        assert!(t.render().contains("\"dur\": 1"));
    }

    #[test]
    fn flow_events_render_with_id_and_binding_point() {
        let mut t = ChromeTrace::new();
        t.complete("pr app#0 task#0", "reconfig", 2, 0, 80_000);
        t.complete("app#0 task#0", "run", 0, 80_000, 50_000);
        t.flow_start("enables", "flow", 2, 79_999, 7);
        t.flow_finish("enables", "flow", 0, 80_000, 7);
        let text = t.render();
        assert!(text.contains("\"ph\": \"s\""), "{text}");
        assert!(text.contains("\"ph\": \"f\""), "{text}");
        assert!(text.contains("\"id\": 7"), "{text}");
        assert!(text.contains("\"bp\": \"e\""), "{text}");
        assert_eq!(validate_chrome_trace(&text).unwrap(), 4);
        // At the shared timestamp the slice precedes the flow finish.
        let slice = text.find("\"cat\": \"run\"").unwrap();
        let finish = text.find("\"ph\": \"f\"").unwrap();
        assert!(slice < finish, "{text}");
    }

    #[test]
    fn counter_events_render_and_validate() {
        let mut t = ChromeTrace::new();
        t.thread_name(5, "queue depth");
        t.counter("queue depth", "monitor", 5, 0, &[("tasks", 3)]);
        t.counter("queue depth", "monitor", 5, 10_000, &[("tasks", 0)]);
        t.counter("utilization", "monitor", 6, 0, &[("permille", 875)]);
        let text = t.render();
        assert!(text.contains("\"ph\": \"C\""), "{text}");
        assert!(text.contains("\"tasks\": 3"), "{text}");
        // 3 counters + 2 metadata events.
        assert_eq!(validate_chrome_trace(&text).unwrap(), 5);
    }

    #[test]
    fn validator_requires_counter_args() {
        let bad = r#"{"traceEvents":[{"name":"q","cat":"c","ph":"C","pid":1,"tid":0,"ts":0}]}"#;
        assert!(validate_chrome_trace(bad).unwrap_err().contains("args"));
    }

    #[test]
    fn validator_requires_flow_id() {
        let bad = r#"{"traceEvents":[{"name":"x","cat":"c","ph":"s","pid":1,"tid":0,"ts":0}]}"#;
        assert!(validate_chrome_trace(bad).unwrap_err().contains("id"));
    }

    #[test]
    fn validator_rejects_malformed_traces() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\": 3}").is_err());
        // Complete event without dur.
        let bad = r#"{"traceEvents":[{"name":"x","cat":"c","ph":"X","pid":1,"tid":0,"ts":0}]}"#;
        assert!(validate_chrome_trace(bad).unwrap_err().contains("dur"));
    }
}
