//! # nimblock-obs — zero-dependency observability layer
//!
//! The telemetry substrate for the Nimblock repro (paper §5 evaluation):
//! every later scaling or perf PR reports through this crate.
//!
//! Four pieces, all dependency-free (only `nimblock-ser` for JSON):
//!
//! - **[`registry`]** — a [`Registry`] of named [`Counter`]s,
//!   [`Gauge`]s, and log₂-bucketed [`Histogram`]s. Handles are cheap
//!   `Arc`-atomic clones; instruments created with
//!   [`Counter::detached`] & co. record identically without any
//!   registry, so instrumented code pays the same (near-zero) cost
//!   whether or not metrics are being collected. Snapshots render as
//!   Prometheus exposition text ([`Registry::render_prometheus`]) or
//!   JSON (`ToJson`).
//! - **[`log`]** — a leveled, structured logging facade controlled by
//!   `NIMBLOCK_LOG` (`debug`, or `hv=debug,sched.nimblock=trace`) with
//!   scoped targets (`hv`, `sched.*`, `cap`, `sim`, `cluster`, `faas`),
//!   a one-atomic-load disabled path, and a test-capturable sink
//!   ([`capture`]).
//! - **[`chrome`]** — a [`ChromeTrace`] builder emitting trace-event
//!   JSON loadable in Perfetto / `chrome://tracing`, one track per slot
//!   plus a CAP (reconfiguration port) track.
//! - **[`gantt`]** — a generic ASCII Gantt renderer for terminal
//!   debugging ([`render_gantt`]).
//! - **[`spans`]** — Dapper-style [`Span`] trees (app → batch item →
//!   task with reconfig/preempt/requeue children and causal links), the
//!   data model behind `nimblock analyze explain`, plus the bounded
//!   [`SpanBuffer`] required in span-recording hot paths.
//! - **[`timeseries`]** — continuous observability: the fixed-memory
//!   virtual-time tumbling-window aggregator ([`MonitorState`]), the
//!   [`FlightRecorder`] post-mortem ring, and the [`SloEngine`] rules
//!   engine behind `--timeseries-out` / `analyze monitor`.
//! - **[`record`]** — compact record/replay traces: a delta/varint
//!   binary format capturing every offered invocation of a
//!   production-scale run ([`TraceWriter`], zero-copy [`TraceReader`]),
//!   the substrate of the `analyze plan` capacity planner.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod gantt;
pub mod log;
pub mod record;
pub mod registry;
pub mod spans;
pub mod timeseries;

pub use chrome::{validate_chrome_trace, ChromeTrace};
pub use gantt::{render_gantt, GanttRow, GanttSpan};
pub use log::{capture, log_emit, log_enabled, set_filter, CaptureGuard, Level};
pub use registry::{
    validate_prometheus, Counter, Gauge, Histogram, QuantileDigest, Registry, DIGEST_BUCKETS,
    DIGEST_SUB_BUCKETS, HISTOGRAM_FINITE_BUCKETS,
};
pub use record::{
    TraceFunction, TraceHeader, TraceReader, TraceRecord, TraceSummary, TraceVerdict, TraceWriter,
};
pub use spans::{format_micros, Span, SpanBuffer, SpanKind};
pub use timeseries::{
    parse_rules, Alert, FlightRecorder, MonitorConfig, MonitorDoc, MonitorHandle, MonitorState,
    RecorderEntry, SloEngine, SloRule, SparseSketch, Window, DEFAULT_WINDOW_MICROS,
};
