//! Span trees: the hierarchical time model behind response-time
//! attribution.
//!
//! A [`Span`] is a named `[start_us, end_us)` interval with children and
//! causal links, Dapper-style: an application span owns batch-item spans,
//! batch-item spans own task spans, and tasks own reconfig / preempt /
//! requeue child spans. `nimblock-core::attribution` derives these trees
//! from a recorded `Trace`; this module only defines the data model, a
//! bounded [`SpanBuffer`] for span-recording hot paths, and the indented
//! text renderer used by `nimblock analyze explain`.
//!
//! Spans on the critical path (the chain of intervals that actually
//! determined when the application retired) are flagged `critical` and
//! rendered with a `*` marker.

use std::fmt;

use nimblock_ser::{Json, ToJson};

/// What a [`Span`] represents in the scheduling hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// Whole-application span: arrival to retire.
    App,
    /// One batch item (a pipeline stage instance) of a task.
    BatchItem,
    /// One task (kernel) of an application.
    Task,
    /// A CAP reconfiguration serving this application.
    Reconfig,
    /// Time lost to a preemption (preempt event to re-admission).
    Preempt,
    /// Time spent requeued and waiting after losing a slot.
    Requeue,
    /// Initial queue wait before first launch.
    Queue,
}

impl SpanKind {
    /// Stable lowercase label used in renderings and JSON.
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::App => "app",
            SpanKind::BatchItem => "item",
            SpanKind::Task => "task",
            SpanKind::Reconfig => "reconfig",
            SpanKind::Preempt => "preempt",
            SpanKind::Requeue => "requeue",
            SpanKind::Queue => "queue",
        }
    }
}

impl fmt::Display for SpanKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One node of a span tree: a named half-open interval
/// `[start_us, end_us)` in simulated microseconds, with child spans and
/// causal links to the events that *enabled* it (e.g. the CAP
/// reconfiguration a task start waited on, or the blocking predecessor
/// task in the application DAG).
#[derive(Debug, Clone)]
pub struct Span {
    /// Human-readable name, e.g. `app17`, `task2`, `reconfig slot1`.
    pub name: String,
    /// Position in the scheduling hierarchy.
    pub kind: SpanKind,
    /// Start, simulated microseconds.
    pub start_us: u64,
    /// End, simulated microseconds (`>= start_us`).
    pub end_us: u64,
    /// `true` if this span lies on the app's critical path.
    pub critical: bool,
    /// Causal links: names of spans/resources that gated this one
    /// (`cap`, `pred:taskN`, ...).
    pub links: Vec<String>,
    /// Child spans, ordered by `start_us`.
    pub children: Vec<Span>,
}

impl Span {
    /// Creates a leaf span.
    pub fn new(name: impl Into<String>, kind: SpanKind, start_us: u64, end_us: u64) -> Self {
        Span {
            name: name.into(),
            kind,
            start_us,
            end_us,
            critical: false,
            links: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Span length in microseconds.
    pub fn duration_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }

    /// Total node count of this subtree (including `self`).
    pub fn node_count(&self) -> usize {
        1 + self.children.iter().map(Span::node_count).sum::<usize>()
    }

    /// Renders this subtree as an indented text block, two spaces per
    /// level, `*`-marking critical-path spans:
    ///
    /// ```text
    /// * app app17 [0 .. 400000] 400.0ms
    ///     queue wait [0 .. 80000] 80.0ms
    ///   * task task0 [80000 .. 400000] 320.0ms <- cap
    /// ```
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        use std::fmt::Write as _;
        let marker = if self.critical { "*" } else { " " };
        let links = if self.links.is_empty() {
            String::new()
        } else {
            format!(" <- {}", self.links.join(", "))
        };
        let _ = writeln!(
            out,
            "{}{} {} {} [{} .. {}] {}{}",
            "  ".repeat(depth),
            marker,
            self.kind,
            self.name,
            self.start_us,
            self.end_us,
            format_micros(self.duration_us()),
            links,
        );
        for child in &self.children {
            child.render_into(out, depth + 1);
        }
    }
}

impl ToJson for Span {
    fn to_json(&self) -> Json {
        Json::Object(vec![
            ("name".to_owned(), Json::Str(self.name.clone())),
            ("kind".to_owned(), Json::Str(self.kind.label().to_owned())),
            ("start_us".to_owned(), Json::U64(self.start_us)),
            ("end_us".to_owned(), Json::U64(self.end_us)),
            ("critical".to_owned(), Json::Bool(self.critical)),
            (
                "links".to_owned(),
                Json::Array(self.links.iter().cloned().map(Json::Str).collect()),
            ),
            (
                "children".to_owned(),
                Json::Array(self.children.iter().map(ToJson::to_json).collect()),
            ),
        ])
    }
}

/// Formats microseconds as a human-readable duration (`80.0ms`, `1.500s`).
pub fn format_micros(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{}.{:03}s", us / 1_000_000, (us % 1_000_000) / 1_000)
    } else if us >= 1_000 {
        format!("{}.{}ms", us / 1_000, (us % 1_000) / 100)
    } else {
        format!("{us}us")
    }
}

/// A bounded span buffer for recording hot paths.
///
/// Span recording must never grow without bound inside the scheduling
/// loop (that would trade scheduler latency for observability — the
/// wrong direction), so this buffer has a hard capacity fixed at
/// construction: pushes beyond it are counted in
/// [`SpanBuffer::dropped`] instead of stored. The repo lint rule
/// `no-unbounded-span-buffer` enforces that span hot paths go through
/// this type (or explicitly justify why not).
#[derive(Debug, Clone)]
pub struct SpanBuffer {
    spans: Vec<Span>,
    capacity: usize,
    dropped: u64,
}

impl SpanBuffer {
    /// Creates a buffer holding at most `capacity` spans.
    pub fn with_capacity(capacity: usize) -> Self {
        SpanBuffer {
            spans: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Appends `span` if the buffer has room; otherwise counts it as
    /// dropped. Returns `true` if stored.
    pub fn push(&mut self, span: Span) -> bool {
        if self.spans.len() < self.capacity {
            // Bounded by the capacity check above.
            self.spans.push(span);
            true
        } else {
            self.dropped += 1;
            false
        }
    }

    /// Stored spans, in push order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Number of stored spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// `true` if nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Maximum number of spans this buffer will store.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of spans rejected because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Consumes the buffer, returning the stored spans.
    pub fn into_spans(self) -> Vec<Span> {
        self.spans
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_marks_critical_and_indents_children() {
        let mut app = Span::new("app17", SpanKind::App, 0, 400_000);
        app.critical = true;
        let mut task = Span::new("task0", SpanKind::Task, 80_000, 400_000);
        task.critical = true;
        task.links.push("cap".to_owned());
        app.children.push(Span::new("wait", SpanKind::Queue, 0, 80_000));
        app.children.push(task);
        let text = app.render();
        assert!(text.contains("* app app17 [0 .. 400000] 400.0ms"), "{text}");
        assert!(text.contains("  * task task0"), "{text}");
        assert!(text.contains("<- cap"), "{text}");
        assert!(text.contains("  queue wait"), "{text}");
        assert_eq!(app.node_count(), 3);
    }

    #[test]
    fn span_buffer_is_bounded() {
        let mut buffer = SpanBuffer::with_capacity(2);
        assert!(buffer.push(Span::new("a", SpanKind::Task, 0, 1)));
        assert!(buffer.push(Span::new("b", SpanKind::Task, 1, 2)));
        assert!(!buffer.push(Span::new("c", SpanKind::Task, 2, 3)));
        assert_eq!(buffer.len(), 2);
        assert_eq!(buffer.dropped(), 1);
        assert_eq!(buffer.capacity(), 2);
    }

    #[test]
    fn span_json_roundtrips() {
        let mut span = Span::new("app0", SpanKind::App, 10, 20);
        span.children.push(Span::new("t", SpanKind::Task, 12, 20));
        let text = nimblock_ser::to_string_pretty(&span);
        let parsed = nimblock_ser::parse(&text).unwrap();
        assert_eq!(parsed.get("kind").unwrap().as_str(), Some("app"));
        assert_eq!(
            parsed.get("children").unwrap().as_array().unwrap().len(),
            1
        );
    }

    #[test]
    fn format_micros_scales_units() {
        assert_eq!(format_micros(999), "999us");
        assert_eq!(format_micros(80_000), "80.0ms");
        assert_eq!(format_micros(1_500_000), "1.500s");
    }
}
