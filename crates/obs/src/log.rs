//! Leveled, structured logging facade.
//!
//! Zero-dependency stand-in for the `log`/`tracing` ecosystem, tuned for
//! the hypervisor's needs:
//!
//! - **Env control**: `NIMBLOCK_LOG=debug` enables everything at debug,
//!   `NIMBLOCK_LOG=hv=debug,sched=info` filters per target with
//!   longest-prefix matching (so `sched.nimblock` inherits `sched`).
//! - **Scoped targets**: conventionally `hv`, `sched.nimblock`,
//!   `sched.prema`, `cap`, `sim`, `cluster`, `faas`.
//! - **Cheap when off**: the hot-path gate is a single relaxed atomic
//!   load against the maximum enabled level; the per-target filter only
//!   runs once that coarse gate passes.
//! - **Test-capturable**: [`capture`] swaps the sink for an in-memory
//!   buffer and serialises concurrent tests on a global mutex.
//!
//! Lines render in a logfmt-ish shape:
//!
//! ```text
//! level=debug target=hv msg="admitted app" app=app#3 slot=slot#1
//! ```

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Severity, ordered from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    /// Unrecoverable or invariant-violating conditions.
    Error = 1,
    /// Suspicious but survivable conditions.
    Warn = 2,
    /// High-level lifecycle events.
    Info = 3,
    /// Per-decision detail (scheduler picks, reconfig enactment).
    Debug = 4,
    /// Per-event firehose (queue operations, tick internals).
    Trace = 5,
}

impl Level {
    /// Lower-case name as rendered in log lines and accepted by filters.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            "off" | "none" => None,
            _ => None,
        }
    }
}

/// One directive in a filter spec: an optional target prefix and a level.
#[derive(Debug, Clone)]
struct Directive {
    /// Empty string matches every target.
    target: String,
    level: Option<Level>,
}

/// Parsed `NIMBLOCK_LOG` filter.
#[derive(Debug, Clone)]
struct Filter {
    directives: Vec<Directive>,
    /// Fallback for targets no directive matches.
    default: Option<Level>,
}

impl Filter {
    /// The default filter when `NIMBLOCK_LOG` is unset: warnings and up.
    fn default_filter() -> Filter {
        Filter { directives: Vec::new(), default: Some(Level::Warn) }
    }

    /// Parses `"debug"` or `"hv=debug,sched=info"` style specs.
    ///
    /// A bare level sets the default for every target; `target=level`
    /// pairs add per-target overrides. Unknown levels are ignored
    /// (treated as absent) rather than erroring, so a typo degrades to
    /// the default instead of panicking a run.
    fn parse(spec: &str) -> Filter {
        let mut filter = Filter { directives: Vec::new(), default: Some(Level::Warn) };
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            match part.split_once('=') {
                Some((target, level)) => filter.directives.push(Directive {
                    target: target.trim().to_string(),
                    level: Level::parse(level),
                }),
                None => {
                    if let Some(level) = Level::parse(part) {
                        filter.default = Some(level);
                    } else if matches!(part.to_ascii_lowercase().as_str(), "off" | "none") {
                        filter.default = None;
                    }
                }
            }
        }
        filter
    }

    /// Longest-prefix match: `sched.nimblock` matches a `sched`
    /// directive unless a more specific `sched.nimblock` one exists.
    fn level_for(&self, target: &str) -> Option<Level> {
        let mut best: Option<(&Directive, usize)> = None;
        for d in &self.directives {
            let matches = d.target.is_empty()
                || target == d.target
                || (target.starts_with(&d.target)
                    && target.as_bytes().get(d.target.len()) == Some(&b'.'));
            if matches {
                let len = d.target.len();
                if best.map(|(_, l)| len >= l).unwrap_or(true) {
                    best = Some((d, len));
                }
            }
        }
        match best {
            Some((d, _)) => d.level,
            None => self.default,
        }
    }

    /// The most verbose level any directive (or the default) enables —
    /// used as the fast coarse gate.
    fn max_level(&self) -> u8 {
        let mut max = self.default.map(|l| l as u8).unwrap_or(0);
        for d in &self.directives {
            if let Some(l) = d.level {
                max = max.max(l as u8);
            }
        }
        max
    }
}

/// Where emitted lines go.
enum Sink {
    /// Default: one line per record on stderr.
    Stderr,
    /// Test mode: lines accumulate in memory.
    Capture(Vec<String>),
}

struct LogState {
    filter: Filter,
    sink: Sink,
}

/// Coarse gate: the numeric value of the most verbose enabled level.
/// `log_enabled` checks this before touching the mutex.
static MAX_LEVEL: AtomicU8 = AtomicU8::new(0);

fn state() -> &'static Mutex<LogState> {
    static STATE: OnceLock<Mutex<LogState>> = OnceLock::new();
    STATE.get_or_init(|| {
        let filter = match std::env::var("NIMBLOCK_LOG") {
            Ok(spec) => Filter::parse(&spec),
            Err(_) => Filter::default_filter(),
        };
        MAX_LEVEL.store(filter.max_level(), Ordering::Relaxed);
        Mutex::new(LogState { filter, sink: Sink::Stderr })
    })
}

fn lock_state() -> MutexGuard<'static, LogState> {
    match state().lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Replaces the active filter (as if `NIMBLOCK_LOG` had been `spec`).
///
/// Intended for tests and for CLI `-v`-style overrides; takes effect
/// immediately for all targets.
pub fn set_filter(spec: &str) {
    let filter = Filter::parse(spec);
    MAX_LEVEL.store(filter.max_level(), Ordering::Relaxed);
    lock_state().filter = filter;
}

/// Returns true when a record at `level` for `target` would be emitted.
///
/// The fast path is one relaxed atomic load; the per-target filter only
/// runs when the coarse gate passes.
#[inline]
pub fn log_enabled(level: Level, target: &str) -> bool {
    if (level as u8) > MAX_LEVEL.load(Ordering::Relaxed) {
        return false;
    }
    match lock_state().filter.level_for(target) {
        Some(max) => level <= max,
        None => false,
    }
}

/// Emits one already-formatted message at `level` for `target`.
///
/// Callers normally go through the [`nb_log!`] family, which gates on
/// [`log_enabled`] before paying for formatting.
pub fn log_emit(level: Level, target: &str, message: std::fmt::Arguments<'_>) {
    let line = format!("level={} target={} {}", level.as_str(), target, message);
    match &mut lock_state().sink {
        // The logging facade IS the sanctioned writer for every other crate.
        // nimblock: allow(no-println)
        Sink::Stderr => eprintln!("{line}"),
        Sink::Capture(lines) => lines.push(line),
    }
}

/// Guard returned by [`capture`]: while alive, log lines accumulate in
/// memory instead of stderr, and other capturing tests are excluded.
pub struct CaptureGuard {
    _serial: MutexGuard<'static, ()>,
    saved_max: u8,
    saved_filter: Filter,
}

impl CaptureGuard {
    /// The lines captured so far, in emission order.
    pub fn lines(&self) -> Vec<String> {
        match &lock_state().sink {
            Sink::Capture(lines) => lines.clone(),
            Sink::Stderr => Vec::new(),
        }
    }

    /// True when any captured line contains `needle`.
    pub fn contains(&self, needle: &str) -> bool {
        self.lines().iter().any(|l| l.contains(needle))
    }
}

impl Drop for CaptureGuard {
    fn drop(&mut self) {
        let mut st = lock_state();
        st.sink = Sink::Stderr;
        st.filter = self.saved_filter.clone();
        MAX_LEVEL.store(self.saved_max, Ordering::Relaxed);
    }
}

/// Begins capturing log output under filter `spec` (e.g. `"hv=debug"`).
///
/// Returns a guard: read captured lines through it; dropping it restores
/// the previous filter and the stderr sink. Concurrent captures are
/// serialised on a global mutex so parallel tests don't interleave.
pub fn capture(spec: &str) -> CaptureGuard {
    static SERIAL: Mutex<()> = Mutex::new(());
    let serial = match SERIAL.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    let saved_max = MAX_LEVEL.load(Ordering::Relaxed);
    let (saved_filter, ()) = {
        let mut st = lock_state();
        let saved = st.filter.clone();
        let filter = Filter::parse(spec);
        MAX_LEVEL.store(filter.max_level(), Ordering::Relaxed);
        st.filter = filter;
        st.sink = Sink::Capture(Vec::new());
        (saved, ())
    };
    CaptureGuard { _serial: serial, saved_max, saved_filter }
}

/// Core logging macro: `nb_log!(Level::Debug, "hv", "admitted {}", app)`.
///
/// Formatting is only evaluated when the record would actually be
/// emitted, so disabled log statements cost one atomic load.
#[macro_export]
macro_rules! nb_log {
    ($level:expr, $target:expr, $($arg:tt)+) => {
        if $crate::log_enabled($level, $target) {
            $crate::log_emit($level, $target, format_args!($($arg)+));
        }
    };
}

/// `nb_error!("hv", "...")` — sugar for [`nb_log!`] at [`Level::Error`].
#[macro_export]
macro_rules! nb_error {
    ($target:expr, $($arg:tt)+) => { $crate::nb_log!($crate::Level::Error, $target, $($arg)+) };
}

/// `nb_warn!("hv", "...")` — sugar for [`nb_log!`] at [`Level::Warn`].
#[macro_export]
macro_rules! nb_warn {
    ($target:expr, $($arg:tt)+) => { $crate::nb_log!($crate::Level::Warn, $target, $($arg)+) };
}

/// `nb_info!("hv", "...")` — sugar for [`nb_log!`] at [`Level::Info`].
#[macro_export]
macro_rules! nb_info {
    ($target:expr, $($arg:tt)+) => { $crate::nb_log!($crate::Level::Info, $target, $($arg)+) };
}

/// `nb_debug!("hv", "...")` — sugar for [`nb_log!`] at [`Level::Debug`].
#[macro_export]
macro_rules! nb_debug {
    ($target:expr, $($arg:tt)+) => { $crate::nb_log!($crate::Level::Debug, $target, $($arg)+) };
}

/// `nb_trace!("sim", "...")` — sugar for [`nb_log!`] at [`Level::Trace`].
#[macro_export]
macro_rules! nb_trace {
    ($target:expr, $($arg:tt)+) => { $crate::nb_log!($crate::Level::Trace, $target, $($arg)+) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_level_sets_default_for_all_targets() {
        let f = Filter::parse("debug");
        assert_eq!(f.level_for("hv"), Some(Level::Debug));
        assert_eq!(f.level_for("sched.nimblock"), Some(Level::Debug));
        assert_eq!(f.max_level(), Level::Debug as u8);
    }

    #[test]
    fn per_target_directives_use_longest_prefix() {
        let f = Filter::parse("sched=info,sched.nimblock=trace,hv=debug");
        assert_eq!(f.level_for("sched.prema"), Some(Level::Info));
        assert_eq!(f.level_for("sched.nimblock"), Some(Level::Trace));
        assert_eq!(f.level_for("hv"), Some(Level::Debug));
        // Unmatched targets fall back to the default (warn).
        assert_eq!(f.level_for("sim"), Some(Level::Warn));
        // `schedx` must not prefix-match `sched`.
        assert_eq!(f.level_for("schedx"), Some(Level::Warn));
    }

    #[test]
    fn off_disables_everything() {
        let f = Filter::parse("off");
        assert_eq!(f.level_for("hv"), None);
        assert_eq!(f.max_level(), 0);
    }

    #[test]
    fn capture_collects_lines_and_restores_on_drop() {
        {
            let cap = capture("hv=debug");
            nb_debug!("hv", "admitted app={} slot={}", "app#3", "slot#1");
            nb_debug!("sim", "should be filtered out");
            nb_error!("sim", "errors always pass the warn default? no: filter says hv only at debug, sim inherits warn");
            let lines = cap.lines();
            assert!(lines.iter().any(|l| l.contains("target=hv") && l.contains("app#3")), "{lines:?}");
            assert!(!lines.iter().any(|l| l.contains("should be filtered out")), "{lines:?}");
            assert!(cap.contains("level=error"));
        }
        // After the guard drops, the sink is stderr again (nothing to
        // assert beyond "does not panic").
        nb_warn!("hv", "post-capture line goes to stderr");
    }

    #[test]
    fn disabled_levels_are_cheap_and_silent() {
        let cap = capture("error");
        nb_trace!("sim", "noisy {}", 42);
        nb_debug!("hv", "also noisy");
        assert!(cap.lines().is_empty(), "{:?}", cap.lines());
        nb_error!("hv", "kept");
        assert_eq!(cap.lines().len(), 1);
    }
}
