//! Deadline violation analysis (paper §5.4).

use nimblock_ser::impl_json_struct;

use nimblock_app::Priority;
use nimblock_sim::SimDuration;

use crate::Report;

/// Returns the fraction of records (optionally filtered to one priority)
/// whose response time exceeds their deadline.
///
/// `deadline_of` maps an event index to that application's deadline — the
/// deadline scaling factor `D_s` times its single-slot latency. Records
/// without a deadline are skipped. Returns 0 when nothing qualifies.
pub fn violation_rate<F>(report: &Report, priority: Option<Priority>, deadline_of: F) -> f64
where
    F: Fn(usize) -> Option<SimDuration>,
{
    let mut total = 0usize;
    let mut violated = 0usize;
    for record in report.records() {
        if let Some(p) = priority {
            if record.priority != p {
                continue;
            }
        }
        let Some(deadline) = deadline_of(record.event_index) else {
            continue;
        };
        total += 1;
        if record.response_time() > deadline {
            violated += 1;
        }
    }
    if total == 0 {
        0.0
    } else {
        violated as f64 / total as f64
    }
}

/// A deadline failure-rate curve over a sweep of `D_s` values, as plotted in
/// Figure 7 of the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct DeadlineCurve {
    scheduler: String,
    points: Vec<(f64, f64)>,
}

impl_json_struct!(DeadlineCurve { scheduler, points });

impl DeadlineCurve {
    /// Builds a curve from `(D_s, failure rate)` points.
    ///
    /// # Panics
    ///
    /// Panics if the `D_s` values are not strictly increasing.
    pub fn new(scheduler: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        assert!(
            points.windows(2).all(|w| w[0].0 < w[1].0),
            "D_s values must be strictly increasing"
        );
        DeadlineCurve {
            scheduler: scheduler.into(),
            points,
        }
    }

    /// Returns the scheduler the curve belongs to.
    pub fn scheduler(&self) -> &str {
        &self.scheduler
    }

    /// Returns the `(D_s, failure rate)` points.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Returns the failure rate at the tightest swept deadline.
    ///
    /// # Panics
    ///
    /// Panics if the curve is empty.
    pub fn tightest_rate(&self) -> f64 {
        self.points.first().expect("curve must not be empty").1
    }

    /// Returns the smallest `D_s` at which the failure rate drops to
    /// `threshold` or below — the paper's "10% error point" for
    /// `threshold = 0.10`. `None` if the curve never gets there.
    pub fn error_point(&self, threshold: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|&&(_, rate)| rate <= threshold)
            .map(|&(ds, _)| ds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ResponseRecord;
    use nimblock_sim::SimTime;

    fn record(event_index: usize, priority: Priority, response_ms: u64) -> ResponseRecord {
        ResponseRecord {
            event_index,
            app_name: "X".into(),
            batch_size: 1,
            priority,
            arrival: SimTime::ZERO,
            first_launch: None,
            retired: SimTime::from_millis(response_ms),
            run_time: SimDuration::ZERO,
            reconfig_time: SimDuration::ZERO,
            preemptions: 0,
        }
    }

    fn report() -> Report {
        Report::new(
            "t",
            vec![
                record(0, Priority::High, 100),
                record(1, Priority::High, 300),
                record(2, Priority::Low, 1_000),
            ],
            SimTime::ZERO,
        )
    }

    #[test]
    fn violation_rate_counts_misses() {
        // Deadline 200 ms for everyone: events 1 and 2 miss.
        let rate = violation_rate(&report(), None, |_| Some(SimDuration::from_millis(200)));
        assert!((rate - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn violation_rate_filters_priority() {
        let rate = violation_rate(&report(), Some(Priority::High), |_| {
            Some(SimDuration::from_millis(200))
        });
        assert!((rate - 0.5).abs() < 1e-12);
    }

    #[test]
    fn violation_rate_skips_missing_deadlines() {
        let rate = violation_rate(&report(), None, |i| {
            (i == 2).then_some(SimDuration::from_millis(500))
        });
        assert_eq!(rate, 1.0);
    }

    #[test]
    fn violation_rate_empty_selection_is_zero() {
        let rate = violation_rate(&report(), None, |_| None);
        assert_eq!(rate, 0.0);
    }

    #[test]
    fn curve_error_point() {
        let curve = DeadlineCurve::new(
            "nimblock",
            vec![(1.0, 0.6), (1.25, 0.3), (1.5, 0.08), (1.75, 0.0)],
        );
        assert_eq!(curve.tightest_rate(), 0.6);
        assert_eq!(curve.error_point(0.10), Some(1.5));
        assert_eq!(curve.error_point(-0.1), None);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn curve_requires_increasing_ds() {
        DeadlineCurve::new("x", vec![(1.0, 0.5), (1.0, 0.4)]);
    }
}
