//! Plain-text table rendering for the experiment harness.

use std::fmt;

/// A fixed-width text table, used by the `nimblock-bench` binaries to print
/// the rows and series of the paper's tables and figures.
///
/// # Example
///
/// ```
/// use nimblock_metrics::TextTable;
///
/// let mut table = TextTable::new(vec!["benchmark", "tasks", "edges"]);
/// table.row(vec!["LeNet".into(), "3".into(), "2".into()]);
/// let text = table.to_string();
/// assert!(text.contains("LeNet"));
/// assert!(text.lines().count() >= 3); // header, rule, row
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        assert!(!headers.is_empty(), "a table needs at least one column");
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != column count {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Returns the number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Returns the column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// Returns the data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    fn widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        widths
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut first = true;
            for (cell, width) in cells.iter().zip(&widths) {
                if !first {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:<width$}")?;
                first = false;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a float with three significant decimals, the precision the
/// paper's tables use.
pub fn fmt3(value: f64) -> String {
    format!("{value:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn columns_align() {
        let mut t = TextTable::new(vec!["a", "long-header"]);
        t.row(vec!["wide-cell-content".into(), "x".into()]);
        let text = t.to_string();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        // Second column starts at the same offset in header and data rows.
        let header_offset = lines[0].find("long-header").unwrap();
        let data_offset = lines[2].find('x').unwrap();
        assert_eq!(header_offset, data_offset);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_header_panics() {
        TextTable::new(Vec::<String>::new());
    }

    #[test]
    fn row_count_tracks_rows() {
        let mut t = TextTable::new(vec!["a"]);
        assert_eq!(t.row_count(), 0);
        t.row(vec!["1".into()]).row(vec!["2".into()]);
        assert_eq!(t.row_count(), 2);
    }

    #[test]
    fn fmt3_rounds() {
        assert_eq!(fmt3(1.23456), "1.235");
        assert_eq!(fmt3(2.0), "2.000");
    }
}
