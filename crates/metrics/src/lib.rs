//! Response-time statistics, deadline analysis, and report rendering.
//!
//! The paper's evaluation (§5) reports four families of metrics, all of
//! which this crate computes from [`ResponseRecord`]s emitted by the
//! hypervisor:
//!
//! * average **relative response-time reduction** versus the no-sharing
//!   baseline (Figure 5),
//! * **tail** (95th/99th percentile) response-time reduction (Figure 6),
//! * **deadline violation rates** across a sweep of deadline scaling
//!   factors (Figure 7),
//! * **time breakdowns** — run time, partial-reconfiguration time, wait
//!   time as shares of total application time (Figure 8).
//!
//! [`TextTable`] renders the same rows and series the paper's figures plot.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod attribution;
mod deadline;
mod export;
mod fairness;
mod record;
mod serving;
mod stats;
mod table;

pub use attribution::{
    component_shares, AppAttribution, AttributionComponents, AttributionSummary,
    PriorityAttribution,
};
pub use deadline::{violation_rate, DeadlineCurve};
pub use export::{curve_to_csv, report_to_csv, series_to_csv};
pub use fairness::{jain_index, slowdown_fairness, slowdowns};
pub use record::{Report, ResponseRecord, RunCounters};
pub use serving::{
    ClassAttainment, CurvePoint, ServingCounters, ShedExplanation, SloCurve,
};
pub use stats::{harmonic_speedup, percentile, speedups, Summary};
pub use table::{fmt3, TextTable};
