//! Summary statistics and relative reductions.

use nimblock_ser::impl_json_struct;

use crate::Report;

/// Mean / median / tail summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    /// Arithmetic mean.
    pub mean: f64,
    /// 50th percentile.
    pub median: f64,
    /// 95th percentile (the paper's first tail metric, Figure 6).
    pub p95: f64,
    /// 99th percentile (the paper's second tail metric, Figure 6).
    pub p99: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Number of samples.
    pub count: usize,
}

impl_json_struct!(Summary { mean, median, p95, p99, min, max, count });

impl Summary {
    /// Summarizes `samples`. Returns the zero summary for an empty slice.
    pub fn of(samples: &[f64]) -> Summary {
        if samples.is_empty() {
            return Summary::default();
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        Summary {
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
            median: percentile(&sorted, 50.0),
            p95: percentile(&sorted, 95.0),
            p99: percentile(&sorted, 99.0),
            min: sorted[0],
            max: sorted[sorted.len() - 1],
            count: sorted.len(),
        }
    }
}

/// Returns the `p`-th percentile of an ascending-sorted sample using linear
/// interpolation between closest ranks.
///
/// # Panics
///
/// Panics if `sorted` is empty or `p` is outside `[0, 100]`.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of an empty sample");
    assert!((0.0..=100.0).contains(&p), "percentile {p} out of [0, 100]");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = rank - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

/// Returns the per-event relative response-time reduction of `report` versus
/// `baseline`: `T_baseline / T_report` for every event present in both
/// (>1 means `report`'s scheduler was faster, as plotted in Figure 5).
pub fn speedups(baseline: &Report, report: &Report) -> Vec<f64> {
    baseline
        .records()
        .iter()
        .filter_map(|b| {
            let r = report.record_for_event(b.event_index)?;
            let denom = r.response_time().as_secs_f64();
            if denom == 0.0 {
                return None;
            }
            Some(b.response_time().as_secs_f64() / denom)
        })
        .collect()
}

/// Returns the harmonic-mean response-time reduction of `report` versus
/// `baseline` over paired events: `1 / mean(T_report / T_baseline)`.
///
/// This is the reproduction's reading of the paper's Figure 5 metric
/// ("relative response time reduction, normalized to the baseline"): the
/// per-event normalized distribution is averaged and inverted, which
/// weights heavy events realistically — a simple mean of per-event speedups
/// would be dominated by short applications that the baseline made wait
/// behind long ones (Table 3 shows individual 200× gaps while Figure 5
/// reports 4–6×). Returns 0 when no events pair up.
pub fn harmonic_speedup(baseline: &Report, report: &Report) -> f64 {
    let inverse: Vec<f64> = baseline
        .records()
        .iter()
        .filter_map(|b| {
            let r = report.record_for_event(b.event_index)?;
            let denom = b.response_time().as_secs_f64();
            if denom == 0.0 {
                return None;
            }
            Some(r.response_time().as_secs_f64() / denom)
        })
        .collect();
    if inverse.is_empty() {
        return 0.0;
    }
    let mean = inverse.iter().sum::<f64>() / inverse.len() as f64;
    if mean == 0.0 {
        0.0
    } else {
        1.0 / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ResponseRecord;
    use nimblock_app::Priority;
    use nimblock_sim::{SimDuration, SimTime};

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[4.0, 1.0, 3.0, 2.0]);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.median, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.count, 4);
    }

    #[test]
    fn summary_of_empty_sample_is_zero() {
        assert_eq!(Summary::of(&[]), Summary::default());
    }

    #[test]
    fn percentile_interpolates() {
        let sorted = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&sorted, 0.0), 10.0);
        assert_eq!(percentile(&sorted, 100.0), 40.0);
        assert_eq!(percentile(&sorted, 50.0), 25.0);
        assert!((percentile(&sorted, 95.0) - 38.5).abs() < 1e-9);
    }

    #[test]
    fn percentile_of_singleton() {
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn percentile_of_empty_panics() {
        percentile(&[], 50.0);
    }

    fn report_with(times_ms: &[(usize, u64)], name: &str) -> Report {
        let records = times_ms
            .iter()
            .map(|&(event_index, ms)| ResponseRecord {
                event_index,
                app_name: "X".into(),
                batch_size: 1,
                priority: Priority::Low,
                arrival: SimTime::ZERO,
                first_launch: None,
                retired: SimTime::from_millis(ms),
                run_time: SimDuration::ZERO,
                reconfig_time: SimDuration::ZERO,
                preemptions: 0,
            })
            .collect();
        Report::new(name, records, SimTime::ZERO)
    }

    #[test]
    fn speedups_pair_by_event_index() {
        let baseline = report_with(&[(0, 1_000), (1, 2_000)], "baseline");
        let fast = report_with(&[(1, 500), (0, 500)], "fast");
        let s = speedups(&baseline, &fast);
        assert_eq!(s, vec![2.0, 4.0]);
    }

    #[test]
    fn harmonic_speedup_is_inverse_mean_of_ratios() {
        let baseline = report_with(&[(0, 1_000), (1, 1_000)], "baseline");
        // Ratios alg/base: 0.5 and 0.25 -> mean 0.375 -> harmonic 2.666…
        let fast = report_with(&[(0, 500), (1, 250)], "fast");
        let h = harmonic_speedup(&baseline, &fast);
        assert!((h - 1.0 / 0.375).abs() < 1e-9);
    }

    #[test]
    fn harmonic_speedup_weighs_slow_events_heavily() {
        let baseline = report_with(&[(0, 1_000), (1, 1_000)], "baseline");
        // One event 100x faster, one unchanged: arithmetic mean of speedups
        // would say 50.5x; harmonic says ~1.98x.
        let mixed = report_with(&[(0, 10), (1, 1_000)], "mixed");
        let h = harmonic_speedup(&baseline, &mixed);
        assert!(h < 2.0 && h > 1.9, "harmonic speedup {h}");
    }

    #[test]
    fn harmonic_speedup_of_empty_pairs_is_zero() {
        let baseline = report_with(&[(0, 1_000)], "baseline");
        let other = report_with(&[(7, 1_000)], "other");
        assert_eq!(harmonic_speedup(&baseline, &other), 0.0);
    }

    #[test]
    fn speedups_skip_missing_events() {
        let baseline = report_with(&[(0, 1_000), (1, 2_000)], "baseline");
        let partial = report_with(&[(1, 1_000)], "partial");
        assert_eq!(speedups(&baseline, &partial), vec![2.0]);
    }
}
