//! Fairness and slowdown analysis.
//!
//! Token-based candidacy is Nimblock's fairness mechanism: it trades some
//! raw mean response time for bounded performance degradation per
//! application. These helpers quantify that trade against starvation-prone
//! policies like shortest-job-first.

use nimblock_sim::SimDuration;

use crate::Report;

/// Jain's fairness index over a set of non-negative samples: 1 for a
/// perfectly uniform allocation, `1/n` for a maximally skewed one.
///
/// Returns 1.0 for empty or all-zero samples (nothing to be unfair about).
///
/// # Example
///
/// ```
/// use nimblock_metrics::jain_index;
///
/// assert_eq!(jain_index(&[1.0, 1.0, 1.0]), 1.0);
/// assert!((jain_index(&[1.0, 0.0, 0.0]) - 1.0 / 3.0).abs() < 1e-12);
/// ```
pub fn jain_index(samples: &[f64]) -> f64 {
    let sum: f64 = samples.iter().sum();
    let squares: f64 = samples.iter().map(|x| x * x).sum();
    if samples.is_empty() || squares == 0.0 {
        return 1.0;
    }
    (sum * sum) / (samples.len() as f64 * squares)
}

/// Per-application *slowdown*: response time divided by the application's
/// isolated single-slot latency (the deadline unit of the paper's §5.4).
/// A slowdown of 1 means the application ran as if alone on one slot.
///
/// `isolated_of` maps an event index to that single-slot latency; events it
/// returns `None` for are skipped.
pub fn slowdowns<F>(report: &Report, isolated_of: F) -> Vec<f64>
where
    F: Fn(usize) -> Option<SimDuration>,
{
    report
        .records()
        .iter()
        .filter_map(|record| {
            let isolated = isolated_of(record.event_index)?.as_secs_f64();
            if isolated == 0.0 {
                return None;
            }
            Some(record.response_time().as_secs_f64() / isolated)
        })
        .collect()
}

/// The fairness of a schedule: Jain's index over the per-application
/// slowdowns. High values mean every application degraded about equally;
/// low values mean some applications starved while others flew.
pub fn slowdown_fairness<F>(report: &Report, isolated_of: F) -> f64
where
    F: Fn(usize) -> Option<SimDuration>,
{
    jain_index(&slowdowns(report, isolated_of))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ResponseRecord;
    use nimblock_app::Priority;
    use nimblock_sim::SimTime;

    fn record(event_index: usize, response_ms: u64) -> ResponseRecord {
        ResponseRecord {
            event_index,
            app_name: "X".into(),
            batch_size: 1,
            priority: Priority::Low,
            arrival: SimTime::ZERO,
            first_launch: None,
            retired: SimTime::from_millis(response_ms),
            run_time: SimDuration::ZERO,
            reconfig_time: SimDuration::ZERO,
            preemptions: 0,
        }
    }

    #[test]
    fn jain_bounds() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[5.0]), 1.0);
        assert_eq!(jain_index(&[2.0, 2.0, 2.0, 2.0]), 1.0);
        let skewed = jain_index(&[10.0, 0.0, 0.0, 0.0]);
        assert!((skewed - 0.25).abs() < 1e-12);
        let mid = jain_index(&[1.0, 3.0]);
        assert!(mid > 0.25 && mid < 1.0);
    }

    #[test]
    fn slowdowns_normalize_by_isolated_latency() {
        let report = Report::new(
            "t",
            vec![record(0, 2_000), record(1, 1_000)],
            SimTime::ZERO,
        );
        let s = slowdowns(&report, |i| {
            Some(SimDuration::from_millis(if i == 0 { 1_000 } else { 250 }))
        });
        assert_eq!(s, vec![2.0, 4.0]);
    }

    #[test]
    fn slowdowns_skip_unknown_events() {
        let report = Report::new("t", vec![record(0, 100), record(1, 100)], SimTime::ZERO);
        let s = slowdowns(&report, |i| (i == 1).then(|| SimDuration::from_millis(100)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn uniform_slowdowns_are_perfectly_fair() {
        let report = Report::new(
            "t",
            vec![record(0, 300), record(1, 600)],
            SimTime::ZERO,
        );
        // Both events slowed down exactly 3x.
        let fairness = slowdown_fairness(&report, |i| {
            Some(SimDuration::from_millis(if i == 0 { 100 } else { 200 }))
        });
        assert!((fairness - 1.0).abs() < 1e-12);
    }
}
