//! CSV export for plot-ready data.
//!
//! The paper's figures are bar and line charts; these helpers emit the same
//! series as CSV so any plotting tool can regenerate them from a run.

use std::fmt::Write as _;

use crate::{DeadlineCurve, Report};

/// Escapes one CSV field (quotes fields containing commas, quotes, or
/// newlines, doubling embedded quotes).
fn field(value: &str) -> String {
    if value.contains([',', '"', '\n']) {
        format!("\"{}\"", value.replace('"', "\"\""))
    } else {
        value.to_owned()
    }
}

/// Renders a generic table as CSV.
///
/// # Panics
///
/// Panics if any row's width differs from the header's.
pub fn series_to_csv(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{}", headers.iter().map(|h| field(h)).collect::<Vec<_>>().join(","));
    for row in rows {
        assert_eq!(row.len(), headers.len(), "row width must match header");
        let _ = writeln!(out, "{}", row.iter().map(|c| field(c)).collect::<Vec<_>>().join(","));
    }
    out
}

/// Renders a run report as CSV: one row per application record.
pub fn report_to_csv(report: &Report) -> String {
    let rows: Vec<Vec<String>> = report
        .records()
        .iter()
        .map(|r| {
            vec![
                r.event_index.to_string(),
                r.app_name.clone(),
                r.batch_size.to_string(),
                r.priority.to_string(),
                format!("{:.6}", r.arrival.as_secs_f64()),
                format!("{:.6}", r.response_time().as_secs_f64()),
                format!("{:.6}", r.wait_time().as_secs_f64()),
                format!("{:.6}", r.execution_time().as_secs_f64()),
                format!("{:.6}", r.run_time.as_secs_f64()),
                format!("{:.6}", r.reconfig_time.as_secs_f64()),
                r.preemptions.to_string(),
            ]
        })
        .collect();
    series_to_csv(
        &[
            "event", "app", "batch", "priority", "arrival_s", "response_s", "wait_s",
            "execution_s", "run_s", "reconfig_s", "preemptions",
        ],
        &rows,
    )
}

/// Renders a deadline failure-rate curve as CSV (`ds,failure_rate`).
pub fn curve_to_csv(curve: &DeadlineCurve) -> String {
    let rows: Vec<Vec<String>> = curve
        .points()
        .iter()
        .map(|&(ds, rate)| vec![format!("{ds}"), format!("{rate}")])
        .collect();
    series_to_csv(&["ds", "failure_rate"], &rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ResponseRecord;
    use nimblock_app::Priority;
    use nimblock_sim::{SimDuration, SimTime};

    fn report() -> Report {
        Report::new(
            "test",
            vec![ResponseRecord {
                event_index: 0,
                app_name: "LeNet, v2".into(), // comma forces quoting
                batch_size: 4,
                priority: Priority::High,
                arrival: SimTime::from_millis(100),
                first_launch: Some(SimTime::from_millis(180)),
                retired: SimTime::from_millis(1_000),
                run_time: SimDuration::from_millis(500),
                reconfig_time: SimDuration::from_millis(160),
                preemptions: 1,
            }],
            SimTime::from_secs(1),
        )
    }

    #[test]
    fn report_csv_has_header_and_rows() {
        let csv = report_to_csv(&report());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("event,app,batch"));
        assert!(lines[1].contains("\"LeNet, v2\""), "{csv}");
        assert!(lines[1].contains("0.900000")); // response seconds
    }

    #[test]
    fn fields_with_quotes_are_doubled() {
        assert_eq!(field("plain"), "plain");
        assert_eq!(field("a,b"), "\"a,b\"");
        assert_eq!(field("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn curve_csv_roundtrips_points() {
        let curve = DeadlineCurve::new("x", vec![(1.0, 0.5), (1.25, 0.25)]);
        let csv = curve_to_csv(&curve);
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.contains("1.25,0.25"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_series_row_panics() {
        series_to_csv(&["a", "b"], &[vec!["only".into()]]);
    }
}
