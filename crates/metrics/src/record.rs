//! Per-application response records and run reports.

use nimblock_ser::impl_json_struct;

use nimblock_app::Priority;
use nimblock_sim::{SimDuration, SimTime};

use crate::attribution::AttributionSummary;

/// Everything the hypervisor measured about one application's life,
/// mirroring the metadata the paper's testbed stores at completion (§5.1).
#[derive(Debug, Clone, PartialEq)]
pub struct ResponseRecord {
    /// Index of the arrival event in its sequence (stable across
    /// schedulers, used to pair records for relative reductions).
    pub event_index: usize,
    /// Benchmark name.
    pub app_name: String,
    /// Batch size the application ran with.
    pub batch_size: u32,
    /// Priority level of the arrival.
    pub priority: Priority,
    /// Time the application entered the pending queue.
    pub arrival: SimTime,
    /// Time the first task started running on the fabric, if any ran.
    pub first_launch: Option<SimTime>,
    /// Time the application retired (all tasks finished the whole batch).
    pub retired: SimTime,
    /// Sum of all task item run times (Figure 8 "Run time").
    pub run_time: SimDuration,
    /// Sum of all partial reconfigurations performed for the application
    /// (Figure 8 "PR time").
    pub reconfig_time: SimDuration,
    /// Number of batch-preemptions the application suffered.
    pub preemptions: u32,
}

impl_json_struct!(ResponseRecord {
    event_index, app_name, batch_size, priority, arrival,
    first_launch, retired, run_time, reconfig_time, preemptions,
});

impl ResponseRecord {
    /// The response time: arrival to retirement (paper §3.1).
    pub fn response_time(&self) -> SimDuration {
        self.retired.saturating_since(self.arrival)
    }

    /// Queueing delay before the first task ran (Figure 8 "Wait time").
    /// Applications that never ran waited their whole life.
    pub fn wait_time(&self) -> SimDuration {
        match self.first_launch {
            Some(first) => first.saturating_since(self.arrival),
            None => self.response_time(),
        }
    }

    /// Execution time: first task launch to retirement. Not the sum of task
    /// run times, because tasks overlap (paper §5.5).
    pub fn execution_time(&self) -> SimDuration {
        match self.first_launch {
            Some(first) => self.retired.saturating_since(first),
            None => SimDuration::ZERO,
        }
    }
}

/// Whole-run event counters the hypervisor accumulates while executing a
/// sequence — the §5 evaluation's aggregate side (preemption counts,
/// reconfiguration-port pressure, bitstream cache behaviour), as opposed
/// to the per-application [`ResponseRecord`]s.
///
/// Printed by `nimblock run` without `--trace`, and summed across boards
/// by the cluster testbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunCounters {
    /// Applications admitted into the pending queue.
    pub arrivals: u64,
    /// Applications that retired (finished their whole batch).
    pub retires: u64,
    /// Batch-preemptions enacted (a running app evicted from a slot).
    pub preemptions: u64,
    /// Partial reconfigurations enqueued on the CAP.
    pub reconfigurations: u64,
    /// Scheduler decisions that stalled waiting for the (serial) CAP.
    pub alloc_stalls: u64,
    /// Slot-bitstream lookups served from the cache.
    pub bitstream_cache_hits: u64,
    /// Slot-bitstream lookups that had to generate (compile) an image.
    pub bitstream_cache_misses: u64,
}

impl_json_struct!(RunCounters {
    arrivals, retires, preemptions, reconfigurations, alloc_stalls,
    bitstream_cache_hits, bitstream_cache_misses,
});

impl RunCounters {
    /// Bitstream cache hit rate in `[0, 1]`; `None` before any lookup.
    pub fn cache_hit_rate(&self) -> Option<f64> {
        let total = self.bitstream_cache_hits + self.bitstream_cache_misses;
        (total > 0).then(|| self.bitstream_cache_hits as f64 / total as f64)
    }

    /// Component-wise sum (used by the cluster testbed to merge per-board
    /// counters into one report).
    pub fn merged(self, other: RunCounters) -> RunCounters {
        RunCounters {
            arrivals: self.arrivals + other.arrivals,
            retires: self.retires + other.retires,
            preemptions: self.preemptions + other.preemptions,
            reconfigurations: self.reconfigurations + other.reconfigurations,
            alloc_stalls: self.alloc_stalls + other.alloc_stalls,
            bitstream_cache_hits: self.bitstream_cache_hits + other.bitstream_cache_hits,
            bitstream_cache_misses: self.bitstream_cache_misses + other.bitstream_cache_misses,
        }
    }
}

/// The output of one testbed run: one record per arrival event, in event
/// order, plus the scheduler that produced them and the whole-run
/// [`RunCounters`].
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    scheduler: String,
    records: Vec<ResponseRecord>,
    finished_at: SimTime,
    counters: RunCounters,
    attribution: Option<AttributionSummary>,
}

impl_json_struct!(Report { scheduler, records, finished_at, counters, attribution });

impl Report {
    /// Assembles a report (with zeroed counters; see
    /// [`Report::with_counters`]).
    pub fn new(scheduler: impl Into<String>, mut records: Vec<ResponseRecord>, finished_at: SimTime) -> Self {
        records.sort_by_key(|r| r.event_index);
        Report {
            scheduler: scheduler.into(),
            records,
            finished_at,
            counters: RunCounters::default(),
            attribution: None,
        }
    }

    /// Attaches whole-run counters.
    pub fn with_counters(mut self, counters: RunCounters) -> Self {
        self.counters = counters;
        self
    }

    /// Attaches a response-time attribution summary (derived from the
    /// run's trace by `nimblock-core::attribution`).
    pub fn with_attribution(mut self, attribution: AttributionSummary) -> Self {
        self.attribution = Some(attribution);
        self
    }

    /// Returns the attribution summary, if one was derived.
    pub fn attribution(&self) -> Option<&AttributionSummary> {
        self.attribution.as_ref()
    }

    /// Returns the whole-run counters.
    pub fn counters(&self) -> &RunCounters {
        &self.counters
    }

    /// Returns the scheduler name that produced this report.
    pub fn scheduler(&self) -> &str {
        &self.scheduler
    }

    /// Returns the records in event order.
    pub fn records(&self) -> &[ResponseRecord] {
        &self.records
    }

    /// Returns the virtual time at which the whole sequence finished.
    pub fn finished_at(&self) -> SimTime {
        self.finished_at
    }

    /// Returns the response times in event order.
    pub fn response_times(&self) -> Vec<SimDuration> {
        self.records.iter().map(ResponseRecord::response_time).collect()
    }

    /// Returns the mean response time in seconds.
    pub fn mean_response_secs(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records
            .iter()
            .map(|r| r.response_time().as_secs_f64())
            .sum::<f64>()
            / self.records.len() as f64
    }

    /// Returns the record for `event_index`, if the event retired.
    pub fn record_for_event(&self, event_index: usize) -> Option<&ResponseRecord> {
        self.records.iter().find(|r| r.event_index == event_index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(event_index: usize, arrival_ms: u64, first_ms: Option<u64>, retired_ms: u64) -> ResponseRecord {
        ResponseRecord {
            event_index,
            app_name: "X".into(),
            batch_size: 1,
            priority: Priority::Low,
            arrival: SimTime::from_millis(arrival_ms),
            first_launch: first_ms.map(SimTime::from_millis),
            retired: SimTime::from_millis(retired_ms),
            run_time: SimDuration::ZERO,
            reconfig_time: SimDuration::ZERO,
            preemptions: 0,
        }
    }

    #[test]
    fn response_wait_and_execution_times() {
        let r = record(0, 100, Some(150), 400);
        assert_eq!(r.response_time(), SimDuration::from_millis(300));
        assert_eq!(r.wait_time(), SimDuration::from_millis(50));
        assert_eq!(r.execution_time(), SimDuration::from_millis(250));
    }

    #[test]
    fn never_launched_app_waits_forever() {
        let r = record(0, 100, None, 400);
        assert_eq!(r.wait_time(), SimDuration::from_millis(300));
        assert_eq!(r.execution_time(), SimDuration::ZERO);
    }

    #[test]
    fn report_sorts_records_by_event_index() {
        let report = Report::new(
            "test",
            vec![record(2, 0, None, 10), record(0, 0, None, 10), record(1, 0, None, 10)],
            SimTime::from_millis(10),
        );
        let order: Vec<usize> = report.records().iter().map(|r| r.event_index).collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn mean_response_over_records() {
        let report = Report::new(
            "test",
            vec![record(0, 0, None, 1_000), record(1, 0, None, 3_000)],
            SimTime::from_secs(3),
        );
        assert!((report.mean_response_secs() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_report_mean_is_zero() {
        let report = Report::new("test", Vec::new(), SimTime::ZERO);
        assert_eq!(report.mean_response_secs(), 0.0);
    }

    #[test]
    fn counters_attach_merge_and_report_hit_rate() {
        let a = RunCounters { arrivals: 2, bitstream_cache_hits: 3, bitstream_cache_misses: 1, ..RunCounters::default() };
        let b = RunCounters { arrivals: 1, preemptions: 4, ..RunCounters::default() };
        let merged = a.merged(b);
        assert_eq!(merged.arrivals, 3);
        assert_eq!(merged.preemptions, 4);
        assert_eq!(merged.cache_hit_rate(), Some(0.75));
        assert_eq!(RunCounters::default().cache_hit_rate(), None);

        let report = Report::new("test", Vec::new(), SimTime::ZERO).with_counters(merged);
        assert_eq!(report.counters().arrivals, 3);
    }

    #[test]
    fn record_lookup_by_event() {
        let report = Report::new("test", vec![record(3, 0, None, 10)], SimTime::ZERO);
        assert!(report.record_for_event(3).is_some());
        assert!(report.record_for_event(0).is_none());
    }
}
