//! Response-time attribution: the six named components that sum
//! *exactly* to each application's measured response time.
//!
//! These are plain-data types; `nimblock-core::attribution` derives them
//! from a recorded trace via a critical-path walk over each app's
//! lifetime. The decomposition answers the evaluation question behind
//! the paper's Figures 6–9 — *where did the time go?* — with an exact
//! integer identity (no float drift, no unexplained residue):
//!
//! ```text
//! queue_wait + cap_serialization + reconfig + preemption_loss
//!            + compute + pipeline_overlap_gain  ==  response_time
//! ```
//!
//! `pipeline_overlap_gain` is **zero or negative**: when a multi-task
//! application overlaps execution across slots (cross-batch pipelining,
//! paper §4.3), the sum of per-task compute exceeds the wall-clock busy
//! time, and the gain term credits the overlap back.

use nimblock_app::Priority;
use nimblock_ser::{impl_json_struct, Json, ToJson};

/// The six attribution components for one application (or an aggregate
/// over many), in integer microseconds of simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AttributionComponents {
    /// Time pending with no own task running, no own reconfig in
    /// flight, no preempted task waiting, and the CAP idle: pure
    /// scheduler queueing.
    pub queue_wait: u64,
    /// Time blocked while the (serial) configuration access port was
    /// busy reconfiguring *someone* — the paper's CAP-serialization tax.
    pub cap_serialization: u64,
    /// Time spent in partial reconfigurations for this app's own tasks.
    pub reconfig: u64,
    /// Sum of this app's task item run times (double-counts overlap;
    /// see `pipeline_overlap_gain`).
    pub compute: u64,
    /// Time a previously-running task of this app sat evicted after a
    /// batch-preemption, waiting to be re-admitted.
    pub preemption_loss: u64,
    /// Wall-clock time *saved* by overlapping task execution across
    /// slots; `<= 0` (busy-union minus per-task compute sum).
    pub pipeline_overlap_gain: i64,
}

impl_json_struct!(AttributionComponents {
    queue_wait, cap_serialization, reconfig, compute, preemption_loss,
    pipeline_overlap_gain,
});

impl AttributionComponents {
    /// The exact signed sum of all six components, in microseconds.
    pub fn sum_micros(&self) -> i128 {
        self.queue_wait as i128
            + self.cap_serialization as i128
            + self.reconfig as i128
            + self.compute as i128
            + self.preemption_loss as i128
            + self.pipeline_overlap_gain as i128
    }

    /// `true` iff the components sum exactly to `response_micros`.
    pub fn sums_to(&self, response_micros: u64) -> bool {
        self.sum_micros() == response_micros as i128
    }

    /// Component-wise addition (aggregation across apps / shards).
    pub fn merged(self, other: AttributionComponents) -> AttributionComponents {
        AttributionComponents {
            queue_wait: self.queue_wait + other.queue_wait,
            cap_serialization: self.cap_serialization + other.cap_serialization,
            reconfig: self.reconfig + other.reconfig,
            compute: self.compute + other.compute,
            preemption_loss: self.preemption_loss + other.preemption_loss,
            pipeline_overlap_gain: self.pipeline_overlap_gain + other.pipeline_overlap_gain,
        }
    }

    /// `(label, signed value in µs)` pairs in canonical render order.
    pub fn named(&self) -> [(&'static str, i64); 6] {
        [
            ("queue_wait", self.queue_wait as i64),
            ("cap_serialization", self.cap_serialization as i64),
            ("reconfig", self.reconfig as i64),
            ("compute", self.compute as i64),
            ("preemption_loss", self.preemption_loss as i64),
            ("pipeline_overlap_gain", self.pipeline_overlap_gain),
        ]
    }
}

/// Attribution for one retired application.
#[derive(Debug, Clone, PartialEq)]
pub struct AppAttribution {
    /// Arrival event index (stable across schedulers).
    pub event_index: usize,
    /// Benchmark name.
    pub app_name: String,
    /// Priority class of the arrival.
    pub priority: Priority,
    /// Measured response time, microseconds (arrival to retire).
    pub response_micros: u64,
    /// The six components; sum exactly to `response_micros`.
    pub components: AttributionComponents,
}

impl_json_struct!(AppAttribution {
    event_index, app_name, priority, response_micros, components,
});

impl AppAttribution {
    /// `true` iff components sum exactly to the measured response time.
    pub fn is_exact(&self) -> bool {
        self.components.sums_to(self.response_micros)
    }
}

/// Aggregate attribution over one priority class.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PriorityAttribution {
    /// Paper priority weight (1 = Low, 3 = Medium, 9 = High).
    pub weight: u32,
    /// Number of retired applications in this class.
    pub apps: u64,
    /// Total response time of the class, microseconds.
    pub response_micros: u64,
    /// Component-wise totals for the class.
    pub components: AttributionComponents,
}

impl_json_struct!(PriorityAttribution {
    weight, apps, response_micros, components,
});

/// A whole-run attribution summary: per-app decompositions plus totals
/// and per-priority-class aggregates (always in fixed weight order
/// 1, 3, 9 so cluster merges and renderings are byte-stable).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AttributionSummary {
    /// Per-app attributions in event-index order.
    pub apps: Vec<AppAttribution>,
    /// Component-wise totals over every app.
    pub totals: AttributionComponents,
    /// Total response time over every app, microseconds.
    pub response_micros: u64,
    /// Per-priority aggregates, fixed order: weights 1, 3, 9.
    pub per_priority: Vec<PriorityAttribution>,
}

impl_json_struct!(AttributionSummary {
    apps, totals, response_micros, per_priority,
});

impl AttributionSummary {
    /// Builds a summary from per-app attributions: sorts by event
    /// index, sums totals, and buckets by priority weight (1/3/9).
    pub fn from_apps(mut apps: Vec<AppAttribution>) -> Self {
        apps.sort_by_key(|a| a.event_index);
        let mut totals = AttributionComponents::default();
        let mut response_micros = 0u64;
        let mut per_priority: Vec<PriorityAttribution> = Priority::ALL
            .iter()
            .map(|p| PriorityAttribution {
                weight: p.weight(),
                ..PriorityAttribution::default()
            })
            .collect();
        for app in &apps {
            totals = totals.merged(app.components);
            response_micros += app.response_micros;
            let bucket = per_priority
                .iter_mut()
                .find(|b| b.weight == app.priority.weight())
                .expect("priority weight is one of 1/3/9");
            bucket.apps += 1;
            bucket.response_micros += app.response_micros;
            bucket.components = bucket.components.merged(app.components);
        }
        AttributionSummary {
            apps,
            totals,
            response_micros,
            per_priority,
        }
    }

    /// `true` iff every app's components sum exactly to its measured
    /// response time *and* the totals sum to the total response time.
    pub fn is_exact(&self) -> bool {
        self.apps.iter().all(AppAttribution::is_exact)
            && self.totals.sums_to(self.response_micros)
    }

    /// Merges another summary into this one (cluster shard merge):
    /// concatenates apps (re-sorted by event index) and re-derives
    /// totals and priority buckets, so merging in any shard order
    /// yields the same summary.
    pub fn merged(self, other: AttributionSummary) -> AttributionSummary {
        let mut apps = self.apps;
        apps.extend(other.apps);
        AttributionSummary::from_apps(apps)
    }

    /// The `n` slowest apps by response time (ties broken by event
    /// index, so the order is deterministic).
    pub fn slowest(&self, n: usize) -> Vec<&AppAttribution> {
        let mut sorted: Vec<&AppAttribution> = self.apps.iter().collect();
        sorted.sort_by(|a, b| {
            b.response_micros
                .cmp(&a.response_micros)
                .then(a.event_index.cmp(&b.event_index))
        });
        sorted.truncate(n);
        sorted
    }
}

/// Renders component totals as a share table row: `label value share%`.
pub fn component_shares(components: &AttributionComponents, response_micros: u64) -> Vec<(String, i64, f64)> {
    components
        .named()
        .iter()
        .map(|&(label, value)| {
            let share = if response_micros == 0 {
                0.0
            } else {
                value as f64 / response_micros as f64
            };
            (label.to_owned(), value, share)
        })
        .collect()
}

// Serialize Priority through its existing ToJson (string form) — the
// impl_json_struct! above requires it; nimblock-app already provides it.
#[allow(dead_code)]
fn _assert_priority_json(p: &Priority) -> Json {
    p.to_json()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn app(event_index: usize, priority: Priority, response: u64) -> AppAttribution {
        AppAttribution {
            event_index,
            app_name: format!("app{event_index}"),
            priority,
            response_micros: response,
            components: AttributionComponents {
                queue_wait: response / 2,
                cap_serialization: response / 4,
                reconfig: 0,
                compute: response - response / 2 - response / 4,
                preemption_loss: 0,
                pipeline_overlap_gain: 0,
            },
        }
    }

    #[test]
    fn components_sum_identity() {
        let c = AttributionComponents {
            queue_wait: 10,
            cap_serialization: 5,
            reconfig: 80,
            compute: 120,
            preemption_loss: 7,
            pipeline_overlap_gain: -22,
        };
        assert_eq!(c.sum_micros(), 200);
        assert!(c.sums_to(200));
        assert!(!c.sums_to(199));
    }

    #[test]
    fn summary_buckets_by_priority_in_fixed_order() {
        let summary = AttributionSummary::from_apps(vec![
            app(1, Priority::High, 100),
            app(0, Priority::Low, 200),
            app(2, Priority::Medium, 50),
        ]);
        assert_eq!(summary.apps[0].event_index, 0, "sorted by event index");
        let weights: Vec<u32> = summary.per_priority.iter().map(|b| b.weight).collect();
        assert_eq!(weights, vec![1, 3, 9]);
        assert_eq!(summary.per_priority[0].response_micros, 200);
        assert_eq!(summary.per_priority[2].apps, 1);
        assert_eq!(summary.response_micros, 350);
        assert!(summary.is_exact());
    }

    #[test]
    fn merge_is_shard_order_invariant() {
        let a = AttributionSummary::from_apps(vec![app(0, Priority::Low, 10)]);
        let b = AttributionSummary::from_apps(vec![app(1, Priority::High, 20)]);
        let ab = a.clone().merged(b.clone());
        let ba = b.merged(a);
        assert_eq!(ab, ba);
        assert_eq!(ab.apps.len(), 2);
    }

    #[test]
    fn slowest_orders_deterministically() {
        let summary = AttributionSummary::from_apps(vec![
            app(0, Priority::Low, 100),
            app(1, Priority::Low, 300),
            app(2, Priority::Low, 300),
        ]);
        let top: Vec<usize> = summary.slowest(2).iter().map(|a| a.event_index).collect();
        assert_eq!(top, vec![1, 2], "ties broken by event index");
    }

    #[test]
    fn summary_json_roundtrips() {
        let summary = AttributionSummary::from_apps(vec![app(0, Priority::Medium, 64)]);
        let text = nimblock_ser::to_string_pretty(&summary);
        let parsed: AttributionSummary = nimblock_ser::from_str(&text).unwrap();
        assert_eq!(parsed, summary);
    }
}
