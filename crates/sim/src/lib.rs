//! Deterministic discrete-event simulation engine.
//!
//! This crate is the clock-and-calendar substrate for the Nimblock FPGA
//! virtualization stack. The paper evaluates Nimblock on a physical ZCU106
//! board, timing applications with the CPU clock of the embedded ARM core;
//! this reproduction replaces the physical clock with a virtual one so that
//! every experiment is exactly reproducible.
//!
//! The crate deliberately knows nothing about FPGAs or schedulers. It
//! provides three things:
//!
//! * [`SimTime`] and [`SimDuration`] — microsecond-resolution newtypes for
//!   points in and spans of virtual time,
//! * [`EventQueue`] — a priority queue of timestamped events with
//!   deterministic FIFO ordering among same-timestamp events, and
//! * [`Simulation`] — a driver that pops events in order and hands them to a
//!   [`Handler`], which may push further events.
//!
//! # Example
//!
//! ```
//! use nimblock_sim::{EventQueue, Handler, SimDuration, SimTime, Simulation};
//!
//! struct Counter {
//!     fired: u32,
//! }
//!
//! impl Handler<&'static str> for Counter {
//!     fn handle(&mut self, now: SimTime, event: &'static str, queue: &mut EventQueue<&'static str>) {
//!         self.fired += 1;
//!         if event == "tick" && now < SimTime::from_millis(5) {
//!             queue.push(now + SimDuration::from_millis(1), "tick");
//!         }
//!     }
//! }
//!
//! let mut sim = Simulation::new(Counter { fired: 0 });
//! sim.queue_mut().push(SimTime::ZERO, "tick");
//! sim.run();
//! assert_eq!(sim.handler().fired, 6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod calendar;
mod engine;
mod queue;
mod time;

pub use engine::{Handler, Simulation};
pub use queue::EventQueue;
pub use time::{SimDuration, SimTime};
