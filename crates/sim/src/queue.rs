//! Timestamped event queue with deterministic ordering.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::SimTime;

/// A priority queue of timestamped events.
///
/// Events pop in timestamp order; events that share a timestamp pop in the
/// order they were pushed (FIFO). The tie-break makes whole-system runs
/// reproducible: a simulation driven by this queue and a deterministic
/// handler always produces the same schedule.
///
/// # Example
///
/// ```
/// use nimblock_sim::{EventQueue, SimTime};
///
/// let mut queue = EventQueue::new();
/// queue.push(SimTime::from_millis(2), "late");
/// queue.push(SimTime::from_millis(1), "early");
/// queue.push(SimTime::from_millis(1), "early-second");
///
/// assert_eq!(queue.pop(), Some((SimTime::from_millis(1), "early")));
/// assert_eq!(queue.pop(), Some((SimTime::from_millis(1), "early-second")));
/// assert_eq!(queue.pop(), Some((SimTime::from_millis(2), "late")));
/// assert_eq!(queue.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest (time, seq) wins.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` to fire at time `at`.
    pub fn push(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Removes and returns the earliest event, or `None` if the queue is empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|entry| (entry.at, entry.event))
    }

    /// Returns the timestamp of the earliest pending event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|entry| entry.at)
    }

    /// Returns the number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> Extend<(SimTime, E)> for EventQueue<E> {
    fn extend<I: IntoIterator<Item = (SimTime, E)>>(&mut self, iter: I) {
        for (at, event) in iter {
            self.push(at, event);
        }
    }
}

impl<E> FromIterator<(SimTime, E)> for EventQueue<E> {
    fn from_iter<I: IntoIterator<Item = (SimTime, E)>>(iter: I) -> Self {
        let mut queue = EventQueue::new();
        queue.extend(iter);
        queue
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut queue = EventQueue::new();
        queue.push(SimTime::from_millis(30), 3);
        queue.push(SimTime::from_millis(10), 1);
        queue.push(SimTime::from_millis(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| queue.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn same_timestamp_is_fifo() {
        let mut queue = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..100 {
            queue.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| queue.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_time_does_not_remove() {
        let mut queue = EventQueue::new();
        queue.push(SimTime::from_millis(7), ());
        assert_eq!(queue.peek_time(), Some(SimTime::from_millis(7)));
        assert_eq!(queue.len(), 1);
    }

    #[test]
    fn clear_empties_the_queue() {
        let mut queue = EventQueue::new();
        queue.push(SimTime::ZERO, ());
        queue.clear();
        assert!(queue.is_empty());
        assert_eq!(queue.pop(), None);
    }

    #[test]
    fn collects_from_iterator() {
        let queue: EventQueue<u8> = vec![
            (SimTime::from_millis(2), 2),
            (SimTime::from_millis(1), 1),
        ]
        .into_iter()
        .collect();
        assert_eq!(queue.len(), 2);
        assert_eq!(queue.peek_time(), Some(SimTime::from_millis(1)));
    }

    #[test]
    fn fifo_survives_interleaved_pops() {
        let mut queue = EventQueue::new();
        let t = SimTime::from_millis(1);
        queue.push(t, 'a');
        queue.push(t, 'b');
        assert_eq!(queue.pop(), Some((t, 'a')));
        queue.push(t, 'c');
        assert_eq!(queue.pop(), Some((t, 'b')));
        assert_eq!(queue.pop(), Some((t, 'c')));
    }
}
