//! Timestamped event queue with deterministic ordering.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::calendar::Calendar;
use crate::SimTime;

/// A priority queue of timestamped events.
///
/// Events pop in timestamp order; events that share a timestamp pop in the
/// order they were pushed (FIFO). The tie-break makes whole-system runs
/// reproducible: a simulation driven by this queue and a deterministic
/// handler always produces the same schedule.
///
/// Two backends implement this contract. The default is a two-level
/// calendar queue — a ring of flat, bucketed event lists over the near
/// future plus an overflow heap for the far future — whose push and pop
/// are O(1) amortized on the hypervisor's dense event streams (see
/// DESIGN.md §14). [`EventQueue::legacy_heap`] builds the original
/// `BinaryHeap` implementation, retained as the differential oracle until
/// the calendar queue's byte-identity record lets it be deleted.
///
/// # Example
///
/// ```
/// use nimblock_sim::{EventQueue, SimTime};
///
/// let mut queue = EventQueue::new();
/// queue.push(SimTime::from_millis(2), "late");
/// queue.push(SimTime::from_millis(1), "early");
/// queue.push(SimTime::from_millis(1), "early-second");
///
/// assert_eq!(queue.pop(), Some((SimTime::from_millis(1), "early")));
/// assert_eq!(queue.pop(), Some((SimTime::from_millis(1), "early-second")));
/// assert_eq!(queue.pop(), Some((SimTime::from_millis(2), "late")));
/// assert_eq!(queue.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    backend: Backend<E>,
    next_seq: u64,
}

#[derive(Debug, Clone)]
enum Backend<E> {
    Calendar(Calendar<E>),
    Legacy(BinaryHeap<Entry<E>>),
}

#[derive(Debug, Clone)]
pub(crate) struct Entry<E> {
    pub(crate) at: SimTime,
    pub(crate) seq: u64,
    pub(crate) event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest (time, seq) wins.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> EventQueue<E> {
    /// Virtual-time width of one calendar bucket, in microseconds. Exposed
    /// so boundary tests can aim events exactly at bucket edges.
    pub const CALENDAR_BUCKET_MICROS: u64 = crate::calendar::BUCKET_WIDTH_MICROS;

    /// Virtual-time span of the calendar's near window, in microseconds.
    /// Events this far past the window start overflow into the far heap.
    pub const CALENDAR_SPAN_MICROS: u64 = crate::calendar::SPAN_MICROS;

    /// Creates an empty queue backed by the calendar structure.
    pub fn new() -> Self {
        EventQueue {
            backend: Backend::Calendar(Calendar::new()),
            next_seq: 0,
        }
    }

    /// Creates an empty queue backed by the original binary heap.
    ///
    /// The heap backend is the differential oracle for the calendar queue
    /// (`tests/engine_differential.rs` runs every workload through both and
    /// asserts byte-identical output); it is not meant for production use
    /// and goes away once the calendar queue's record justifies retiring it
    /// (DESIGN.md §14 documents the procedure).
    pub fn legacy_heap() -> Self {
        EventQueue {
            backend: Backend::Legacy(BinaryHeap::new()),
            next_seq: 0,
        }
    }

    /// Returns a short static name for the active backend, for bench and
    /// telemetry labels.
    pub fn backend_name(&self) -> &'static str {
        match &self.backend {
            Backend::Calendar(_) => "calendar",
            Backend::Legacy(_) => "legacy-heap",
        }
    }

    /// Returns `(near, far)` event counts: the calendar's in-window ring
    /// population and its overflow heap. The legacy heap reports everything
    /// as `far`.
    pub fn backend_depths(&self) -> (usize, usize) {
        match &self.backend {
            Backend::Calendar(calendar) => calendar.depths(),
            Backend::Legacy(heap) => (0, heap.len()),
        }
    }

    /// Schedules `event` to fire at time `at`.
    pub fn push(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        match &mut self.backend {
            Backend::Calendar(calendar) => calendar.push(at, seq, event),
            // The legacy binary heap exists for differential testing of
            // the calendar backend, not production runs; its amortized
            // doubling is acceptable there. nimblock: allow(hot-path-no-alloc)
            Backend::Legacy(heap) => heap.push(Entry { at, seq, event }),
        }
    }

    /// Removes and returns the earliest event, or `None` if the queue is empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.pop_at_or_before(SimTime::MAX)
    }

    /// Removes and returns the earliest event if its timestamp is at or
    /// before `deadline`; `None` if the queue is empty or the earliest
    /// event is later. The single-scan equivalent of a `peek_time` check
    /// followed by `pop` — the shape of [`crate::Simulation::run_until`]'s
    /// inner loop.
    pub fn pop_at_or_before(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        match &mut self.backend {
            Backend::Calendar(calendar) => calendar.pop_at_or_before(deadline),
            Backend::Legacy(heap) => {
                if heap.peek().is_some_and(|entry| entry.at <= deadline) {
                    heap.pop().map(|entry| (entry.at, entry.event))
                } else {
                    None
                }
            }
        }
    }

    /// Returns the timestamp of the earliest pending event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        match &self.backend {
            Backend::Calendar(calendar) => calendar.peek_time(),
            Backend::Legacy(heap) => heap.peek().map(|entry| entry.at),
        }
    }

    /// Returns the number of pending events.
    pub fn len(&self) -> usize {
        match &self.backend {
            Backend::Calendar(calendar) => calendar.len(),
            Backend::Legacy(heap) => heap.len(),
        }
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        match &self.backend {
            Backend::Calendar(calendar) => calendar.is_empty(),
            Backend::Legacy(heap) => heap.is_empty(),
        }
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        match &mut self.backend {
            Backend::Calendar(calendar) => calendar.clear(),
            Backend::Legacy(heap) => heap.clear(),
        }
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> Extend<(SimTime, E)> for EventQueue<E> {
    fn extend<I: IntoIterator<Item = (SimTime, E)>>(&mut self, iter: I) {
        for (at, event) in iter {
            self.push(at, event);
        }
    }
}

impl<E> FromIterator<(SimTime, E)> for EventQueue<E> {
    fn from_iter<I: IntoIterator<Item = (SimTime, E)>>(iter: I) -> Self {
        let mut queue = EventQueue::new();
        queue.extend(iter);
        queue
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn both_backends() -> [EventQueue<i32>; 2] {
        [EventQueue::new(), EventQueue::legacy_heap()]
    }

    #[test]
    fn pops_in_time_order() {
        for mut queue in both_backends() {
            queue.push(SimTime::from_millis(30), 3);
            queue.push(SimTime::from_millis(10), 1);
            queue.push(SimTime::from_millis(20), 2);
            let order: Vec<i32> = std::iter::from_fn(|| queue.pop().map(|(_, e)| e)).collect();
            assert_eq!(order, vec![1, 2, 3], "backend {}", queue.backend_name());
        }
    }

    #[test]
    fn same_timestamp_is_fifo() {
        for mut queue in both_backends() {
            let t = SimTime::from_millis(5);
            for i in 0..100 {
                queue.push(t, i);
            }
            let order: Vec<i32> = std::iter::from_fn(|| queue.pop().map(|(_, e)| e)).collect();
            assert_eq!(
                order,
                (0..100).collect::<Vec<_>>(),
                "backend {}",
                queue.backend_name()
            );
        }
    }

    #[test]
    fn peek_time_does_not_remove() {
        for mut queue in both_backends() {
            queue.push(SimTime::from_millis(7), 0);
            assert_eq!(queue.peek_time(), Some(SimTime::from_millis(7)));
            assert_eq!(queue.len(), 1);
        }
    }

    #[test]
    fn clear_empties_the_queue() {
        for mut queue in both_backends() {
            queue.push(SimTime::ZERO, 0);
            queue.clear();
            assert!(queue.is_empty());
            assert_eq!(queue.pop(), None);
        }
    }

    #[test]
    fn collects_from_iterator() {
        let queue: EventQueue<u8> = vec![
            (SimTime::from_millis(2), 2),
            (SimTime::from_millis(1), 1),
        ]
        .into_iter()
        .collect();
        assert_eq!(queue.len(), 2);
        assert_eq!(queue.peek_time(), Some(SimTime::from_millis(1)));
    }

    #[test]
    fn fifo_survives_interleaved_pops() {
        for mut queue in [
            EventQueue::<char>::new(),
            EventQueue::<char>::legacy_heap(),
        ] {
            let t = SimTime::from_millis(1);
            queue.push(t, 'a');
            queue.push(t, 'b');
            assert_eq!(queue.pop(), Some((t, 'a')));
            queue.push(t, 'c');
            assert_eq!(queue.pop(), Some((t, 'b')));
            assert_eq!(queue.pop(), Some((t, 'c')));
        }
    }

    #[test]
    fn pop_at_or_before_respects_the_deadline() {
        for mut queue in both_backends() {
            queue.push(SimTime::from_millis(5), 5);
            queue.push(SimTime::from_millis(10), 10);
            assert_eq!(
                queue.pop_at_or_before(SimTime::from_millis(4)),
                None,
                "backend {}",
                queue.backend_name()
            );
            assert_eq!(
                queue.pop_at_or_before(SimTime::from_millis(5)),
                Some((SimTime::from_millis(5), 5))
            );
            assert_eq!(queue.pop_at_or_before(SimTime::from_millis(5)), None);
            assert_eq!(queue.len(), 1);
        }
    }

    #[test]
    fn push_below_the_window_still_pops_first() {
        // A pop at a high timestamp slides the calendar window forward;
        // a later push below the window (legal: only pushes before *popped*
        // time are the handler's bug to avoid) must still pop first.
        for mut queue in both_backends() {
            queue.push(SimTime::from_secs(100), 1);
            assert_eq!(queue.pop(), Some((SimTime::from_secs(100), 1)));
            queue.push(SimTime::from_secs(1), 2);
            queue.push(SimTime::from_secs(200), 3);
            assert_eq!(queue.pop(), Some((SimTime::from_secs(1), 2)));
            assert_eq!(queue.pop(), Some((SimTime::from_secs(200), 3)));
        }
    }

    #[test]
    fn backend_depths_split_near_and_far() {
        let mut queue = EventQueue::new();
        queue.push(SimTime::from_micros(10), 1); // in the initial window
        queue.push(SimTime::from_secs(60), 2); // far beyond the window
        assert_eq!(queue.backend_depths(), (1, 1));
        let mut legacy = EventQueue::legacy_heap();
        legacy.push(SimTime::from_micros(10), 1);
        assert_eq!(legacy.backend_depths(), (0, 1));
    }
}
