//! Simulation driver.

use crate::{EventQueue, SimTime};

/// Reacts to events popped from the queue.
///
/// Handlers receive the current virtual time, the event, and mutable access
/// to the queue so they can schedule follow-up events. A handler must never
/// schedule an event in the past; [`Simulation::run`] checks this and panics,
/// because time travel silently corrupts every downstream metric.
pub trait Handler<E> {
    /// Processes one event occurring at virtual time `now`.
    fn handle(&mut self, now: SimTime, event: E, queue: &mut EventQueue<E>);
}

/// Drives a [`Handler`] over an [`EventQueue`] in timestamp order.
///
/// # Example
///
/// ```
/// use nimblock_sim::{EventQueue, Handler, SimTime, Simulation};
///
/// struct Recorder(Vec<u32>);
/// impl Handler<u32> for Recorder {
///     fn handle(&mut self, _now: SimTime, event: u32, _queue: &mut EventQueue<u32>) {
///         self.0.push(event);
///     }
/// }
///
/// let mut sim = Simulation::new(Recorder(Vec::new()));
/// sim.queue_mut().push(SimTime::from_millis(2), 2);
/// sim.queue_mut().push(SimTime::from_millis(1), 1);
/// sim.run();
/// assert_eq!(sim.handler().0, vec![1, 2]);
/// ```
#[derive(Debug)]
pub struct Simulation<E, H> {
    queue: EventQueue<E>,
    handler: H,
    now: SimTime,
    steps: u64,
    max_queue_depth: usize,
}

impl<E, H: Handler<E>> Simulation<E, H> {
    /// Creates a simulation at time zero with an empty event queue.
    pub fn new(handler: H) -> Self {
        Simulation::with_queue(handler, EventQueue::new())
    }

    /// Creates a simulation at time zero over a caller-supplied queue —
    /// typically [`EventQueue::legacy_heap`] when differential-testing the
    /// calendar backend against the original heap.
    pub fn with_queue(handler: H, queue: EventQueue<E>) -> Self {
        Simulation {
            queue,
            handler,
            now: SimTime::ZERO,
            steps: 0,
            max_queue_depth: 0,
        }
    }

    /// Returns the current virtual time (the timestamp of the last event
    /// processed, or zero before any event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Returns the number of events processed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Returns the high-water mark of the event-queue depth, sampled at
    /// every [`Simulation::step`] before the pop. A proxy for how much
    /// concurrent future work the model keeps in flight.
    pub fn max_queue_depth(&self) -> usize {
        self.max_queue_depth
    }

    /// Returns a shared reference to the handler.
    pub fn handler(&self) -> &H {
        &self.handler
    }

    /// Returns an exclusive reference to the handler.
    pub fn handler_mut(&mut self) -> &mut H {
        &mut self.handler
    }

    /// Returns a shared reference to the event queue.
    pub fn queue(&self) -> &EventQueue<E> {
        &self.queue
    }

    /// Returns an exclusive reference to the event queue, typically to seed
    /// initial events before calling [`Simulation::run`].
    pub fn queue_mut(&mut self) -> &mut EventQueue<E> {
        &mut self.queue
    }

    /// Processes a single event, returning `false` when the queue is empty.
    ///
    /// # Panics
    ///
    /// Panics if the next event is timestamped before the current virtual
    /// time, which would mean a handler scheduled an event in the past.
    pub fn step(&mut self) -> bool {
        self.max_queue_depth = self.max_queue_depth.max(self.queue.len());
        let Some((at, event)) = self.queue.pop() else {
            return false;
        };
        assert!(
            at >= self.now,
            "event scheduled in the past: {at} < {now}",
            now = self.now
        );
        self.now = at;
        self.steps += 1;
        self.handler.handle(at, event, &mut self.queue);
        true
    }

    /// Runs until the event queue drains, returning the final virtual time.
    pub fn run(&mut self) -> SimTime {
        while self.step() {}
        self.now
    }

    /// Runs until the queue drains or the next event would occur after
    /// `deadline`, returning the final virtual time. Events at exactly
    /// `deadline` are processed.
    pub fn run_until(&mut self, deadline: SimTime) -> SimTime {
        // One queue scan per event instead of peek + step's pop. Depth is
        // sampled as len-after-pop + 1, which equals step's pre-pop sample.
        while let Some((at, event)) = self.queue.pop_at_or_before(deadline) {
            self.max_queue_depth = self.max_queue_depth.max(self.queue.len() + 1);
            assert!(
                at >= self.now,
                "event scheduled in the past: {at} < {now}",
                now = self.now
            );
            self.now = at;
            self.steps += 1;
            self.handler.handle(at, event, &mut self.queue);
        }
        self.now
    }

    /// Consumes the simulation and returns the handler.
    pub fn into_handler(self) -> H {
        self.handler
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimDuration;

    struct Chain {
        seen: Vec<(SimTime, u32)>,
        spawn_until: u32,
    }

    impl Handler<u32> for Chain {
        fn handle(&mut self, now: SimTime, event: u32, queue: &mut EventQueue<u32>) {
            self.seen.push((now, event));
            if event < self.spawn_until {
                queue.push(now + SimDuration::from_millis(10), event + 1);
            }
        }
    }

    fn chain_sim(spawn_until: u32) -> Simulation<u32, Chain> {
        let mut sim = Simulation::new(Chain {
            seen: Vec::new(),
            spawn_until,
        });
        sim.queue_mut().push(SimTime::ZERO, 0);
        sim
    }

    #[test]
    fn run_drains_chained_events() {
        let mut sim = chain_sim(4);
        let end = sim.run();
        assert_eq!(end, SimTime::from_millis(40));
        assert_eq!(sim.handler().seen.len(), 5);
        assert_eq!(sim.steps(), 5);
    }

    #[test]
    fn run_until_stops_at_deadline_inclusive() {
        let mut sim = chain_sim(100);
        sim.run_until(SimTime::from_millis(30));
        assert_eq!(sim.handler().seen.len(), 4); // events at 0, 10, 20, 30 ms
        assert_eq!(sim.now(), SimTime::from_millis(30));
        assert_eq!(sim.queue().len(), 1); // the 40 ms event is still pending
    }

    #[test]
    fn queue_depth_high_water_mark_is_tracked() {
        let mut sim = Simulation::new(Chain {
            seen: Vec::new(),
            spawn_until: 0,
        });
        // Three events pending at once: depth peaks at 3.
        sim.queue_mut().push(SimTime::from_millis(1), 0);
        sim.queue_mut().push(SimTime::from_millis(2), 0);
        sim.queue_mut().push(SimTime::from_millis(3), 0);
        sim.run();
        assert_eq!(sim.max_queue_depth(), 3);
    }

    #[test]
    fn step_returns_false_on_empty_queue() {
        let mut sim = Simulation::new(Chain {
            seen: Vec::new(),
            spawn_until: 0,
        });
        assert!(!sim.step());
        assert_eq!(sim.now(), SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "event scheduled in the past")]
    fn past_event_panics() {
        struct BadHandler;
        impl Handler<u8> for BadHandler {
            fn handle(&mut self, _now: SimTime, event: u8, queue: &mut EventQueue<u8>) {
                if event == 0 {
                    queue.push(SimTime::ZERO, 1);
                }
            }
        }
        let mut sim = Simulation::new(BadHandler);
        sim.queue_mut().push(SimTime::from_millis(5), 0);
        sim.run();
    }

    #[test]
    fn into_handler_returns_final_state() {
        let mut sim = chain_sim(2);
        sim.run();
        let handler = sim.into_handler();
        assert_eq!(handler.seen.last().map(|&(_, e)| e), Some(2));
    }
}
