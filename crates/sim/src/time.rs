//! Virtual-time newtypes.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use nimblock_ser::impl_json_newtype;

/// A point in virtual time, measured in microseconds since simulation start.
///
/// `SimTime` is an absolute timestamp; spans of time are represented by
/// [`SimDuration`]. The distinction mirrors `std::time::Instant` versus
/// `std::time::Duration` and prevents the classic bug of adding two
/// timestamps.
///
/// # Example
///
/// ```
/// use nimblock_sim::{SimDuration, SimTime};
///
/// let start = SimTime::from_millis(400);
/// let end = start + SimDuration::from_millis(80);
/// assert_eq!(end - start, SimDuration::from_millis(80));
/// assert_eq!(end.as_micros(), 480_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl_json_newtype!(SimTime);

/// A span of virtual time, measured in microseconds.
///
/// # Example
///
/// ```
/// use nimblock_sim::SimDuration;
///
/// let reconfig = SimDuration::from_millis(80);
/// assert_eq!(reconfig * 3, SimDuration::from_millis(240));
/// assert_eq!(reconfig.as_secs_f64(), 0.08);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl_json_newtype!(SimDuration);

impl SimTime {
    /// The simulation epoch (time zero).
    pub const ZERO: SimTime = SimTime(0);

    /// A timestamp later than any timestamp produced in practice.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a timestamp `micros` microseconds after the epoch.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates a timestamp `millis` milliseconds after the epoch.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000)
    }

    /// Creates a timestamp `secs` seconds after the epoch.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000)
    }

    /// Returns the number of whole microseconds since the epoch.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the number of whole milliseconds since the epoch.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the time since the epoch as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns the span from `earlier` to `self`, or [`SimDuration::ZERO`]
    /// if `earlier` is actually later than `self`.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Returns the span from the epoch to `self`.
    pub const fn elapsed(self) -> SimDuration {
        SimDuration(self.0)
    }

    /// Returns the index of the tumbling window of length `window` that
    /// contains this timestamp: window `w` covers
    /// `[w * window, (w + 1) * window)`. Time-series aggregation keys
    /// every sample by this index, so windows are a pure function of
    /// virtual time.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero — a zero-length window contains no
    /// timestamps.
    pub const fn window_index(self, window: SimDuration) -> u64 {
        assert!(!window.is_zero(), "window length must be non-zero");
        self.0 / window.0
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// A span longer than any span produced in practice.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a span of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Creates a span of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// Creates a span of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000)
    }

    /// Creates a span from fractional seconds, rounding to whole microseconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration seconds must be finite and non-negative, got {secs}"
        );
        SimDuration((secs * 1e6).round() as u64)
    }

    /// Returns the number of whole microseconds in the span.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the number of whole milliseconds in the span.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the span as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns `true` if the span is empty.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies the span by an integer factor, saturating at the maximum.
    pub const fn saturating_mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor))
    }

    /// Returns the ratio of `self` to `other` as a float.
    ///
    /// Returns `0.0` when `other` is zero; callers comparing shares of a
    /// total want an empty total to contribute nothing, not a NaN.
    pub fn ratio(self, other: SimDuration) -> f64 {
        if other.is_zero() {
            0.0
        } else {
            self.0 as f64 / other.0 as f64
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;

    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub for SimTime {
    type Output = SimDuration;

    /// Returns the span from `rhs` to `self`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] when ordering is not guaranteed.
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;

    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;

    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_constructors_agree() {
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1_000));
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1_000));
        assert_eq!(SimDuration::from_secs(2).as_millis(), 2_000);
    }

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_millis(500);
        let d = SimDuration::from_millis(80);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        let early = SimTime::from_millis(10);
        let late = SimTime::from_millis(20);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_millis(10));
    }

    #[test]
    fn duration_from_secs_f64_rounds() {
        assert_eq!(SimDuration::from_secs_f64(0.0000015).as_micros(), 2);
        assert_eq!(SimDuration::from_secs_f64(0.08), SimDuration::from_millis(80));
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn duration_from_negative_secs_panics() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn duration_ratio_handles_zero_denominator() {
        let d = SimDuration::from_millis(5);
        assert_eq!(d.ratio(SimDuration::ZERO), 0.0);
        assert!((d.ratio(SimDuration::from_millis(10)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn duration_sum_over_iterator() {
        let total: SimDuration = (1..=4).map(SimDuration::from_millis).sum();
        assert_eq!(total, SimDuration::from_millis(10));
    }

    #[test]
    fn display_formats_as_seconds() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500000s");
        assert_eq!(SimDuration::from_micros(80_000).to_string(), "0.080000s");
    }

    #[test]
    fn window_index_tumbles_on_exact_boundaries() {
        let w = SimDuration::from_millis(10);
        assert_eq!(SimTime::ZERO.window_index(w), 0);
        assert_eq!(SimTime::from_micros(9_999).window_index(w), 0);
        assert_eq!(SimTime::from_micros(10_000).window_index(w), 1);
        assert_eq!(SimTime::from_millis(25).window_index(w), 2);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn window_index_rejects_zero_windows() {
        let _ = SimTime::from_millis(1).window_index(SimDuration::ZERO);
    }

    #[test]
    fn ordering_is_chronological() {
        assert!(SimTime::ZERO < SimTime::from_micros(1));
        assert!(SimDuration::from_millis(1) < SimDuration::from_secs(1));
    }
}
