//! The two-level calendar backend of [`crate::EventQueue`].
//!
//! Events in the *near window* — a ring of [`BUCKET_COUNT`] flat, unsorted
//! buckets of [`BUCKET_WIDTH_MICROS`] µs each — are pushed by integer
//! virtual time into their bucket in O(1). The earliest pending event is
//! always in the first non-empty bucket at or after the window start, so a
//! pop scans forward to that bucket and takes its (time, seq) minimum with
//! a `swap_remove`; FIFO order among same-timestamp events is encoded in
//! the sequence number, not in bucket position, so the swap is safe.
//!
//! Events beyond the window (and the rare event pushed *behind* it, which
//! the [`crate::EventQueue`] contract permits) live in a *far* overflow
//! heap ordered like the legacy queue. When the near window drains, the
//! window jumps straight to the far minimum's bucket and every far event
//! that now fits the window migrates into the ring — so a sparse far
//! future costs one migration, not one ring lap per empty bucket.
//!
//! The window is sized to cover the hypervisor's densest horizon (the
//! 400 ms scheduling tick plus typical item latencies), keeping the far
//! heap nearly empty in steady state: pushes and pops are then O(bucket)
//! with buckets holding a handful of events each.

use std::collections::BinaryHeap;

use crate::queue::Entry;
use crate::SimTime;

/// log2 of the bucket width: each bucket covers 1024 µs of virtual time.
pub(crate) const BUCKET_BITS: u32 = 10;

/// Buckets in the near ring. With [`BUCKET_BITS`] = 10 the ring spans
/// ~524 ms — comfortably past the 400 ms scheduling tick, so steady-state
/// hypervisor traffic never touches the far heap.
pub(crate) const BUCKET_COUNT: usize = 512;

/// Width of one bucket in microseconds.
pub(crate) const BUCKET_WIDTH_MICROS: u64 = 1 << BUCKET_BITS;

/// Virtual-time span of the whole near ring in microseconds.
pub(crate) const SPAN_MICROS: u64 = (BUCKET_COUNT as u64) << BUCKET_BITS;

/// One near-ring entry: (time in µs, push sequence, event).
type Slot<E> = (u64, u64, E);

#[derive(Debug, Clone)]
pub(crate) struct Calendar<E> {
    /// The near ring. Bucket `(t >> BUCKET_BITS) % BUCKET_COUNT` holds the
    /// events of `[t_floor, t_floor + width)`; unsorted within a bucket.
    buckets: Vec<Vec<Slot<E>>>,
    /// Total events across all near buckets.
    near_len: usize,
    /// Bucket-aligned lower edge of the near window. Every near event's
    /// time is in `[window_start, window_start + SPAN_MICROS)`.
    window_start: u64,
    /// Overflow heap for events outside the near window, ordered earliest
    /// (time, seq) first like the legacy queue.
    far: BinaryHeap<Entry<E>>,
}

impl<E> Calendar<E> {
    pub(crate) fn new() -> Self {
        Calendar {
            buckets: std::iter::repeat_with(Vec::new).take(BUCKET_COUNT).collect(),
            near_len: 0,
            window_start: 0,
            far: BinaryHeap::new(),
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.near_len + self.far.len()
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.near_len == 0 && self.far.is_empty()
    }

    /// Returns (near-ring events, far-heap events) for observability.
    pub(crate) fn depths(&self) -> (usize, usize) {
        (self.near_len, self.far.len())
    }

    pub(crate) fn clear(&mut self) {
        for bucket in &mut self.buckets {
            bucket.clear();
        }
        self.near_len = 0;
        self.far.clear();
    }

    fn window_end(&self) -> u64 {
        self.window_start.saturating_add(SPAN_MICROS)
    }

    fn bucket_index(micros: u64) -> usize {
        ((micros >> BUCKET_BITS) as usize) & (BUCKET_COUNT - 1)
    }

    pub(crate) fn push(&mut self, at: SimTime, seq: u64, event: E) {
        let micros = at.as_micros();
        if micros >= self.window_start && micros < self.window_end() {
            // Buckets are drained, never dropped: each keeps its high-water
            // capacity, so steady state stops growing after warm-up.
            // nimblock: allow(hot-path-no-alloc)
            self.buckets[Self::bucket_index(micros)].push((micros, seq, event));
            self.near_len += 1;
        } else {
            // Beyond the window, or behind it (legal per the queue
            // contract, e.g. interleaved push/pop below the last pop).
            // The far heap is near-empty in steady state (only
            // horizon-crossing events land here). nimblock: allow(hot-path-no-alloc)
            self.far.push(Entry { at, seq, event });
        }
    }

    /// Removes and returns the earliest event whose time is at or before
    /// `deadline`; `None` if none qualifies.
    pub(crate) fn pop_at_or_before(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        if self.near_len == 0 {
            if self.far.is_empty() {
                return None;
            }
            self.jump_to_far_min();
        }
        let (bucket, pos) = self.near_min();
        let (at, seq) = {
            let slot = &self.buckets[bucket][pos];
            (slot.0, slot.1)
        };
        // The far root is the only event outside the ring that can beat
        // the near minimum (an out-of-window push, or a migration the
        // window has since caught up to).
        let far_wins = self
            .far
            .peek()
            .is_some_and(|front| (front.at.as_micros(), front.seq) < (at, seq));
        if far_wins {
            let front = self.far.peek().expect("far root compared above");
            if front.at > deadline {
                return None;
            }
            let front = self.far.pop().expect("far root compared above");
            return Some((front.at, front.event));
        }
        if at > deadline.as_micros() {
            return None;
        }
        let (_, _, event) = self.buckets[bucket].swap_remove(pos);
        self.near_len -= 1;
        Some((SimTime::from_micros(at), event))
    }

    /// Returns the earliest pending timestamp without removing anything.
    pub(crate) fn peek_time(&self) -> Option<SimTime> {
        let mut best: Option<(u64, u64)> = None;
        if self.near_len > 0 {
            let mut edge = self.window_start;
            for _ in 0..BUCKET_COUNT {
                let bucket = &self.buckets[Self::bucket_index(edge)];
                if let Some(min) = bucket.iter().map(|slot| (slot.0, slot.1)).min() {
                    best = Some(min);
                    break;
                }
                edge = edge.saturating_add(BUCKET_WIDTH_MICROS);
            }
        }
        if let Some(front) = self.far.peek() {
            let key = (front.at.as_micros(), front.seq);
            if best.is_none_or(|b| key < b) {
                best = Some(key);
            }
        }
        best.map(|(micros, _)| SimTime::from_micros(micros))
    }

    /// Finds the (bucket, position) of the near minimum, advancing the
    /// window start over empty buckets so later calls resume there.
    ///
    /// Requires `near_len > 0`.
    fn near_min(&mut self) -> (usize, usize) {
        debug_assert!(self.near_len > 0, "near_min on an empty ring");
        loop {
            let bucket = Self::bucket_index(self.window_start);
            if !self.buckets[bucket].is_empty() {
                let slots = &self.buckets[bucket];
                let mut best = 0;
                for i in 1..slots.len() {
                    if (slots[i].0, slots[i].1) < (slots[best].0, slots[best].1) {
                        best = i;
                    }
                }
                return (bucket, best);
            }
            self.window_start += BUCKET_WIDTH_MICROS;
        }
    }

    /// The near ring is empty: jump the window to the far minimum's bucket
    /// and migrate every far event that fits the new window into the ring.
    ///
    /// Requires a non-empty far heap. Jumping backwards (after a push
    /// behind the window) is safe precisely because the ring is empty.
    fn jump_to_far_min(&mut self) {
        let target = self
            .far
            .peek()
            .expect("jump_to_far_min with far entries")
            .at
            .as_micros();
        self.window_start = target & !(BUCKET_WIDTH_MICROS - 1);
        let window_end = self.window_end();
        while let Some(front) = self.far.peek() {
            if front.at.as_micros() >= window_end {
                break;
            }
            let Entry { at, seq, event } = self.far.pop().expect("peeked above");
            let micros = at.as_micros();
            // Migration refills previously drained buckets, which retain
            // their capacity. nimblock: allow(hot-path-no-alloc)
            self.buckets[Self::bucket_index(micros)].push((micros, seq, event));
            self.near_len += 1;
        }
        debug_assert!(self.near_len > 0, "migration left the ring empty");
    }
}
