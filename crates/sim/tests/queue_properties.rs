//! Property tests for the event queue and simulation driver, ported to the
//! in-repo `nimblock-check` harness (256 cases per property, replayable via
//! `NIMBLOCK_CHECK_SEED`).

use nimblock_check::{check, prop_assert, prop_assert_eq, Gen};

use nimblock_sim::{EventQueue, Handler, SimDuration, SimTime, Simulation};

#[test]
fn queue_is_a_stable_priority_queue() {
    check("queue_is_a_stable_priority_queue", |g| {
        let entries = g.vec(0..=299, |g| (g.u64(0..=499), g.u32(0..=999)));
        let mut queue = EventQueue::new();
        for (seq, &(at, payload)) in entries.iter().enumerate() {
            queue.push(SimTime::from_millis(at), (payload, seq));
        }
        // Expected order: sort by time, stable (original order for ties).
        let mut expected: Vec<(u64, usize)> = entries
            .iter()
            .enumerate()
            .map(|(seq, &(at, _))| (at, seq))
            .collect();
        expected.sort_by_key(|&(at, seq)| (at, seq));
        let mut popped = Vec::new();
        while let Some((at, (_, seq))) = queue.pop() {
            popped.push((at.as_millis(), seq));
        }
        prop_assert_eq!(popped, expected);
        Ok(())
    });
}

#[test]
fn run_until_is_prefix_of_run() {
    check("run_until_is_prefix_of_run", |g| {
        let delays = g.vec(1..=39, |g| g.u64(1..=49));
        struct Collect(Vec<u64>);
        impl Handler<u64> for Collect {
            fn handle(&mut self, now: SimTime, _e: u64, _q: &mut EventQueue<u64>) {
                self.0.push(now.as_millis());
            }
        }
        let build = || {
            let mut sim = Simulation::new(Collect(Vec::new()));
            let mut t = SimTime::ZERO;
            for &d in &delays {
                t += SimDuration::from_millis(d);
                sim.queue_mut().push(t, 0);
            }
            sim
        };
        let mut full = build();
        full.run();
        let total: u64 = delays.iter().sum();
        let horizon = total / 2;
        let mut partial = build();
        partial.run_until(SimTime::from_millis(horizon));
        let seen = partial.handler().0.clone();
        let all = full.handler().0.clone();
        prop_assert!(seen.len() <= all.len());
        prop_assert_eq!(&all[..seen.len()], &seen[..]);
        prop_assert!(seen.iter().all(|&t| t <= horizon));
        prop_assert!(all[seen.len()..].iter().all(|&t| t > horizon));
        Ok(())
    });
}

/// Fixed-seed regression cases: replay concrete queue contents from pinned
/// seeds so ordering regressions cannot hide behind an unlucky sweep.
#[test]
fn fixed_seed_regressions() {
    for seed in [0u64, 7, 1234, 0x4E1B] {
        let mut g = Gen::from_seed(seed);
        let entries = g.vec(1..=50, |g| (g.u64(0..=20), g.u32(0..=9)));
        let mut queue = EventQueue::new();
        for (seq, &(at, payload)) in entries.iter().enumerate() {
            queue.push(SimTime::from_millis(at), (payload, seq));
        }
        let mut last = (0u64, 0usize);
        while let Some((at, (_, seq))) = queue.pop() {
            let key = (at.as_millis(), seq);
            assert!(key >= last, "seed {seed}: {key:?} after {last:?}");
            last = key;
        }
    }
}
