//! Property tests for the event queue and simulation driver, ported to the
//! in-repo `nimblock-check` harness (256 cases per property, replayable via
//! `NIMBLOCK_CHECK_SEED`).

use nimblock_check::{check, prop_assert, prop_assert_eq, Gen};

use nimblock_sim::{EventQueue, Handler, SimDuration, SimTime, Simulation};

#[test]
fn queue_is_a_stable_priority_queue() {
    check("queue_is_a_stable_priority_queue", |g| {
        let entries = g.vec(0..=299, |g| (g.u64(0..=499), g.u32(0..=999)));
        let mut queue = EventQueue::new();
        for (seq, &(at, payload)) in entries.iter().enumerate() {
            queue.push(SimTime::from_millis(at), (payload, seq));
        }
        // Expected order: sort by time, stable (original order for ties).
        let mut expected: Vec<(u64, usize)> = entries
            .iter()
            .enumerate()
            .map(|(seq, &(at, _))| (at, seq))
            .collect();
        expected.sort_by_key(|&(at, seq)| (at, seq));
        let mut popped = Vec::new();
        while let Some((at, (_, seq))) = queue.pop() {
            popped.push((at.as_millis(), seq));
        }
        prop_assert_eq!(popped, expected);
        Ok(())
    });
}

#[test]
fn run_until_is_prefix_of_run() {
    check("run_until_is_prefix_of_run", |g| {
        let delays = g.vec(1..=39, |g| g.u64(1..=49));
        struct Collect(Vec<u64>);
        impl Handler<u64> for Collect {
            fn handle(&mut self, now: SimTime, _e: u64, _q: &mut EventQueue<u64>) {
                self.0.push(now.as_millis());
            }
        }
        let build = || {
            let mut sim = Simulation::new(Collect(Vec::new()));
            let mut t = SimTime::ZERO;
            for &d in &delays {
                t += SimDuration::from_millis(d);
                sim.queue_mut().push(t, 0);
            }
            sim
        };
        let mut full = build();
        full.run();
        let total: u64 = delays.iter().sum();
        let horizon = total / 2;
        let mut partial = build();
        partial.run_until(SimTime::from_millis(horizon));
        let seen = partial.handler().0.clone();
        let all = full.handler().0.clone();
        prop_assert!(seen.len() <= all.len());
        prop_assert_eq!(&all[..seen.len()], &seen[..]);
        prop_assert!(seen.iter().all(|&t| t <= horizon));
        prop_assert!(all[seen.len()..].iter().all(|&t| t > horizon));
        Ok(())
    });
}

const BUCKET: u64 = EventQueue::<u32>::CALENDAR_BUCKET_MICROS;
const SPAN: u64 = EventQueue::<u32>::CALENDAR_SPAN_MICROS;

/// Pops everything, asserting strictly increasing (time, seq) order, and
/// returns the drained (micros, payload) sequence.
fn drain_monotonic(queue: &mut EventQueue<u64>) -> Vec<(u64, u64)> {
    let mut out = Vec::new();
    let mut last: Option<(u64, u64)> = None;
    while let Some((at, payload)) = queue.pop() {
        let key = (at.as_micros(), payload);
        if let Some(prev) = last {
            assert!(key > prev, "pop order regressed: {key:?} after {prev:?}");
        }
        last = Some(key);
        out.push(key);
    }
    out
}

/// Same-timestamp events keep push order even when the shared timestamp
/// sits exactly on a bucket-rollover edge and neighbors land on both sides
/// of it — the tie-break lives in the sequence number, not the bucket.
#[test]
fn fifo_at_bucket_rollover_boundary() {
    check("fifo_at_bucket_rollover_boundary", |g| {
        // An edge somewhere in the first few windows, always bucket-aligned.
        let edge = g.u64(1..=4 * SPAN / BUCKET) * BUCKET;
        let dup = g.u64(2..=8);
        let mut queue = EventQueue::new();
        let mut payload = 0u64;
        let mut expected = Vec::new();
        for at in [edge - 1, edge, edge + BUCKET] {
            for _ in 0..dup {
                queue.push(SimTime::from_micros(at), payload);
                expected.push((at, payload));
                payload += 1;
            }
        }
        expected.sort_by_key(|&(at, seq)| (at, seq));
        prop_assert_eq!(drain_monotonic(&mut queue), expected);
        Ok(())
    });
}

/// Pop order is globally monotonic in (time, seq) for pushes spanning the
/// near window, the far-future overflow, and multiple window rollovers.
#[test]
fn pop_order_is_monotonic_across_overflow() {
    check("pop_order_is_monotonic_across_overflow", |g| {
        let mut queue = EventQueue::new();
        let mut model = Vec::new();
        let n = g.u64(1..=150);
        for payload in 0..n {
            // Up to ~4 near windows out: most pushes are in-window, a solid
            // fraction overflows into the far heap.
            let at = g.u64(0..=4 * SPAN);
            queue.push(SimTime::from_micros(at), payload);
            model.push((at, payload));
        }
        model.sort_by_key(|&(at, seq)| (at, seq));
        prop_assert_eq!(drain_monotonic(&mut queue), model);
        Ok(())
    });
}

/// Deterministic overflow boundaries: events at window-end − 1 stay near,
/// events at window-end and beyond go far, and pop order is unaffected.
#[test]
fn far_future_overflow_boundary() {
    let mut queue = EventQueue::new();
    queue.push(SimTime::from_micros(SPAN - 1), 0u64); // last near slot
    queue.push(SimTime::from_micros(SPAN), 1); // first far slot
    queue.push(SimTime::from_micros(3 * SPAN + 17), 2); // deep far future
    queue.push(SimTime::from_micros(0), 3); // first near slot
    assert_eq!(queue.backend_depths(), (2, 2));
    assert_eq!(
        drain_monotonic(&mut queue),
        vec![(0, 3), (SPAN - 1, 0), (SPAN, 1), (3 * SPAN + 17, 2)]
    );

    // After draining past the first window the queue recenters on the far
    // minimum: a fresh far-future push lands near once the window catches up.
    queue.push(SimTime::from_micros(10 * SPAN), 4);
    assert_eq!(queue.backend_depths(), (0, 1));
    assert_eq!(queue.pop(), Some((SimTime::from_micros(10 * SPAN), 4)));
}

/// Interleaved push/pop streams agree with a `Vec`-sort model and with the
/// legacy heap backend, payload for payload.
#[test]
fn interleaved_push_pop_matches_model() {
    check("interleaved_push_pop_matches_model", |g| {
        let ops = g.vec(1..=200, |g| (g.u32(0..=2), g.u64(0..=3 * SPAN)));
        let mut calendar = EventQueue::new();
        let mut legacy = EventQueue::legacy_heap();
        let mut model: Vec<(u64, u64)> = Vec::new();
        let mut payload = 0u64;
        for &(op, at) in &ops {
            if op < 2 {
                // Two-thirds pushes keeps the queues populated.
                calendar.push(SimTime::from_micros(at), payload);
                legacy.push(SimTime::from_micros(at), payload);
                model.push((at, payload));
                payload += 1;
            } else {
                let min_idx = model
                    .iter()
                    .enumerate()
                    .min_by_key(|&(_, &key)| key)
                    .map(|(i, _)| i);
                let expected = min_idx.map(|i| model.remove(i));
                let got = calendar.pop().map(|(at, p)| (at.as_micros(), p));
                prop_assert_eq!(got, expected);
                prop_assert_eq!(legacy.pop().map(|(at, p)| (at.as_micros(), p)), expected);
            }
            prop_assert_eq!(calendar.len(), model.len());
            prop_assert_eq!(legacy.len(), model.len());
        }
        let rest = drain_monotonic(&mut calendar);
        model.sort_by_key(|&(at, seq)| (at, seq));
        prop_assert_eq!(rest, model);
        Ok(())
    });
}

/// Fixed-seed regression cases: replay concrete queue contents from pinned
/// seeds so ordering regressions cannot hide behind an unlucky sweep.
#[test]
fn fixed_seed_regressions() {
    for seed in [0u64, 7, 1234, 0x4E1B] {
        let mut g = Gen::from_seed(seed);
        let entries = g.vec(1..=50, |g| (g.u64(0..=20), g.u32(0..=9)));
        let mut queue = EventQueue::new();
        for (seq, &(at, payload)) in entries.iter().enumerate() {
            queue.push(SimTime::from_millis(at), (payload, seq));
        }
        let mut last = (0u64, 0usize);
        while let Some((at, (_, seq))) = queue.pop() {
            let key = (at.as_millis(), seq);
            assert!(key >= last, "seed {seed}: {key:?} after {last:?}");
            last = key;
        }
    }
}
