//! Property tests for the event queue and simulation driver.

use proptest::collection::vec;
use proptest::prelude::*;

use nimblock_sim::{EventQueue, Handler, SimDuration, SimTime, Simulation};

proptest! {
    #[test]
    fn queue_is_a_stable_priority_queue(entries in vec((0u64..500, 0u32..1_000), 0..300)) {
        let mut queue = EventQueue::new();
        for (seq, &(at, payload)) in entries.iter().enumerate() {
            queue.push(SimTime::from_millis(at), (payload, seq));
        }
        // Expected order: sort by time, stable (original order for ties).
        let mut expected: Vec<(u64, usize)> = entries
            .iter()
            .enumerate()
            .map(|(seq, &(at, _))| (at, seq))
            .collect();
        expected.sort_by_key(|&(at, seq)| (at, seq));
        let mut popped = Vec::new();
        while let Some((at, (_, seq))) = queue.pop() {
            popped.push((at.as_millis(), seq));
        }
        prop_assert_eq!(popped, expected);
    }

    #[test]
    fn run_until_is_prefix_of_run(delays in vec(1u64..50, 1..40)) {
        struct Collect(Vec<u64>);
        impl Handler<u64> for Collect {
            fn handle(&mut self, now: SimTime, _e: u64, _q: &mut EventQueue<u64>) {
                self.0.push(now.as_millis());
            }
        }
        let build = || {
            let mut sim = Simulation::new(Collect(Vec::new()));
            let mut t = SimTime::ZERO;
            for &d in &delays {
                t += SimDuration::from_millis(d);
                sim.queue_mut().push(t, 0);
            }
            sim
        };
        let mut full = build();
        full.run();
        let total: u64 = delays.iter().sum();
        let horizon = total / 2;
        let mut partial = build();
        partial.run_until(SimTime::from_millis(horizon));
        let seen = partial.handler().0.clone();
        let all = full.handler().0.clone();
        prop_assert!(seen.len() <= all.len());
        prop_assert_eq!(&all[..seen.len()], &seen[..]);
        prop_assert!(seen.iter().all(|&t| t <= horizon));
        prop_assert!(all[seen.len()..].iter().all(|&t| t > horizon));
    }
}
