//! Nimblock: fine-grained FPGA sharing through virtualization.
//!
//! This is the facade crate for the Nimblock reproduction. It re-exports
//! every sub-crate of the workspace under one roof so downstream users can
//! depend on a single crate:
//!
//! * [`sim`] — deterministic discrete-event simulation engine,
//! * [`fpga`] — slot-based FPGA overlay device model (ZCU106 defaults),
//! * [`app`] — task graphs, applications, and the six-benchmark suite,
//! * [`ilp`] — ILP solver and goal-number saturation analysis,
//! * [`core`] — the hypervisor runtime, the `Scheduler` trait, and the five
//!   scheduling policies the paper evaluates,
//! * [`cluster`] — multi-FPGA scale-out: dispatch policies over per-board
//!   hypervisors,
//! * [`faas`] — a serverless layer: function registry, SLO classes,
//!   invocation workloads,
//! * [`workload`] — arrival-event sequences and scenario generators,
//! * [`metrics`] — response-time statistics, deadline analysis, reports,
//! * [`obs`] — observability: metrics registry (Prometheus/JSON), leveled
//!   logging facade, Chrome trace-event export, ASCII Gantt rendering,
//! * [`analyze`] — correctness tooling: in-repo source lint and the
//!   schedule-trace invariant verifier (see `DESIGN.md` §11),
//! * [`plan`] — trace-driven capacity planning: what-if SLO forecasting
//!   from recorded serving traces (see `DESIGN.md` §18).
//!
//! # Quickstart
//!
//! ```
//! use nimblock::app::benchmarks;
//! use nimblock::app::Priority;
//! use nimblock::core::{NimblockScheduler, Testbed};
//! use nimblock::workload::{ArrivalEvent, EventSequence};
//! use nimblock::sim::SimTime;
//!
//! // One LeNet application with batch size 4, medium priority, arriving at t=0.
//! let events = EventSequence::new(vec![ArrivalEvent::new(
//!     benchmarks::lenet(),
//!     4,
//!     Priority::Medium,
//!     SimTime::ZERO,
//! )]);
//!
//! let report = Testbed::new(NimblockScheduler::default()).run(&events);
//! assert_eq!(report.records().len(), 1);
//! ```

#![forbid(unsafe_code)]

pub use nimblock_analyze as analyze;
pub use nimblock_app as app;
pub use nimblock_cluster as cluster;
pub use nimblock_faas as faas;
pub use nimblock_core as core;
pub use nimblock_fpga as fpga;
pub use nimblock_ilp as ilp;
pub use nimblock_metrics as metrics;
pub use nimblock_obs as obs;
pub use nimblock_plan as plan;
pub use nimblock_sim as sim;
pub use nimblock_workload as workload;
