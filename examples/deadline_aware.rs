//! Deadline-aware scheduling: a long, low-priority application monopolizes
//! the board; high-priority applications with tight deadlines arrive later.
//! Batch-preemption is what lets Nimblock meet their deadlines.
//!
//! ```sh
//! cargo run --release --example deadline_aware
//! ```

use nimblock::app::{benchmarks, Priority};
use nimblock::core::{NimblockConfig, NimblockScheduler, PremaScheduler, Scheduler, Testbed};
use nimblock::metrics::{violation_rate, TextTable};
use nimblock::sim::{SimDuration, SimTime};
use nimblock::workload::{deadline, ArrivalEvent, EventSequence};

const RECONFIG: SimDuration = SimDuration::from_millis(80);

fn stimulus() -> EventSequence {
    // A batch-25 AlexNet (low priority) pipelines aggressively across slots…
    let mut events = vec![ArrivalEvent::new(
        benchmarks::alexnet(),
        25,
        Priority::Low,
        SimTime::ZERO,
    )];
    // …then eight high-priority, tight-deadline applications arrive.
    for i in 0..8u64 {
        let app = if i % 2 == 0 {
            benchmarks::lenet()
        } else {
            benchmarks::rendering_3d()
        };
        events.push(ArrivalEvent::new(
            app,
            4,
            Priority::High,
            SimTime::from_millis(3_000 + i * 200),
        ));
    }
    EventSequence::new(events)
}

fn evaluate(name: &str, scheduler: impl Scheduler, events: &EventSequence, table: &mut TextTable) {
    let report = Testbed::new(scheduler).run(events);
    let mut row = vec![name.to_owned()];
    for ds in [1.5, 2.0, 3.0, 5.0] {
        let rate = violation_rate(&report, Some(Priority::High), |i| {
            Some(deadline::deadline_for(&events.events()[i], ds, RECONFIG))
        });
        row.push(format!("{:.0}%", rate * 100.0));
    }
    let preemptions: u32 = report.records().iter().map(|r| r.preemptions).sum();
    row.push(preemptions.to_string());
    let mean_high: f64 = {
        let highs: Vec<f64> = report
            .records()
            .iter()
            .filter(|r| r.priority == Priority::High)
            .map(|r| r.response_time().as_secs_f64())
            .collect();
        highs.iter().sum::<f64>() / highs.len() as f64
    };
    row.push(format!("{mean_high:.2}s"));
    table.row(row);
}

fn main() {
    let events = stimulus();
    let mut table = TextTable::new(vec![
        "Scheduler",
        "viol@1.5x",
        "viol@2x",
        "viol@3x",
        "viol@5x",
        "preemptions",
        "mean high-prio resp",
    ]);
    evaluate("Nimblock", NimblockScheduler::default(), &events, &mut table);
    evaluate(
        "NimblockNoPreempt",
        NimblockScheduler::with_config(NimblockConfig::no_preemption()),
        &events,
        &mut table,
    );
    evaluate("PREMA", PremaScheduler::new(), &events, &mut table);
    print!("{table}");
    println!(
        "\nDeadlines are D_s x single-slot latency (paper §5.4). Batch-preemption claws\nslots back from the pipelining AlexNet at batch boundaries, so the full Nimblock\nmeets tight deadlines that the no-preemption ablation and PREMA miss."
    );
}
