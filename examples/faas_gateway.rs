//! Serverless over the virtualized FPGA: deploy the six benchmarks as
//! functions, fire a Zipf-skewed invocation stream, and compare SLO
//! attainment across schedulers.
//!
//! ```sh
//! cargo run --release --example faas_gateway
//! ```

use nimblock::core::{FcfsScheduler, NimblockScheduler};
use nimblock::faas::{FaasGateway, FunctionRegistry, InvocationWorkload, SloClass};
use nimblock::metrics::{fmt3, TextTable};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Deploy: three latency-class functions, two standard, one batch —
    // or start from FunctionRegistry::benchmark_suite().
    let mut registry = FunctionRegistry::new();
    registry.deploy("thumbnail", nimblock::app::benchmarks::image_compression(), SloClass::Latency)?;
    registry.deploy("classify", nimblock::app::benchmarks::lenet(), SloClass::Latency)?;
    registry.deploy("render", nimblock::app::benchmarks::rendering_3d(), SloClass::Standard)?;
    registry.deploy("flow", nimblock::app::benchmarks::optical_flow(), SloClass::Standard)?;
    registry.deploy("train-knn", nimblock::app::benchmarks::digit_recognition(), SloClass::Batch)?;

    let gateway = FaasGateway::new(registry);
    let workload = InvocationWorkload::new(11)
        .invocations(60)
        .mean_gap_millis(120)
        .max_items(6);

    for scheduler_name in ["FCFS", "Nimblock"] {
        let summary = match scheduler_name {
            "FCFS" => gateway.run(&workload, FcfsScheduler::new()),
            _ => gateway.run(&workload, NimblockScheduler::default()),
        };
        println!(
            "\n== {} — overall SLO attainment {} ==\n",
            summary.scheduler(),
            fmt3(summary.overall_attainment())
        );
        let mut table = TextTable::new(vec![
            "function", "class", "invocations", "mean (s)", "p95 (s)", "SLO attainment",
        ]);
        for stats in summary.per_function() {
            table.row(vec![
                stats.function.clone(),
                stats.slo.to_string(),
                stats.invocations.to_string(),
                fmt3(stats.mean_latency_secs),
                fmt3(stats.p95_latency_secs),
                fmt3(stats.slo_attainment),
            ]);
        }
        print!("{table}");
    }
    println!(
        "\nNimblock's priority-aware preemptive scheduling keeps latency-class functions\nfast while batch-class work absorbs the queueing — the serverless story the\npaper's introduction motivates."
    );
    Ok(())
}
