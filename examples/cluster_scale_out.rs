//! Multi-FPGA scale-out: run the same burst on one, two, and four modelled
//! ZCU106 boards and watch response times fall.
//!
//! The cluster engine simulates the boards on a worker pool
//! (`with_threads`); results are byte-identical for every thread count, so
//! this example also demonstrates the determinism guarantee by re-running
//! the largest configuration in parallel and comparing it to the
//! sequential oracle.
//!
//! ```sh
//! cargo run --release --example cluster_scale_out
//! ```

use nimblock::cluster::{ClusterTestbed, DispatchPolicy};
use nimblock::core::NimblockScheduler;
use nimblock::metrics::{fmt3, TextTable};
use nimblock::workload::{generate, Scenario};

fn main() {
    let events = generate(42, 20, Scenario::Stress);
    println!(
        "{} applications arriving over {} — Nimblock on every board\n",
        events.len(),
        events.events().last().map(|e| e.arrival()).unwrap_or_default()
    );
    let mut table = TextTable::new(vec![
        "boards",
        "dispatch",
        "mean response (s)",
        "makespan (s)",
        "events per board",
    ]);
    for boards in [1usize, 2, 4] {
        for dispatch in DispatchPolicy::ALL {
            // `with_threads(0)` sizes the worker pool to the host; the
            // result is defined to match `with_threads(1)` byte for byte.
            let report = ClusterTestbed::new(boards, dispatch, NimblockScheduler::default)
                .with_threads(0)
                .run(&events);
            let loads: Vec<String> = report.board_loads().iter().map(usize::to_string).collect();
            table.row(vec![
                boards.to_string(),
                dispatch.name().to_owned(),
                fmt3(report.merged().mean_response_secs()),
                fmt3(report.merged().finished_at().as_secs_f64()),
                loads.join("/"),
            ]);
        }
    }
    print!("{table}");

    // The determinism guarantee, demonstrated: a parallel run of the
    // 4-board cluster is indistinguishable from the sequential oracle.
    let run = |threads: usize| {
        ClusterTestbed::new(4, DispatchPolicy::FewestApps, NimblockScheduler::default)
            .with_threads(threads)
            .run(&events)
    };
    let sequential = run(1);
    let parallel = run(8);
    assert_eq!(sequential.merged().records(), parallel.merged().records());
    assert_eq!(sequential.assignments(), parallel.assignments());
    println!("\n1-thread and 8-thread runs of the 4-board cluster are byte-identical.");

    println!(
        "\nEach board runs its own hypervisor and Nimblock scheduler; the dispatcher\nassigns applications at arrival time. Response times fall with board count\nuntil the longest applications' own execution dominates."
    );
}
