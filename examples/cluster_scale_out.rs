//! Multi-FPGA scale-out: run the same burst on one, two, and four modelled
//! ZCU106 boards and watch response times fall.
//!
//! ```sh
//! cargo run --release --example cluster_scale_out
//! ```

use nimblock::cluster::{ClusterTestbed, DispatchPolicy};
use nimblock::core::NimblockScheduler;
use nimblock::metrics::{fmt3, TextTable};
use nimblock::workload::{generate, Scenario};

fn main() {
    let events = generate(42, 20, Scenario::Stress);
    println!(
        "{} applications arriving over {} — Nimblock on every board\n",
        events.len(),
        events.events().last().map(|e| e.arrival()).unwrap_or_default()
    );
    let mut table = TextTable::new(vec![
        "boards",
        "dispatch",
        "mean response (s)",
        "makespan (s)",
        "events per board",
    ]);
    for boards in [1usize, 2, 4] {
        for dispatch in DispatchPolicy::ALL {
            let report = ClusterTestbed::new(boards, dispatch, NimblockScheduler::default)
                .run(&events);
            let loads: Vec<String> = report.board_loads().iter().map(usize::to_string).collect();
            table.row(vec![
                boards.to_string(),
                dispatch.name().to_owned(),
                fmt3(report.merged().mean_response_secs()),
                fmt3(report.merged().finished_at().as_secs_f64()),
                loads.join("/"),
            ]);
        }
    }
    print!("{table}");
    println!(
        "\nEach board runs its own hypervisor and Nimblock scheduler; the dispatcher\nassigns applications at arrival time. Response times fall with board count\nuntil the longest applications' own execution dominates."
    );
}
