//! Multi-tenant sharing: twenty applications from six benchmarks arrive in
//! a burst; compare all five scheduling policies on the same stimulus.
//!
//! ```sh
//! cargo run --release --example multi_tenant
//! ```

use nimblock::core::{
    FcfsScheduler, NimblockScheduler, NoSharingScheduler, PremaScheduler, RoundRobinScheduler,
    Scheduler, Testbed,
};
use nimblock::metrics::{fmt3, harmonic_speedup, Report, TextTable};
use nimblock::workload::{generate, Scenario};

fn run(scheduler: impl Scheduler, events: &nimblock::workload::EventSequence) -> Report {
    Testbed::new(scheduler).run(events)
}

fn main() {
    // One stress-test sequence: 20 random events, 150-200 ms apart.
    let events = generate(7, 20, Scenario::Stress);
    println!(
        "stimulus: {} events over {}",
        events.len(),
        events.events().last().map(|e| e.arrival()).unwrap_or_default()
    );

    let baseline = run(NoSharingScheduler::new(), &events);
    let reports = vec![
        run(FcfsScheduler::new(), &events),
        run(RoundRobinScheduler::new(), &events),
        run(PremaScheduler::new(), &events),
        run(PremaScheduler::with_backfill(), &events),
        run(NimblockScheduler::default(), &events),
    ];

    let mut table = TextTable::new(vec![
        "Scheduler",
        "mean response (s)",
        "reduction vs baseline",
        "makespan (s)",
        "preemptions",
    ]);
    table.row(vec![
        baseline.scheduler().to_owned(),
        fmt3(baseline.mean_response_secs()),
        "1.000x".to_owned(),
        fmt3(baseline.finished_at().as_secs_f64()),
        "0".to_owned(),
    ]);
    for report in &reports {
        let preemptions: u32 = report.records().iter().map(|r| r.preemptions).sum();
        table.row(vec![
            report.scheduler().to_owned(),
            fmt3(report.mean_response_secs()),
            format!("{}x", fmt3(harmonic_speedup(&baseline, report))),
            fmt3(report.finished_at().as_secs_f64()),
            preemptions.to_string(),
        ]);
    }
    print!("\n{table}");
    println!("\nNimblock pipelines batches across slots and batch-preempts over-consumers,");
    println!("which is why it posts the lowest mean response time on a contended board.");
}
