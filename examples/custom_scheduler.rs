//! Implementing your own scheduling policy.
//!
//! The hypervisor is mechanism-only: any type implementing
//! `nimblock::core::Scheduler` can drive it. This example writes a simple
//! priority-greedy policy — always serve the highest-priority application
//! with a placeable task, oldest first within a priority level — and races
//! it against FCFS and Nimblock.
//!
//! ```sh
//! cargo run --release --example custom_scheduler
//! ```

use nimblock::app::Priority;
use nimblock::core::{
    FcfsScheduler, NimblockScheduler, Reconfig, SchedView, Scheduler, Testbed,
};
use nimblock::metrics::{fmt3, TextTable};
use nimblock::workload::{generate, Scenario};

/// Highest priority first; oldest first within a level. Bulk processing,
/// no preemption: the policy only ever claims free slots.
#[derive(Debug, Default)]
struct PriorityGreedy;

impl Scheduler for PriorityGreedy {
    fn name(&self) -> String {
        "PriorityGreedy".to_owned()
    }

    fn next_reconfig(&mut self, view: &SchedView<'_>) -> Option<Reconfig> {
        let slot = view.first_free_slot()?;
        for level in [Priority::High, Priority::Medium, Priority::Low] {
            for (app, runtime) in view.apps.iter() {
                if runtime.priority() != level {
                    continue;
                }
                if let Some(task) = runtime.next_unplaced_ready() {
                    return Some(Reconfig { app, task, slot });
                }
            }
        }
        None
    }
}

fn mean_by_priority(report: &nimblock::metrics::Report, priority: Priority) -> f64 {
    let samples: Vec<f64> = report
        .records()
        .iter()
        .filter(|r| r.priority == priority)
        .map(|r| r.response_time().as_secs_f64())
        .collect();
    if samples.is_empty() {
        return f64::NAN;
    }
    samples.iter().sum::<f64>() / samples.len() as f64
}

fn main() {
    let events = generate(21, 20, Scenario::Stress);
    let mut table = TextTable::new(vec![
        "Scheduler",
        "mean resp (s)",
        "high-prio mean (s)",
        "low-prio mean (s)",
    ]);
    let reports = [
        Testbed::new(PriorityGreedy).run(&events),
        Testbed::new(FcfsScheduler::new()).run(&events),
        Testbed::new(NimblockScheduler::default()).run(&events),
    ];
    for report in &reports {
        table.row(vec![
            report.scheduler().to_owned(),
            fmt3(report.mean_response_secs()),
            fmt3(mean_by_priority(report, Priority::High)),
            fmt3(mean_by_priority(report, Priority::Low)),
        ]);
    }
    print!("{table}");
    println!(
        "\nPriorityGreedy helps high-priority means but starves low priorities and cannot\nreclaim slots from running batches; Nimblock balances both via tokens, goal-number\nallocation, pipelining, and batch-preemption."
    );
}
