//! Explaining a slowdown: why the same workload finishes later under FCFS
//! than under Nimblock.
//!
//! Both policies run the identical congested stimulus; the attribution
//! engine then decomposes every application's response time into six
//! exactly-summing components (queue wait, CAP serialization,
//! reconfiguration, compute, preemption loss, pipeline overlap gain).
//! Comparing the two decompositions side by side shows *where* the time
//! went — FCFS pays in queue wait, Nimblock trades a little preemption
//! loss and reconfiguration for a much shorter queue — and the
//! critical-path span tree of the slowest application shows *when*.
//!
//! ```sh
//! cargo run --release --example explain_slowdown
//! ```

use nimblock::core::{attribute_trace, span_trees, FcfsScheduler, NimblockScheduler, Testbed};
use nimblock::metrics::{component_shares, fmt3, AttributionSummary, TextTable};
use nimblock::obs::format_micros;
use nimblock::workload::{generate, Scenario};

fn main() {
    // One congested stimulus, two policies, two exact decompositions.
    let events = generate(2023, 16, Scenario::Stress);
    let (fcfs_report, fcfs_trace) = Testbed::new(FcfsScheduler::new()).run_traced(&events);
    let (nb_report, nb_trace) = Testbed::new(NimblockScheduler::default()).run_traced(&events);
    let fcfs = attribute_trace(&fcfs_trace);
    let nimblock = attribute_trace(&nb_trace);
    assert!(fcfs.is_exact() && nimblock.is_exact(), "attribution always sums exactly");

    println!(
        "stimulus: {} applications, stress scenario (seed 2023)\n\
         mean response  FCFS {:>12}   Nimblock {:>12}\n",
        events.len(),
        format_micros(fcfs.response_micros / fcfs.apps.len() as u64),
        format_micros(nimblock.response_micros / nimblock.apps.len() as u64),
    );

    // Side-by-side component totals: where did the time go?
    let mut table = TextTable::new(vec![
        "component", "FCFS", "share", "Nimblock", "share", "delta",
    ]);
    let f_shares = component_shares(&fcfs.totals, fcfs.response_micros);
    let n_shares = component_shares(&nimblock.totals, nimblock.response_micros);
    for (f, n) in f_shares.iter().zip(&n_shares) {
        let delta = n.1 - f.1;
        table.row(vec![
            f.0.clone(),
            signed(f.1),
            format!("{}%", fmt3(f.2 * 100.0)),
            signed(n.1),
            format!("{}%", fmt3(n.2 * 100.0)),
            signed(delta),
        ]);
    }
    table.row(vec![
        "= response".into(),
        format_micros(fcfs.response_micros),
        "100%".into(),
        format_micros(nimblock.response_micros),
        "100%".into(),
        signed(nimblock.response_micros as i64 - fcfs.response_micros as i64),
    ]);
    println!("{table}");

    // The application FCFS hurts the most, explained twice.
    let victim = worst_queue_victim(&fcfs);
    println!(
        "\nworst queue victim under FCFS: {} (event #{})",
        fcfs.apps[victim].app_name, fcfs.apps[victim].event_index
    );
    for (label, summary, trace) in
        [("FCFS", &fcfs, &fcfs_trace), ("Nimblock", &nimblock, &nb_trace)]
    {
        let app = &summary.apps[victim];
        println!(
            "\n{label}: response {}  (queue {}, compute {})  — critical path:",
            format_micros(app.response_micros),
            format_micros(app.components.queue_wait),
            format_micros(app.components.compute),
        );
        let trees = span_trees(trace);
        print!("{}", trees[victim].render());
    }

    // The reports carry the same summaries for downstream tooling.
    assert_eq!(fcfs_report.attribution(), Some(&fcfs));
    assert_eq!(nb_report.attribution(), Some(&nimblock));
}

/// Index of the application whose queue wait FCFS inflates the most.
fn worst_queue_victim(fcfs: &AttributionSummary) -> usize {
    fcfs.apps
        .iter()
        .enumerate()
        .max_by_key(|(_, a)| a.components.queue_wait)
        .map(|(i, _)| i)
        .expect("stimulus is non-empty")
}

/// `format_micros` with a sign, for deltas and the overlap gain.
fn signed(value: i64) -> String {
    if value < 0 {
        format!("-{}", format_micros(value.unsigned_abs()))
    } else {
        format_micros(value as u64)
    }
}
