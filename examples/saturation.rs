//! Goal-number saturation analysis, and the exact ILP slot split.
//!
//! Nimblock's allocator needs to know how many slots each application can
//! actually use (its *goal number*). This example sweeps the slot count for
//! every benchmark with the pipelined makespan estimator, prints the
//! saturation curves, and cross-checks the rule-based goal numbers against
//! an exact ILP split of the board.
//!
//! ```sh
//! cargo run --release --example saturation
//! ```

use nimblock::app::benchmarks;
use nimblock::ilp::saturation;
use nimblock::metrics::{fmt3, TextTable};
use nimblock::sim::SimDuration;

const RECONFIG: SimDuration = SimDuration::from_millis(80);
const SLOTS: usize = 10;
const BATCH: u32 = 10;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut header = vec!["Benchmark".to_owned()];
    header.extend((1..=SLOTS).map(|k| format!("{k} slot{}", if k > 1 { "s" } else { "" })));
    header.push("goal".to_owned());
    let mut table = TextTable::new(header);

    let mut curves = Vec::new();
    for app in benchmarks::all() {
        let analysis = saturation::analyze(&app, BATCH, SLOTS, RECONFIG);
        let mut row = vec![app.name().to_owned()];
        row.extend(
            analysis
                .makespans()
                .iter()
                .map(|m| fmt3(m.as_secs_f64())),
        );
        row.push(analysis.goal_number().to_string());
        table.row(row);
        curves.push(analysis.makespans().to_vec());
    }
    println!("Makespan (s) of each benchmark at batch {BATCH} versus slot count:\n");
    print!("{table}");

    // Exact ILP: split the ten slots among the six benchmarks to minimize
    // the sum of their makespans (everyone gets at least one slot).
    let split = saturation::optimal_slot_split(&curves, SLOTS)?;
    println!("\nExact ILP split of {SLOTS} slots (minimizing total makespan):");
    for (app, slots) in benchmarks::all().iter().zip(&split) {
        println!("  {:18} -> {slots} slot(s)", app.name());
    }
    println!(
        "\nThe sweep shows the paper's observation (§4.2): the second slot provides the\ngreatest benefit, and applications saturate near their pipeline depth."
    );
    Ok(())
}
