//! Quickstart: define an application, submit it to the Nimblock hypervisor,
//! and read the report.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use nimblock::app::{AppSpec, Priority, TaskGraphBuilder, TaskSpec};
use nimblock::core::{NimblockScheduler, Testbed};
use nimblock::sim::{SimDuration, SimTime};
use nimblock::workload::{ArrivalEvent, EventSequence};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Partition your application into slot-sized tasks and compose them
    //    into a task graph (a DAG). Here: a tiny four-stage vision pipeline
    //    with two parallel feature extractors.
    let mut builder = TaskGraphBuilder::new();
    let decode = builder.add_task(TaskSpec::new("decode", SimDuration::from_millis(30)));
    let edges = builder.add_task(TaskSpec::new("edge_features", SimDuration::from_millis(55)));
    let colors = builder.add_task(TaskSpec::new("color_features", SimDuration::from_millis(40)));
    let classify = builder.add_task(TaskSpec::new("classify", SimDuration::from_millis(25)));
    builder.add_edge(decode, edges)?;
    builder.add_edge(decode, colors)?;
    builder.add_edge(edges, classify)?;
    builder.add_edge(colors, classify)?;
    let app = AppSpec::new("vision-pipeline", builder.build()?);

    println!("application: {app}");
    println!(
        "  critical path {} / total latency {} per batch item",
        app.graph().critical_path_latency(),
        app.graph().total_latency()
    );

    // 2. Submit it to the hypervisor as an arrival event: batch of 12
    //    inputs, high priority, arriving at t = 0.
    let events = EventSequence::new(vec![ArrivalEvent::new(
        app,
        12,
        Priority::High,
        SimTime::ZERO,
    )]);

    // 3. Run on the modelled ZCU106 (ten slots, 80 ms partial
    //    reconfiguration) under the Nimblock scheduling algorithm.
    let report = Testbed::new(NimblockScheduler::default()).run(&events);

    // 4. Inspect the result.
    let record = &report.records()[0];
    println!("\nscheduler: {}", report.scheduler());
    println!("response time : {}", record.response_time());
    println!("wait time     : {}", record.wait_time());
    println!("execution time: {}", record.execution_time());
    println!("run time (Σ)  : {}", record.run_time);
    println!("PR time (Σ)   : {}", record.reconfig_time);
    println!("preemptions   : {}", record.preemptions);
    Ok(())
}
