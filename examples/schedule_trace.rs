//! Schedule tracing: run a small multi-tenant mix with tracing enabled,
//! validate the hardware constraints from the trace, and render a Gantt
//! chart of the slots.
//!
//! ```sh
//! cargo run --release --example schedule_trace
//! ```

use nimblock::app::{benchmarks, Priority};
use nimblock::core::{NimblockScheduler, Testbed, TraceEvent};
use nimblock::sim::SimTime;
use nimblock::workload::{ArrivalEvent, EventSequence};

fn main() {
    let events = EventSequence::new(vec![
        ArrivalEvent::new(benchmarks::lenet(), 6, Priority::High, SimTime::ZERO),
        ArrivalEvent::new(benchmarks::image_compression(), 8, Priority::Low, SimTime::from_millis(50)),
        ArrivalEvent::new(benchmarks::rendering_3d(), 6, Priority::Medium, SimTime::from_millis(150)),
        ArrivalEvent::new(benchmarks::optical_flow(), 4, Priority::High, SimTime::from_millis(300)),
    ]);

    let (report, trace) = Testbed::new(NimblockScheduler::default()).run_traced(&events);

    println!("schedule for {} applications, {} traced events", report.records().len(), trace.len());
    trace
        .validate()
        .expect("the hypervisor must respect CAP and slot exclusivity");
    println!("hardware constraints validated: CAP serialized, no slot overlap\n");

    // Count activity per kind.
    let (mut reconfigs, mut items, mut preemptions) = (0, 0, 0);
    for event in trace.events() {
        match event {
            TraceEvent::Reconfig { .. } => reconfigs += 1,
            TraceEvent::Item { .. } => items += 1,
            TraceEvent::Preempt { .. } => preemptions += 1,
            _ => {}
        }
    }
    println!("reconfigurations: {reconfigs}   item executions: {items}   preemptions: {preemptions}\n");

    println!("Gantt ('#' = reconfiguration, letters = applications a..d, '.' = idle):");
    print!("{}", trace.gantt(100));
}
