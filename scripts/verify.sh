#!/usr/bin/env bash
# Tier-1 verification, run fully offline.
#
# 1. Guards the dependency policy: every `[dependencies]` entry in every
#    Cargo.toml must be a workspace `path` dependency, and Cargo.lock (when
#    present) must not record any crates.io / registry source. The build
#    container has no registry access, so a reintroduced external dep would
#    only fail later and less legibly — fail fast here instead.
# 2. Runs the tier-1 commands from ROADMAP.md with `--offline`, plus the
#    workspace-wide test sweep (the root `cargo test` only covers the root
#    package).
#
# Usage: scripts/verify.sh

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== dependency-policy guard =="

fail=0

# Any `version = ...`, `git = ...`, or bare `name = "x.y.z"` dependency line
# points outside the workspace. Allowed forms:
#   nimblock-ser = { path = "../ser" }         (root [workspace.dependencies])
#   nimblock-ser.workspace = true              (member inheriting the above)
while IFS= read -r manifest; do
    # Extract the dependency sections ([dependencies], [dev-dependencies],
    # [build-dependencies], [workspace.dependencies], and their target.*
    # variants) and drop blanks/comments.
    deps=$(awk '
        /^\[/ { in_deps = ($0 ~ /dependencies\]$/) ; next }
        in_deps && NF && $0 !~ /^#/ { print }
    ' "$manifest")
    [ -z "$deps" ] && continue
    bad=$(printf '%s\n' "$deps" | grep -Ev 'path *=|(\.|\{ *)workspace *= *true' || true)
    if [ -n "$bad" ]; then
        echo "error: non-path dependency in $manifest:" >&2
        printf '%s\n' "$bad" | sed 's/^/    /' >&2
        fail=1
    fi
done < <(find . -name Cargo.toml -not -path './target/*')

# Cargo.lock is generated (and gitignored) but if one exists it must agree:
# registry/git packages carry a `source = ...` line; workspace members none.
if [ -f Cargo.lock ] && grep -q '^source = ' Cargo.lock; then
    echo "error: Cargo.lock records non-workspace package sources:" >&2
    grep '^source = ' Cargo.lock | sort -u | sed 's/^/    /' >&2
    fail=1
fi

if [ "$fail" -ne 0 ]; then
    echo "dependency-policy guard FAILED" >&2
    exit 1
fi
echo "ok: all dependencies are workspace path deps"

echo
echo "== tier-1: cargo build --release --offline =="
cargo build --release --offline

echo
echo "== tier-1: cargo test -q --offline =="
cargo test -q --offline

echo
echo "== workspace tests: cargo test -q --offline --workspace =="
cargo test -q --offline --workspace

echo
echo "verify: PASS"
