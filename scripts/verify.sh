#!/usr/bin/env bash
# Tier-1 verification, run fully offline.
#
# 1. Guards the dependency policy: every `[dependencies]` entry in every
#    Cargo.toml must be a workspace `path` dependency, and Cargo.lock (when
#    present) must not record any crates.io / registry source. The build
#    container has no registry access, so a reintroduced external dep would
#    only fail later and less legibly — fail fast here instead.
# 2. Runs the tier-1 commands from ROADMAP.md with `--offline`, plus the
#    workspace-wide test sweep (the root `cargo test` only covers the root
#    package).
#
# Usage: scripts/verify.sh

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== dependency-policy guard =="

fail=0

# Any `version = ...`, `git = ...`, or bare `name = "x.y.z"` dependency line
# points outside the workspace. Allowed forms:
#   nimblock-ser = { path = "../ser" }         (root [workspace.dependencies])
#   nimblock-ser.workspace = true              (member inheriting the above)
while IFS= read -r manifest; do
    # Extract the dependency sections ([dependencies], [dev-dependencies],
    # [build-dependencies], [workspace.dependencies], and their target.*
    # variants) and drop blanks/comments.
    deps=$(awk '
        /^\[/ { in_deps = ($0 ~ /dependencies\]$/) ; next }
        in_deps && NF && $0 !~ /^#/ { print }
    ' "$manifest")
    [ -z "$deps" ] && continue
    bad=$(printf '%s\n' "$deps" | grep -Ev 'path *=|(\.|\{ *)workspace *= *true' || true)
    if [ -n "$bad" ]; then
        echo "error: non-path dependency in $manifest:" >&2
        printf '%s\n' "$bad" | sed 's/^/    /' >&2
        fail=1
    fi
done < <(find . -name Cargo.toml -not -path './target/*')

# Cargo.lock is generated (and gitignored) but if one exists it must agree:
# registry/git packages carry a `source = ...` line; workspace members none.
if [ -f Cargo.lock ] && grep -q '^source = ' Cargo.lock; then
    echo "error: Cargo.lock records non-workspace package sources:" >&2
    grep '^source = ' Cargo.lock | sort -u | sed 's/^/    /' >&2
    fail=1
fi

if [ "$fail" -ne 0 ]; then
    echo "dependency-policy guard FAILED" >&2
    exit 1
fi
echo "ok: all dependencies are workspace path deps"

echo
echo "== tier-1: cargo build --release --offline =="
cargo build --release --offline

echo
echo "== tier-1: cargo test -q --offline =="
cargo test -q --offline

echo
echo "== workspace tests: cargo test -q --offline --workspace =="
cargo test -q --offline --workspace

echo
echo "== telemetry smoke: CLI metrics + chrome trace on a seeded stimulus =="
# A tiny deterministic run must emit Prometheus text that the in-repo
# validator accepts and a Chrome trace that parses as trace-event JSON.
# (The root release build above covers only the facade package.)
cargo build --release --offline -q -p nimblock-cli
smoke_dir=$(mktemp -d)
trap 'rm -rf "$smoke_dir"' EXIT
./target/release/nimblock-cli run \
    --scheduler nimblock --batch 2 --delay-ms 100 --events 3 --seed 7 \
    --metrics-out "$smoke_dir/metrics.prom" \
    --trace-format chrome --trace-out "$smoke_dir/trace.chrome.json" \
    > "$smoke_dir/run.out"
grep -q "counters: reconfigurations" "$smoke_dir/run.out" \
    || { echo "error: run summary lost its counters line" >&2; exit 1; }
python3 - "$smoke_dir" <<'PY' 2>/dev/null || rust_validate=1
import json, sys, pathlib
d = pathlib.Path(sys.argv[1])
doc = json.loads((d / "trace.chrome.json").read_text())
assert isinstance(doc["traceEvents"], list) and doc["traceEvents"], "empty traceEvents"
text = (d / "metrics.prom").read_text()
assert "hv_arrivals_total 3" in text, "metrics text missing hv_arrivals_total"
print("ok: python validated telemetry outputs")
PY
if [ "${rust_validate:-0}" = "1" ]; then
    # No python3: fall back to the in-repo validators via the test suite.
    cargo test -q --offline --test golden_telemetry
fi
echo "ok: telemetry smoke passed"

echo
echo "verify: PASS"
