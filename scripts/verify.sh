#!/usr/bin/env bash
# Tier-1 verification, run fully offline.
#
# Thin wrapper: the stages themselves live in scripts/ci.sh so CI and local
# verification can never diverge. This runs the tier-1 subset (lint, both
# tier-1 cargo commands, the workspace sweep, and the telemetry/invariant
# smokes). The full pipeline — these plus the golden-drift check and the
# bench regression gate — is `scripts/ci.sh` with no arguments.
#
# Usage: scripts/verify.sh

set -euo pipefail
cd "$(dirname "$0")/.."

scripts/ci.sh lint build test workspace-test telemetry invariants
echo
echo "verify: PASS"
