#!/usr/bin/env bash
# Tier-1 verification, run fully offline.
#
# 1. Lints the tree with the in-repo static analyzer: every Cargo.toml
#    dependency must stay a workspace path dep (the guard that used to live
#    here as an awk script — the build container has no registry access, so
#    a reintroduced external dep would only fail later and less legibly),
#    no bare unwrap/panic in hypervisor/scheduler/sim/cli hot paths, no
#    wall-clock reads inside the simulator, no lossy time/token casts, no
#    stray println. See DESIGN.md §11 for the rule catalog.
# 2. Runs the tier-1 commands from ROADMAP.md with `--offline` and warnings
#    promoted to errors, plus the workspace-wide test sweep (the root
#    `cargo test` only covers the root package).
# 3. Smoke-tests the CLI end to end: telemetry outputs parse, and a real
#    schedule passes the dynamic invariant verifier both inline
#    (`run --check-invariants`) and from its exported trace
#    (`analyze trace`).
#
# Usage: scripts/verify.sh

set -euo pipefail
cd "$(dirname "$0")/.."

export RUSTFLAGS="${RUSTFLAGS:--D warnings}"

echo "== lint: dependency policy + source hygiene (nimblock-analyze) =="
cargo build --release --offline -q -p nimblock-analyze
./target/release/nimblock-analyze lint

echo
echo "== tier-1: cargo build --release --offline =="
cargo build --release --offline

echo
echo "== tier-1: cargo test -q --offline =="
cargo test -q --offline

echo
echo "== workspace tests: cargo test -q --offline --workspace =="
cargo test -q --offline --workspace

echo
echo "== telemetry smoke: CLI metrics + chrome trace on a seeded stimulus =="
# A tiny deterministic run must emit Prometheus text that the in-repo
# validator accepts and a Chrome trace that parses as trace-event JSON.
# (The root release build above covers only the facade package.)
cargo build --release --offline -q -p nimblock-cli
smoke_dir=$(mktemp -d)
trap 'rm -rf "$smoke_dir"' EXIT
./target/release/nimblock-cli run \
    --scheduler nimblock --batch 2 --delay-ms 100 --events 3 --seed 7 \
    --metrics-out "$smoke_dir/metrics.prom" \
    --trace-format chrome --trace-out "$smoke_dir/trace.chrome.json" \
    > "$smoke_dir/run.out"
grep -q "counters: reconfigurations" "$smoke_dir/run.out" \
    || { echo "error: run summary lost its counters line" >&2; exit 1; }
python3 - "$smoke_dir" <<'PY' 2>/dev/null || rust_validate=1
import json, sys, pathlib
d = pathlib.Path(sys.argv[1])
doc = json.loads((d / "trace.chrome.json").read_text())
assert isinstance(doc["traceEvents"], list) and doc["traceEvents"], "empty traceEvents"
text = (d / "metrics.prom").read_text()
assert "hv_arrivals_total 3" in text, "metrics text missing hv_arrivals_total"
print("ok: python validated telemetry outputs")
PY
if [ "${rust_validate:-0}" = "1" ]; then
    # No python3: fall back to the in-repo validators via the test suite.
    cargo test -q --offline --test golden_telemetry
fi
echo "ok: telemetry smoke passed"

echo
echo "== invariant smoke: checked run + trace re-verification =="
# A congested stimulus under a preempting policy must uphold every schedule
# invariant, both checked inline during the run and re-derived from the
# exported trace by the standalone verifier.
./target/release/nimblock-cli run \
    --scheduler nimblock --scenario stress --events 6 --seed 23 \
    --check-invariants \
    --trace-format json --trace-out "$smoke_dir/trace.json" \
    > "$smoke_dir/invariants.out"
grep -q "invariants: ok" "$smoke_dir/invariants.out" \
    || { echo "error: run --check-invariants did not report a clean schedule" >&2; exit 1; }
./target/release/nimblock-cli analyze trace "$smoke_dir/trace.json"
echo "ok: invariant smoke passed"

echo
echo "verify: PASS"
