#!/usr/bin/env bash
# Staged, fully-offline CI pipeline for the Nimblock workspace.
#
# Each stage is named and individually runnable; the default run executes
# all of them in order, fail-fast, with per-stage wall-clock timing and a
# summary table at the end. `.github/workflows/ci.yml` runs exactly this
# script, so CI and a developer laptop can never disagree.
#
# Stages (in order):
#
#   lint            in-repo static analyzer: workspace-path-only deps,
#                   source hygiene (DESIGN.md §11)
#   build           tier-1: cargo build --release --offline
#   test            tier-1: cargo test -q --offline (root package)
#   workspace-test  cargo test -q --offline --workspace
#   deep            whole-workspace semantic analysis (DESIGN.md §16):
#                   call-graph reachability passes (hot-path-no-alloc,
#                   determinism-taint, lock-discipline) must be clean, the
#                   suppression audit must find no stale allows, and every
#                   adversarial fixture must trip exactly its named pass
#   telemetry       CLI smoke: metrics text + chrome trace parse
#   invariants      checked run + standalone trace re-verification
#   explain         response-time attribution: `analyze explain` on a
#                   congested trace must decompose exactly in every format
#   monitor         continuous-monitoring smoke: a run with --timeseries-out
#                   and a deliberately tight SLO rule must fire an alert and
#                   render through `analyze monitor` in every format, and
#                   obs_overhead --gate must bound the detached-sink
#                   plumbing under 4% (gate skippable with
#                   NIMBLOCK_SKIP_BENCH_GATE=1)
#   faas            serving front door smoke: a deliberately overloaded run
#                   with a tight shed horizon must shed load, conserve
#                   invocations exactly (offered = admitted + shed +
#                   rejected), and fire the shed alert; the SLO attainment
#                   curve must render in text, md, and json
#   plan            capacity-planner smoke: record a serving day with
#                   `faas --record-out`, then `analyze plan` must sweep
#                   fleet shapes, reproduce the recorded report by exact
#                   replay byte-for-byte (the CLI exits nonzero on a
#                   mismatch), and render in text, md, and json
#   goldens         golden-drift: regenerate goldens, fail if they differ
#                   from the committed files
#   engine-diff     fixed-seed differential oracle: legacy heap vs calendar
#                   event queue must be byte-identical (reports, traces,
#                   telemetry) across policies, boards, and thread counts
#   bench-gate      scripts/bench_gate.sh versus results/BENCH_cluster.json,
#                   results/BENCH_engine.json, results/BENCH_faas.json, and
#                   results/BENCH_plan.json
#                   (skippable with NIMBLOCK_SKIP_BENCH_GATE=1)
#
# Usage:
#   scripts/ci.sh                 # every stage
#   scripts/ci.sh lint build      # just those stages, in the given order
#   scripts/ci.sh --list          # print stage names and exit
#
# Environment:
#   NIMBLOCK_CI_STAGES   comma-separated stage filter, used when no stages
#                        are given on the command line (e.g.
#                        NIMBLOCK_CI_STAGES=lint,build,faas scripts/ci.sh)
#
# Every run writes per-stage wall-clock timing to results/ci_stages.json —
# a per-run artifact that is gitignored on purpose; never commit it.

set -euo pipefail
cd "$(dirname "$0")/.."

export RUSTFLAGS="${RUSTFLAGS:--D warnings}"

# `deep` sits after the test stages so the analyzer and test binaries it
# reuses are already built; the analysis itself takes well under ten
# seconds.
ALL_STAGES=(lint build test workspace-test deep telemetry invariants explain monitor faas plan goldens engine-diff bench-gate)

smoke_dir=$(mktemp -d)
trap 'rm -rf "$smoke_dir"' EXIT

stage_lint() {
    cargo build --release --offline -q -p nimblock-analyze
    ./target/release/nimblock-analyze lint
}

stage_deep() {
    # The deep analyzer must pass the workspace clean (zero unsuppressed
    # findings, zero stale suppressions — it exits nonzero otherwise) and
    # each adversarial fixture must trip exactly its named pass.
    cargo build --release --offline -q -p nimblock-analyze
    ./target/release/nimblock-analyze deep
    cargo test -q --offline --test analyze_deep
}

stage_build() {
    cargo build --release --offline
}

stage_test() {
    cargo test -q --offline
}

stage_workspace_test() {
    cargo test -q --offline --workspace
}

ensure_smoke_cli() {
    cargo build --release --offline -q -p nimblock-cli
}

stage_telemetry() {
    # A tiny deterministic run must emit Prometheus text that the in-repo
    # validator accepts and a Chrome trace that parses as trace-event JSON.
    ensure_smoke_cli
    ./target/release/nimblock-cli run \
        --scheduler nimblock --batch 2 --delay-ms 100 --events 3 --seed 7 \
        --metrics-out "$smoke_dir/metrics.prom" \
        --trace-format chrome --trace-out "$smoke_dir/trace.chrome.json" \
        > "$smoke_dir/run.out"
    grep -q "counters: reconfigurations" "$smoke_dir/run.out" \
        || { echo "error: run summary lost its counters line" >&2; return 1; }
    local rust_validate=0
    python3 - "$smoke_dir" <<'PY' 2>/dev/null || rust_validate=1
import json, sys, pathlib
d = pathlib.Path(sys.argv[1])
doc = json.loads((d / "trace.chrome.json").read_text())
assert isinstance(doc["traceEvents"], list) and doc["traceEvents"], "empty traceEvents"
text = (d / "metrics.prom").read_text()
assert "hv_arrivals_total 3" in text, "metrics text missing hv_arrivals_total"
print("ok: python validated telemetry outputs")
PY
    if [ "$rust_validate" = "1" ]; then
        # No python3: fall back to the in-repo validators via the test suite.
        cargo test -q --offline --test golden_telemetry
    fi
}

stage_invariants() {
    # A congested stimulus under a preempting policy must uphold every
    # schedule invariant, both checked inline during the run and re-derived
    # from the exported trace by the standalone verifier.
    ensure_smoke_cli
    ./target/release/nimblock-cli run \
        --scheduler nimblock --scenario stress --events 6 --seed 23 \
        --check-invariants \
        --trace-format json --trace-out "$smoke_dir/trace.json" \
        > "$smoke_dir/invariants.out"
    grep -q "invariants: ok" "$smoke_dir/invariants.out" \
        || { echo "error: run --check-invariants did not report a clean schedule" >&2; return 1; }
    ./target/release/nimblock-cli analyze trace "$smoke_dir/trace.json"
}

stage_explain() {
    # The attribution engine must decompose every application's response
    # time exactly (the CLI exits nonzero otherwise), in all three report
    # formats, on a congested preempting trace.
    ensure_smoke_cli
    ./target/release/nimblock-cli run \
        --scheduler nimblock --scenario stress --events 8 --seed 41 \
        --trace-format json --trace-out "$smoke_dir/explain-trace.json" \
        > /dev/null
    ./target/release/nimblock-cli analyze explain "$smoke_dir/explain-trace.json" \
        > "$smoke_dir/explain.txt"
    grep -q "exact decomposition: yes" "$smoke_dir/explain.txt" \
        || { echo "error: explain lost its exactness line" >&2; return 1; }
    ./target/release/nimblock-cli analyze explain "$smoke_dir/explain-trace.json" \
        --format md > "$smoke_dir/explain.md"
    grep -q "^# Response-time attribution" "$smoke_dir/explain.md" \
        || { echo "error: markdown explain lost its heading" >&2; return 1; }
    ./target/release/nimblock-cli analyze explain "$smoke_dir/explain-trace.json" \
        --format json > "$smoke_dir/explain.json"
    grep -q '"exact": *true' "$smoke_dir/explain.json" \
        || { echo "error: JSON explain does not attest exactness" >&2; return 1; }
    echo "ok: attribution is exact in text, md, and json"
}

stage_monitor() {
    # A monitored run with a deliberately unmeetable SLO (util>=100%) must
    # fire alerts, and the written time-series document must render
    # through `analyze monitor` in all three formats.
    ensure_smoke_cli
    ./target/release/nimblock-cli run \
        --scheduler nimblock --scenario stress --events 6 --seed 23 \
        --window-ms 1000 --slo 'util>=100%' \
        --timeseries-out "$smoke_dir/series.json" \
        > "$smoke_dir/monitor.out"
    grep -q "slo: 1 rule(s) evaluated" "$smoke_dir/monitor.out" \
        || { echo "error: monitored run lost its slo summary line" >&2; return 1; }
    grep -qE "slo: .* [1-9][0-9]* alert\(s\) fired" "$smoke_dir/monitor.out" \
        || { echo "error: the deliberately tight SLO rule fired no alert" >&2; return 1; }
    ./target/release/nimblock-cli analyze monitor "$smoke_dir/series.json" \
        > "$smoke_dir/monitor.txt"
    grep -q "continuous monitor:" "$smoke_dir/monitor.txt" \
        || { echo "error: text monitor report lost its heading" >&2; return 1; }
    grep -q "util>=100%" "$smoke_dir/monitor.txt" \
        || { echo "error: text monitor report lost the fired rule" >&2; return 1; }
    ./target/release/nimblock-cli analyze monitor "$smoke_dir/series.json" \
        --format md > "$smoke_dir/monitor.md"
    grep -q "^# Continuous monitor" "$smoke_dir/monitor.md" \
        || { echo "error: markdown monitor report lost its heading" >&2; return 1; }
    ./target/release/nimblock-cli analyze monitor "$smoke_dir/series.json" \
        --format json > "$smoke_dir/monitor.json"
    grep -q '"clean": *false' "$smoke_dir/monitor.json" \
        || { echo "error: JSON monitor report does not flag the breach" >&2; return 1; }
    echo "ok: tight SLO fired and analyze monitor renders in text, md, and json"
    if [ "${NIMBLOCK_SKIP_BENCH_GATE:-}" = "1" ]; then
        echo "skip: obs_overhead gate (NIMBLOCK_SKIP_BENCH_GATE=1)"
        return 0
    fi
    cargo build --release --offline -q -p nimblock-bench
    ./target/release/obs_overhead --quick --gate 4
}

stage_faas() {
    # The serving front door under deliberate overload: a bursty stream far
    # beyond cluster capacity with a tight shed horizon and per-tenant rate
    # limits. The stage fails unless load was actually shed (the shed alert
    # fires only when every shed is explained by its attribution budget)
    # and the counters conserve invocations exactly — the CLI exits nonzero
    # on a conservation violation, and the greps re-check the rendered
    # lines so a silent output regression also fails.
    ensure_smoke_cli
    ./target/release/nimblock-cli faas \
        --arrivals bursty:2000 --invocations 5000 --seed 11 \
        --shed-horizon-ms 200 --rate-limit 300 --burst 32 \
        > "$smoke_dir/faas.out"
    grep -q "conservation: exact" "$smoke_dir/faas.out" \
        || { echo "error: front door lost invocations (offered != admitted + shed + rejected)" >&2; return 1; }
    grep -q "shed-alert: fired" "$smoke_dir/faas.out" \
        || { echo "error: the deliberately overloaded run shed nothing" >&2; return 1; }
    grep -qE "rejected [1-9]" "$smoke_dir/faas.out" \
        || { echo "error: the tenant rate limit rejected nothing" >&2; return 1; }
    # The SLO attainment curve renders in all three formats and stays
    # monotone non-increasing in offered attainment (the CLI checks
    # conservation per point and exits nonzero otherwise).
    local curve_args="--arrivals steady:0.05 --invocations 400 --seed 31 \
        --shed-horizon-ms 60000 --curve 0.25,4"
    ./target/release/nimblock-cli faas $curve_args > "$smoke_dir/faas-curve.txt"
    grep -q "offered-slo" "$smoke_dir/faas-curve.txt" \
        || { echo "error: text curve lost its offered-slo column" >&2; return 1; }
    grep -q "monotone non-increasing" "$smoke_dir/faas-curve.txt" \
        || { echo "error: offered attainment rose with load" >&2; return 1; }
    ./target/release/nimblock-cli faas $curve_args --format md \
        > "$smoke_dir/faas-curve.md"
    grep -q "^# SLO attainment curve" "$smoke_dir/faas-curve.md" \
        || { echo "error: markdown curve lost its heading" >&2; return 1; }
    ./target/release/nimblock-cli faas $curve_args --format json \
        --slo-curve-out "$smoke_dir/faas-curve.json" > /dev/null
    grep -q '"points"' "$smoke_dir/faas-curve.json" \
        || { echo "error: JSON curve lost its points array" >&2; return 1; }
    echo "ok: overload shed and conserved; curve renders in text, md, and json"
}

stage_plan() {
    # Capacity planning end to end (DESIGN.md §18): record an overloaded
    # serving day as a compact binary trace, then `analyze plan` must
    # sweep fleet shapes, validate the recorded baseline by exact replay
    # (the CLI exits nonzero unless the replay reproduces the embedded
    # report byte-for-byte), and render in all three formats.
    ensure_smoke_cli
    ./target/release/nimblock-cli faas \
        --arrivals bursty:2000 --invocations 2000 --seed 11 \
        --shed-horizon-ms 200 --rate-limit 300 --burst 32 \
        --record-out "$smoke_dir/day.trace" > "$smoke_dir/plan-record.out"
    grep -q "recorded 2000 invocation(s)" "$smoke_dir/plan-record.out" \
        || { echo "error: faas --record-out did not record the stream" >&2; return 1; }
    ./target/release/nimblock-cli analyze plan "$smoke_dir/day.trace" \
        --sweep boards=1..8 --replays 3 > "$smoke_dir/plan.txt"
    grep -q "baseline replay byte-identical" "$smoke_dir/plan.txt" \
        || { echo "error: exact replay did not reproduce the recorded report" >&2; return 1; }
    grep -q "recommendation" "$smoke_dir/plan.txt" \
        || { echo "error: text plan lost its recommendation line" >&2; return 1; }
    ./target/release/nimblock-cli analyze plan "$smoke_dir/day.trace" \
        --sweep boards=1..8 --replays 3 --format md > "$smoke_dir/plan.md"
    grep -q "^# Capacity plan" "$smoke_dir/plan.md" \
        || { echo "error: markdown plan lost its heading" >&2; return 1; }
    ./target/release/nimblock-cli analyze plan "$smoke_dir/day.trace" \
        --sweep boards=1..8 --replays 3 --format json > "$smoke_dir/plan.json"
    grep -q '"replay_check": *"byte-identical"' "$smoke_dir/plan.json" \
        || { echo "error: JSON plan does not attest the byte-identity check" >&2; return 1; }
    echo "ok: recorded day replays byte-identically and plans in text, md, and json"
}

stage_goldens() {
    # Regenerate every golden in place, then require the tree to be clean:
    # a diff means an encoding change landed without its golden refresh.
    if ! git rev-parse --is-inside-work-tree >/dev/null 2>&1; then
        echo "skip: not a git checkout, cannot detect golden drift"
        return 0
    fi
    if ! git diff --quiet -- tests/goldens; then
        echo "error: tests/goldens already dirty before regeneration;" \
             "commit or restore it first" >&2
        return 1
    fi
    NIMBLOCK_REGEN_GOLDENS=1 cargo test -q --offline \
        --test golden_roundtrip --test golden_telemetry --test golden_monitor \
        --test golden_analyze --test golden_faas --test golden_plan
    if ! git diff --exit-code -- tests/goldens; then
        git checkout -- tests/goldens
        echo "error: regenerated goldens differ from the committed files" \
             "(diff above; refresh with NIMBLOCK_REGEN_GOLDENS=1 and commit)" >&2
        return 1
    fi
    echo "ok: goldens are drift-free"
}

stage_engine_diff() {
    # The calendar-queue engine must be byte-identical to the retired
    # binary-heap backend. The randomized sweeps run in workspace-test
    # (replay a failure with the NIMBLOCK_CHECK_SEED they print); the
    # fixed-seed panels re-run here so this stage is reproducible in
    # isolation.
    cargo test -q --offline \
        --test engine_differential -- \
        every_policy_matches_the_legacy_engine_on_fixed_seeds \
        cluster_runs_match_the_legacy_engine_for_one_two_and_eight_threads
    echo "ok: legacy and calendar engines are byte-identical"
}

stage_bench_gate() {
    scripts/bench_gate.sh
}

run_stage() {
    case "$1" in
        lint) stage_lint ;;
        deep) stage_deep ;;
        build) stage_build ;;
        test) stage_test ;;
        workspace-test) stage_workspace_test ;;
        telemetry) stage_telemetry ;;
        invariants) stage_invariants ;;
        explain) stage_explain ;;
        monitor) stage_monitor ;;
        faas) stage_faas ;;
        plan) stage_plan ;;
        goldens) stage_goldens ;;
        engine-diff) stage_engine_diff ;;
        bench-gate) stage_bench_gate ;;
        *)
            echo "ci.sh: unknown stage '$1' (known: ${ALL_STAGES[*]})" >&2
            return 2
            ;;
    esac
}

if [ "${1:-}" = "--list" ]; then
    printf '%s\n' "${ALL_STAGES[@]}"
    exit 0
fi

stages=("$@")
if [ ${#stages[@]} -eq 0 ] && [ -n "${NIMBLOCK_CI_STAGES:-}" ]; then
    IFS=',' read -r -a stages <<< "$NIMBLOCK_CI_STAGES"
fi
[ ${#stages[@]} -gt 0 ] || stages=("${ALL_STAGES[@]}")

summary=()
timing_names=()
timing_secs=()
timing_status=()

# Emits per-stage wall-clock timing as results/ci_stages.json so the run's
# cost profile is a machine-readable artifact (written on failure too).
write_stage_timings() {
    local overall=$1 total=$2
    mkdir -p results
    {
        echo '{'
        echo '  "stages": ['
        local i last=$((${#timing_names[@]} - 1))
        for i in "${!timing_names[@]}"; do
            local comma=','
            [ "$i" -eq "$last" ] && comma=''
            printf '    {"stage": "%s", "seconds": %s, "status": "%s"}%s\n' \
                "${timing_names[$i]}" "${timing_secs[$i]}" "${timing_status[$i]}" "$comma"
        done
        echo '  ],'
        printf '  "total_seconds": %s,\n' "$total"
        printf '  "status": "%s"\n' "$overall"
        echo '}'
    } > results/ci_stages.json
}

total_start=$SECONDS
for stage in "${stages[@]}"; do
    echo
    echo "== stage: $stage =="
    start=$SECONDS
    # Run the stage in a subshell with errexit active (a plain
    # `if run_stage`, by POSIX rules, would suspend `set -e` inside the
    # stage and let a mid-stage failure slip through).
    set +e
    (
        set -e
        run_stage "$stage"
    )
    status=$?
    set -e
    took=$((SECONDS - start))
    timing_names+=("$stage")
    timing_secs+=("$took")
    if [ "$status" -eq 0 ]; then
        timing_status+=("ok")
        summary+=("$(printf '%-15s %4ss  ok' "$stage" "$took")")
        echo "-- $stage: ok (${took}s)"
    else
        timing_status+=("fail")
        summary+=("$(printf '%-15s %4ss  FAIL' "$stage" "$took")")
        write_stage_timings fail $((SECONDS - total_start))
        echo
        echo "== ci summary =="
        printf '%s\n' "${summary[@]}"
        echo "ci: FAIL at stage '$stage' after $((SECONDS - total_start))s"
        exit 1
    fi
done

write_stage_timings pass $((SECONDS - total_start))

echo
echo "== ci summary =="
printf '%s\n' "${summary[@]}"
echo "ci: PASS (${#stages[@]} stages, $((SECONDS - total_start))s)"
