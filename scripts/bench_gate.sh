#!/usr/bin/env bash
# Bench regression gate: fresh numbers versus the committed baselines —
# cluster scaling (`results/BENCH_cluster.json`), the engine hot path
# (`results/BENCH_engine.json`), front-door ingest
# (`results/BENCH_faas.json`), and the capacity planner
# (`results/BENCH_plan.json`).
#
# The heavy lifting lives in Rust (`cluster_scale -- --gate`,
# `engine_hot_path -- --gate`, `faas_ingest -- --gate`, and
# `plan_sweep -- --gate`): each re-measures with its baseline's exact
# workload, prints a per-row delta table, and exits nonzero if any row's
# events/sec regresses beyond the tolerance. The cluster and faas gates
# additionally re-verify that every thread count is byte-identical to the
# sequential oracle, and the plan gate that two full planner passes render
# byte-identically. This script only wires them into CI — no JSON parsing
# happens in shell.
#
# Environment:
#   NIMBLOCK_SKIP_BENCH_GATE=1   skip entirely (noisy/shared hosts)
#   NIMBLOCK_BENCH_TOLERANCE     allowed slowdown, percent [15]
#   NIMBLOCK_BENCH_REPEATS       passes per measurement, best-of [3]
#
# Usage: scripts/bench_gate.sh [cluster-baseline.json [engine-baseline.json [faas-baseline.json [plan-baseline.json]]]]

set -euo pipefail
cd "$(dirname "$0")/.."

cluster_baseline="${1:-results/BENCH_cluster.json}"
engine_baseline="${2:-results/BENCH_engine.json}"
faas_baseline="${3:-results/BENCH_faas.json}"
plan_baseline="${4:-results/BENCH_plan.json}"
tolerance="${NIMBLOCK_BENCH_TOLERANCE:-15}"
repeats="${NIMBLOCK_BENCH_REPEATS:-3}"

if [ "${NIMBLOCK_SKIP_BENCH_GATE:-0}" = "1" ]; then
    echo "bench gate: skipped (NIMBLOCK_SKIP_BENCH_GATE=1)"
    exit 0
fi

if [ ! -f "$cluster_baseline" ]; then
    echo "bench gate: no baseline at $cluster_baseline" >&2
    echo "record one with: cargo run --release --offline --bin cluster_scale" >&2
    exit 1
fi

cargo build --release --offline -q -p nimblock-bench \
    --bin cluster_scale --bin engine_hot_path --bin faas_ingest --bin plan_sweep

fail=0
if ! ./target/release/cluster_scale \
    --repeats "$repeats" \
    --gate "$cluster_baseline" \
    --tolerance "$tolerance"; then
    fail=1
fi

if [ -f "$engine_baseline" ]; then
    if ! ./target/release/engine_hot_path \
        --repeats "$repeats" \
        --gate "$engine_baseline" \
        --tolerance "$tolerance"; then
        fail=1
    fi
else
    echo "bench gate: no engine baseline at $engine_baseline (skipping)" >&2
    echo "record one with: cargo run --release --offline --bin engine_hot_path" >&2
fi

if [ -f "$faas_baseline" ]; then
    if ! ./target/release/faas_ingest \
        --repeats "$repeats" \
        --gate "$faas_baseline" \
        --tolerance "$tolerance"; then
        fail=1
    fi
else
    echo "bench gate: no faas baseline at $faas_baseline (skipping)" >&2
    echo "record one with: cargo run --release --offline -p nimblock-bench --bin faas_ingest" >&2
fi

if [ -f "$plan_baseline" ]; then
    if ! ./target/release/plan_sweep \
        --repeats "$repeats" \
        --gate "$plan_baseline" \
        --tolerance "$tolerance"; then
        fail=1
    fi
else
    echo "bench gate: no plan baseline at $plan_baseline (skipping)" >&2
    echo "record one with: cargo run --release --offline -p nimblock-bench --bin plan_sweep" >&2
fi

if [ "$fail" -ne 0 ]; then
    echo "bench gate: FAIL — events/sec regressed more than ${tolerance}% below" \
         "the committed baseline (delta tables above)." >&2
    echo "bench gate: on a noisy or slower host, widen the allowance with" \
         "NIMBLOCK_BENCH_TOLERANCE=<percent> (current: ${tolerance}), or skip" \
         "with NIMBLOCK_SKIP_BENCH_GATE=1; a real regression needs fixing," \
         "and an intentional slowdown needs a re-recorded baseline." >&2
    exit 1
fi
echo "bench gate: ok (tolerance ${tolerance}%)"
