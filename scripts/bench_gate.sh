#!/usr/bin/env bash
# Bench regression gate: fresh cluster-scaling numbers versus the committed
# baseline (`results/BENCH_cluster.json`).
#
# The heavy lifting lives in Rust (`cargo run --bin cluster_scale -- --gate`):
# it re-measures with the baseline's exact workload (seed, events,
# sequences, boards, threads), re-verifies that every thread count is
# byte-identical to the sequential oracle, prints a per-row delta table,
# and exits nonzero if any row's events/sec regresses beyond the tolerance.
# This script only wires it into CI — no JSON parsing happens in shell.
#
# Environment:
#   NIMBLOCK_SKIP_BENCH_GATE=1   skip entirely (noisy/shared hosts)
#   NIMBLOCK_BENCH_TOLERANCE     allowed slowdown, percent [15]
#   NIMBLOCK_BENCH_REPEATS       passes per thread count, best-of [3]
#
# Usage: scripts/bench_gate.sh [baseline.json]

set -euo pipefail
cd "$(dirname "$0")/.."

baseline="${1:-results/BENCH_cluster.json}"
tolerance="${NIMBLOCK_BENCH_TOLERANCE:-15}"
repeats="${NIMBLOCK_BENCH_REPEATS:-3}"

if [ "${NIMBLOCK_SKIP_BENCH_GATE:-0}" = "1" ]; then
    echo "bench gate: skipped (NIMBLOCK_SKIP_BENCH_GATE=1)"
    exit 0
fi

if [ ! -f "$baseline" ]; then
    echo "bench gate: no baseline at $baseline" >&2
    echo "record one with: cargo run --release --offline --bin cluster_scale" >&2
    exit 1
fi

cargo build --release --offline -q -p nimblock-bench --bin cluster_scale
exec ./target/release/cluster_scale \
    --repeats "$repeats" \
    --gate "$baseline" \
    --tolerance "$tolerance"
